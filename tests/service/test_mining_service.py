"""Tests for the MiningService request/response front end."""

from __future__ import annotations

import pytest

from repro.core.database import EdgeDelta, SupportMeasure
from repro.core.skinnymine import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern
from repro.index.store import DiskPatternStore, MemoryPatternStore
from repro.service.mining import MineRequest, MiningService


@pytest.fixture(scope="module")
def data_graph():
    background = erdos_renyi_graph(120, 1.4, 25, seed=41)
    pattern = random_skinny_pattern(5, 1, 8, 25, seed=43)
    inject_pattern(background, pattern, copies=3, seed=47)
    return background


REQUEST = MineRequest(length=5, delta=1, min_support=2)


class TestMineRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            MineRequest(length=0, delta=1, min_support=2)
        with pytest.raises(ValueError):
            MineRequest(length=2, delta=-1, min_support=2)
        with pytest.raises(ValueError):
            MineRequest(length=2, delta=1, min_support=0)
        with pytest.raises(ValueError):
            MineRequest(length=2, delta=1, min_support=2, top_k=0)
        with pytest.raises(ValueError):
            MineRequest(length=2, delta=1, min_support=2, support_measure="bogus")

    def test_cache_key_is_canonical(self):
        a = MineRequest(length=5, delta=1, min_support=2)
        b = MineRequest(length=5, delta=1, min_support=2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != MineRequest(length=5, delta=2, min_support=2).cache_key()

    def test_stage_one_parameter_ignores_delta_and_top_k(self):
        a = MineRequest(length=5, delta=1, min_support=2, top_k=3)
        b = MineRequest(length=5, delta=2, min_support=2)
        assert a.stage_one_parameter() == b.stage_one_parameter()

    def test_from_dict_accepts_sigma_alias(self):
        request = MineRequest.from_dict({"length": 4, "delta": 1, "sigma": 3})
        assert request.min_support == 3

    def test_measure_enum_accepted(self):
        request = MineRequest(
            length=2, delta=0, min_support=1, support_measure=SupportMeasure.MNI
        )
        assert request.support_measure == "mni"


class TestServing:
    def test_matches_skinnymine(self, data_graph):
        service = MiningService(data_graph)
        response = service.mine(REQUEST)
        reference = SkinnyMine(data_graph, min_support=2).mine(5, 1)
        assert {p.canonical_form() for p in response.patterns} == {
            p.canonical_form() for p in reference
        }
        assert response.stats.num_minimal_patterns >= 1
        assert not response.stats.served_from_store

    def test_repeated_request_hits_result_cache(self, data_graph):
        service = MiningService(data_graph)
        first = service.mine(REQUEST)
        second = service.mine(REQUEST)
        assert second.stats.result_cache_hit
        assert {p.canonical_form() for p in second.patterns} == {
            p.canonical_form() for p in first.patterns
        }
        assert len(service.stats_log) == 2

    def test_warm_disk_store_skips_stage_one(self, data_graph, tmp_path, monkeypatch):
        store = DiskPatternStore(tmp_path / "idx")
        MiningService(data_graph, store=store).mine(REQUEST)
        reference = SkinnyMine(data_graph, min_support=2).mine(5, 1)

        # A fresh service over the same directory must never re-run DiamMine.
        import repro.core.diammine as diammine

        def explode(self, length):  # pragma: no cover - only on regression
            raise AssertionError("Stage 1 was recomputed despite a warm store")

        monkeypatch.setattr(diammine.DiamMine, "mine", explode)
        warm = MiningService(data_graph, store=DiskPatternStore(tmp_path / "idx"))
        response = warm.mine(REQUEST)
        assert response.stats.served_from_store
        assert not response.stats.result_cache_hit
        assert {p.canonical_form() for p in response.patterns} == {
            p.canonical_form() for p in reference
        }

    def test_cache_hit_does_not_claim_store_provenance(self, data_graph):
        service = MiningService(data_graph)
        service.mine(REQUEST)
        second = service.mine(REQUEST)
        assert second.stats.result_cache_hit
        assert not second.stats.served_from_store

    def test_capped_store_entries_not_served_to_uncapped_service(
        self, data_graph, tmp_path
    ):
        store_root = tmp_path / "idx"
        capped = MiningService(
            data_graph, store=DiskPatternStore(store_root), max_paths_per_length=1
        )
        capped.mine(REQUEST)
        # An uncapped service over the same store must treat the truncated
        # entry as a miss and compute the complete Stage 1 itself.
        uncapped = MiningService(data_graph, store=DiskPatternStore(store_root))
        response = uncapped.mine(REQUEST)
        assert not response.stats.served_from_store
        reference = SkinnyMine(data_graph, min_support=2).mine(5, 1)
        assert {p.canonical_form() for p in response.patterns} == {
            p.canonical_form() for p in reference
        }

    def test_store_miss_on_different_data(self, data_graph, tmp_path):
        store = DiskPatternStore(tmp_path / "idx")
        MiningService(data_graph, store=store).mine(REQUEST)
        other = erdos_renyi_graph(60, 1.2, 9, seed=5)
        service = MiningService(other, store=DiskPatternStore(tmp_path / "idx"))
        response = service.mine(MineRequest(length=2, delta=1, min_support=2))
        assert not response.stats.served_from_store

    def test_top_k_truncates_by_support(self, data_graph):
        service = MiningService(data_graph)
        full = service.mine(REQUEST)
        top = service.mine(
            MineRequest(length=5, delta=1, min_support=2, top_k=2)
        )
        assert len(top.patterns) == min(2, len(full.patterns))
        supports = [p.support for p in full.patterns]
        assert [p.support for p in top.patterns] == sorted(supports, reverse=True)[: len(top.patterns)]

    def test_serve_batch_preserves_order_and_caches_duplicates(self, data_graph):
        service = MiningService(data_graph)
        requests = [REQUEST, MineRequest(length=4, delta=1, min_support=2), REQUEST]
        responses = service.serve_batch(requests)
        assert [r.request for r in responses] == requests
        assert responses[2].stats.result_cache_hit
        assert not responses[1].stats.result_cache_hit


class TestPrecompute:
    def test_serial_and_parallel_agree(self, data_graph):
        serial = MiningService(data_graph).precompute([3, 4], min_support=2)
        parallel = MiningService(data_graph).precompute(
            [3, 4], min_support=2, processes=2
        )
        assert serial == parallel
        assert set(serial) == {3, 4}

    def test_precompute_is_idempotent(self, data_graph, tmp_path):
        store = DiskPatternStore(tmp_path)
        service = MiningService(data_graph, store=store)
        first = service.precompute([3], min_support=2)
        before = store.get(store.keys()[0]).created_at
        second = service.precompute([3], min_support=2)
        assert first == second
        assert store.get(store.keys()[0]).created_at == before

    def test_precomputed_store_feeds_requests(self, data_graph):
        store = MemoryPatternStore()
        service = MiningService(data_graph, store=store)
        service.precompute([5], min_support=2)
        response = service.mine(REQUEST)
        assert response.stats.served_from_store


class TestLevelStatistics:
    """Per-request Stage-2 counters (the emission fast path, ISSUE 5)."""

    def test_response_carries_level_statistics(self, data_graph):
        service = MiningService(data_graph)
        response = service.mine(REQUEST)
        stats = response.stats.level_statistics
        assert stats is not None
        assert stats["patterns_emitted"] > 0
        assert stats["canonical_incremental_hits"] > 0
        for counter in ("invariant_cache_hits", "probes_batched"):
            assert stats[counter] >= 0
        for phase in ("canonical_seconds", "invariant_seconds", "probe_seconds"):
            assert stats[phase] >= 0.0
        # The wire form includes the counters too.
        assert (
            response.stats.to_dict()["level_statistics"]["canonical_incremental_hits"]
            == stats["canonical_incremental_hits"]
        )

    def test_back_to_back_queries_report_independent_counters(self, data_graph):
        # The PR-3 bug class: SkinnyMine once merged LevelGrow counters into
        # the *previous* request's report.  Two fresh engine queries must
        # each report their own canonical_incremental_hits — equal work,
        # not zero, and not accumulated across requests.
        service = MiningService(data_graph)
        first = service.mine(MineRequest(length=5, delta=1, min_support=2))
        second = service.mine(MineRequest(length=4, delta=1, min_support=2))
        third = service.mine(MineRequest(length=5, delta=1, min_support=2))
        stats_one = first.stats.level_statistics
        stats_two = second.stats.level_statistics
        assert stats_one["canonical_incremental_hits"] > 0
        assert stats_two["canonical_incremental_hits"] > 0
        # Different requests did different work under different counters.
        assert stats_one is not stats_two
        # The repeat of the first request was served from the result cache:
        # no Stage 2 ran, so no counters — rather than a stale merged copy.
        assert third.stats.result_cache_hit
        assert third.stats.level_statistics is None

    def test_identical_cold_queries_report_identical_counters(self, data_graph):
        # Two services, same query: the counters are a pure function of the
        # request, so nothing from the first run may leak into the second.
        one = MiningService(data_graph).mine(REQUEST).stats.level_statistics
        two = MiningService(data_graph).mine(REQUEST).stats.level_statistics
        counters = (
            "candidates_generated",
            "candidates_rejected_constraints",
            "candidates_rejected_support",
            "candidates_rejected_duplicate",
            "candidates_pending",
            "patterns_emitted",
            "canonical_incremental_hits",
            "invariant_cache_hits",
            "probes_batched",
        )
        assert {k: one[k] for k in counters} == {k: two[k] for k in counters}


class TestDeltas:
    def test_apply_delta_keeps_responses_consistent(self, data_graph):
        graph = data_graph.copy()
        service = MiningService(graph)
        service.mine(REQUEST)
        edge = next(iter(graph.edges()))
        report = service.apply_delta([EdgeDelta.remove_edge(edge.u, edge.v)])
        assert report.operations == 1
        assert service.fingerprint == report.new_fingerprint
        response = service.mine(REQUEST)
        assert not response.stats.result_cache_hit  # cache was invalidated
        reference = SkinnyMine(graph, min_support=2).mine(5, 1)
        assert {p.canonical_form() for p in response.patterns} == {
            p.canonical_form() for p in reference
        }

    def test_apply_delta_repairs_store_in_place(self, data_graph, tmp_path):
        graph = data_graph.copy()
        store = DiskPatternStore(tmp_path)
        service = MiningService(graph, store=store)
        service.mine(REQUEST)
        edge = next(iter(graph.edges()))
        report = service.apply_delta([EdgeDelta.remove_edge(edge.u, edge.v)])
        assert report.entries_seen == 1
        # The repaired entry now serves the new fingerprint from disk.
        response = service.mine(REQUEST)
        assert response.stats.served_from_store
