"""Deprecation shims: legacy skinny entry points keep working, warn once per site."""

from __future__ import annotations

import warnings

import pytest

from repro.api import Query, query_from_payload
from repro.core.framework import MinimalPatternIndex
from repro.service.mining import (
    LEGACY_SURFACE_DEPRECATION,
    MineRequest,
    MiningService,
)
from repro.graph.labeled_graph import build_graph


def data_graph():
    return build_graph(
        {
            0: "a", 1: "b", 2: "c", 3: "d",
            10: "a", 11: "b", 12: "c", 13: "d",
        },
        [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (12, 13)],
    )


class TestMineRequestShim:
    def test_to_query_equivalence(self):
        request = MineRequest(
            length=4, delta=1, min_support=3, top_k=5,
            support_measure="transactions", include_minimal=False,
        )
        query = request.to_query()
        assert query == Query(
            "skinny", {"length": 4, "delta": 1}, min_support=3, top_k=5,
            support_measure="transactions", include_minimal=False,
        )
        assert request.cache_key() == query.cache_key()

    def test_from_dict_warns_with_the_consolidated_message(self):
        with pytest.deprecated_call(match="legacy batch surface") as caught:
            request = MineRequest.from_dict({"length": 4, "delta": 1, "min_support": 2})
        assert request == MineRequest(length=4, delta=1, min_support=2)
        assert str(caught.list[0].message) == LEGACY_SURFACE_DEPRECATION

    def test_serve_batch_warns_with_the_consolidated_message(self):
        service = MiningService(data_graph())
        with pytest.deprecated_call() as caught:
            responses = service.serve_batch(
                [MineRequest(length=3, delta=1, min_support=2)]
            )
        assert len(responses) == 1
        messages = {str(w.message) for w in caught.list}
        assert messages == {LEGACY_SURFACE_DEPRECATION}

    def test_consolidated_message_names_every_replacement(self):
        # The message is a contract: one consolidated pointer per
        # replacement surface, pinned so it cannot drift silently.
        assert "repro.server" in LEGACY_SURFACE_DEPRECATION
        assert "repro serve" in LEGACY_SURFACE_DEPRECATION
        assert "MiningEngine.run_batch" in LEGACY_SURFACE_DEPRECATION
        assert "query_from_payload" in LEGACY_SURFACE_DEPRECATION

    def test_from_dict_warns_exactly_once_per_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")  # dedupe per (message, module, lineno)
            for _ in range(3):
                MineRequest.from_dict({"length": 4, "delta": 1})
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_legacy_payload_warns_exactly_once_per_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(3):
                query_from_payload({"length": 4, "delta": 1})
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_service_accepts_request_and_query_identically(self):
        service = MiningService(data_graph())
        via_request = service.mine(MineRequest(length=3, delta=1, min_support=2))
        via_query = service.mine(Query("skinny", {"length": 3, "delta": 1}, min_support=2))
        # The shim and the query share one result-cache entry.
        assert via_query.stats.result_cache_hit
        assert {p.canonical_form() for p in via_request.patterns} == {
            p.canonical_form() for p in via_query.patterns
        }
        # The response exposes both the modern and the legacy handle.
        assert via_request.query == via_request.request.to_query()
        assert via_query.request == via_query.query


class TestMinimalPatternIndexShim:
    def test_unportable_parameter_warns(self):
        index = MinimalPatternIndex()
        with pytest.deprecated_call():
            index.store(frozenset({1, 2}), [], 0.0)
        with warnings.catch_warnings():
            # Reading back through the same unportable key warns again (the
            # same deprecated code path), so tolerate but don't require it.
            warnings.simplefilter("ignore", DeprecationWarning)
            assert index.get(frozenset({1, 2})) == []

    def test_unportable_parameter_warns_exactly_once_per_call_site(self):
        index = MinimalPatternIndex()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for value in (frozenset({1}), frozenset({2}), frozenset({3})):
                index.store(value, [], 0.0)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_portable_parameters_do_not_warn(self):
        index = MinimalPatternIndex()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            index.store((3, 1), [], 0.0)
            assert index.get((3, 1)) == []
