"""Behavioural tests for the six baseline miners.

The assertions encode the *qualitative* behaviours the paper attributes to
each system (the behaviours the benchmark figures rely on), not exact output
sets: SUBDUE prefers small high-frequency substructures, SEuS reports small
patterns, SpiderMine finds large-but-fat patterns and misses long skinny
ones, ORIGAMI returns a scattered sample, gSpan/MoSS are complete but
cap-able.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    GSpanMiner,
    MossMiner,
    OrigamiSampler,
    SeusMiner,
    SpiderMiner,
    SubdueMiner,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
    random_transaction_database,
)
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.labeled_graph import graph_from_paths
from repro.graph.paths import diameter


def skinny_injected_graph(seed=1, copies=3, backbone=8):
    background = erdos_renyi_graph(120, 1.5, 20, seed=seed)
    pattern = random_skinny_pattern(backbone, 1, backbone + 3, 20, seed=seed + 1)
    inject_pattern(background, pattern, copies=copies, seed=seed + 2)
    return background, pattern


class TestGSpan:
    def test_complete_on_small_database(self):
        database = [graph_from_paths([list("abc")]) for _ in range(3)]
        miner = GSpanMiner(database, min_support=3)
        patterns = miner.mine()
        assert miner.completed
        assert sorted(p.num_edges for p in patterns) == [1, 1, 2]
        assert all(p.support == 3 for p in patterns)

    def test_single_graph_accepted(self):
        graph = graph_from_paths([list("abc")])
        patterns = GSpanMiner(graph, min_support=1).mine()
        assert len(patterns) == 3

    def test_caps_mark_incomplete(self):
        database = random_transaction_database(3, 30, 2.0, 3, seed=5)
        miner = GSpanMiner(database, min_support=2, max_patterns=3)
        miner.mine()
        assert not miner.completed


class TestMoss:
    def test_complete_single_graph_mining(self):
        graph = graph_from_paths([list("abcd"), list("abcd")])
        miner = MossMiner(graph, min_support=2)
        patterns = miner.mine()
        assert miner.completed
        assert max(p.num_edges for p in patterns) == 3

    def test_time_budget(self):
        graph = erdos_renyi_graph(200, 3, 3, seed=9)
        miner = MossMiner(graph, min_support=2, time_budget_seconds=0.05)
        miner.mine()
        assert not miner.completed
        assert miner.elapsed_seconds >= 0.0


class TestSpiderMine:
    def test_finds_large_patterns(self):
        background, pattern = skinny_injected_graph(seed=3)
        miner = SpiderMiner(background, min_support=2, top_k=5, radius=1, d_max=4,
                            num_seeds=100, seed=7)
        results = miner.mine()
        assert results
        assert results[0].num_vertices >= results[-1].num_vertices

    def test_diameter_bounded_by_merging(self):
        # SpiderMine's output diameter is bounded by ~2 * radius * d_max, so a
        # very long path cannot be recovered with small radius and few rounds.
        graph = graph_from_paths([list("abcdefghijklmnop")] * 2)
        miner = SpiderMiner(graph, min_support=2, top_k=3, radius=1, d_max=1,
                            num_seeds=10, seed=1)
        results = miner.mine()
        assert all(diameter(p.graph) <= 4 for p in results if p.graph.is_connected())

    def test_invalid_parameters(self):
        graph = graph_from_paths([list("ab")])
        with pytest.raises(ValueError):
            SpiderMiner(graph, 1, top_k=0)
        with pytest.raises(ValueError):
            SpiderMiner(graph, 1, radius=0)
        with pytest.raises(ValueError):
            SpiderMiner(graph, 1, d_max=0)

    def test_empty_result_when_nothing_frequent(self):
        graph = graph_from_paths([list("ab"), list("cd")])
        assert SpiderMiner(graph, min_support=3, seed=2).mine() == []


class TestSubdue:
    def test_prefers_frequent_small_substructures(self):
        # Many copies of a small star, one copy of a long path: the star
        # compresses better and must rank first.
        graph = graph_from_paths([list("xy")] * 8 + [list("abcdefgh")])
        miner = SubdueMiner(graph, min_support=2, beam_width=4, iterations=4)
        results = miner.mine()
        assert results
        best = results[0]
        assert best.num_edges <= 3
        assert best.support >= 8 or best.score >= results[-1].score

    def test_results_sorted_by_score(self):
        graph = graph_from_paths([list("abc")] * 4)
        results = SubdueMiner(graph, min_support=2).mine()
        scores = [p.score for p in results]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_parameters(self):
        graph = graph_from_paths([list("ab")])
        with pytest.raises(ValueError):
            SubdueMiner(graph, beam_width=0)
        with pytest.raises(ValueError):
            SubdueMiner(graph, iterations=0)


class TestSeus:
    def test_reports_small_patterns(self):
        background, _ = skinny_injected_graph(seed=11)
        miner = SeusMiner(background, min_support=2)
        results = miner.mine()
        assert results
        assert all(p.num_vertices <= 3 for p in results)
        assert miner.summary_nodes > 0
        assert miner.summary_edges > 0

    def test_supports_are_exact(self):
        graph = graph_from_paths([list("ab")] * 3)
        results = SeusMiner(graph, min_support=2).mine()
        assert len(results) == 1
        assert results[0].support == 3

    def test_invalid_parameters(self):
        graph = graph_from_paths([list("ab")])
        with pytest.raises(ValueError):
            SeusMiner(graph, max_candidate_edges=0)


class TestOrigami:
    def test_returns_sample_of_maximal_patterns(self):
        background, _ = skinny_injected_graph(seed=13)
        sampler = OrigamiSampler(background, min_support=2, num_walks=10, seed=3)
        results = sampler.mine()
        assert results
        # Every sampled pattern is frequent and occurs in the data.
        for pattern in results:
            assert pattern.support >= 2
            assert is_subgraph_isomorphic(pattern.graph, background)

    def test_deterministic_with_seed(self):
        graph = graph_from_paths([list("abcde")] * 3)
        first = OrigamiSampler(graph, min_support=2, num_walks=5, seed=42).mine()
        second = OrigamiSampler(graph, min_support=2, num_walks=5, seed=42).mine()
        assert [p.num_edges for p in first] == [p.num_edges for p in second]

    def test_alpha_filter_reduces_duplicates(self):
        graph = graph_from_paths([list("abcde")] * 3)
        loose = OrigamiSampler(graph, min_support=2, num_walks=12, alpha=1.0, seed=1).mine()
        strict = OrigamiSampler(graph, min_support=2, num_walks=12, alpha=0.3, seed=1).mine()
        assert len(strict) <= len(loose)

    def test_invalid_parameters(self):
        graph = graph_from_paths([list("ab")])
        with pytest.raises(ValueError):
            OrigamiSampler(graph, num_walks=0)
        with pytest.raises(ValueError):
            OrigamiSampler(graph, alpha=2.0)

    def test_empty_when_nothing_frequent(self):
        graph = graph_from_paths([list("ab"), list("cd")])
        assert OrigamiSampler(graph, min_support=5, seed=1).mine() == []


class TestQualitativeComparison:
    def test_skinnymine_recovers_long_pattern_spidermine_misses(self):
        """The paper's core effectiveness claim, scaled down: with a long
        skinny injected pattern, SkinnyMine finds a pattern realising the full
        backbone length while SpiderMine (small radius / few merge rounds)
        does not.
        """
        from repro.core import SkinnyMine

        background, pattern = skinny_injected_graph(seed=17, backbone=10)
        # Pruned Stage 1 keeps this qualitative check fast: the exact mode
        # additionally surfaces ~160 cross-copy diameters (real frequent
        # paths whose sub-paths collapse to one image), which only add
        # runtime here — the claim under test needs just the planted one.
        skinny_results = SkinnyMine(
            background, min_support=2, stage1_mode="pruned"
        ).mine(10, 1)
        assert any(p.diameter_length == 10 for p in skinny_results)

        spider_results = SpiderMiner(
            background, min_support=2, top_k=5, radius=1, d_max=1, num_seeds=50, seed=5
        ).mine()
        assert all(
            diameter(p.graph) < 10
            for p in spider_results
            if p.graph.is_connected()
        )
