"""Tests for the shared baseline infrastructure."""

from __future__ import annotations

from repro.baselines.common import (
    IsomorphismRegistry,
    MinedPattern,
    PatternGrowthMiner,
)
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.labeled_graph import build_graph, graph_from_paths


class TestMinedPattern:
    def test_properties(self):
        pattern = MinedPattern(build_graph({0: "a", 1: "b"}, [(0, 1)]), support=3)
        assert pattern.num_vertices == 2
        assert pattern.num_edges == 1
        assert "support=3" in repr(pattern)


class TestIsomorphismRegistry:
    def test_add_and_duplicate(self):
        registry = IsomorphismRegistry()
        assert registry.add(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        assert not registry.add(build_graph({5: "b", 9: "a"}, [(5, 9)]))
        assert registry.add(build_graph({0: "a", 1: "a"}, [(0, 1)]))


class TestPatternGrowthMiner:
    def test_complete_mining_small_graph(self):
        graph = graph_from_paths([list("abc"), list("abc")])
        context = MiningContext(graph, 2)
        result = PatternGrowthMiner(context).mine()
        assert result.completed
        sizes = sorted(p.num_edges for p in result.patterns)
        # Frequent patterns: edges a-b and b-c, and the path a-b-c.
        assert sizes == [1, 1, 2]

    def test_max_edges_cap(self):
        graph = graph_from_paths([list("abcde"), list("abcde")])
        context = MiningContext(graph, 2)
        result = PatternGrowthMiner(context, max_edges=2).mine()
        assert result.completed
        assert all(p.num_edges <= 2 for p in result.patterns)

    def test_time_budget_marks_incomplete(self):
        graph = graph_from_paths([list("abcdefghij")] * 3)
        context = MiningContext(graph, 2)
        result = PatternGrowthMiner(context, time_budget_seconds=0.0).mine()
        assert not result.completed

    def test_max_patterns_cap(self):
        graph = graph_from_paths([list("abcde"), list("abcde")])
        context = MiningContext(graph, 2)
        result = PatternGrowthMiner(context, max_patterns=2).mine()
        assert len(result.patterns) == 2
        assert not result.completed

    def test_transaction_support(self):
        database = [graph_from_paths([list("ab")]), graph_from_paths([list("ab")])]
        context = MiningContext(database, 2, SupportMeasure.TRANSACTIONS)
        result = PatternGrowthMiner(context).mine()
        assert len(result.patterns) == 1
        assert result.patterns[0].support == 2
