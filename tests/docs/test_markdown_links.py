"""Documentation link integrity, inside the tier-1 gate.

Runs the same checker the docs CI job invokes
(``tools/check_markdown_links.py``) so a broken relative link or stale
anchor in README/ROADMAP/docs fails fast locally, not just in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_markdown_links import check_documents, default_documents  # noqa: E402


def test_documentation_links_resolve():
    documents = default_documents()
    assert documents, "expected at least README.md to exist"
    assert {doc.name for doc in documents} >= {"README.md", "ROADMAP.md"}
    problems = check_documents(documents)
    assert not problems, "broken documentation links:\n" + "\n".join(problems)


def test_architecture_and_correctness_docs_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "CORRECTNESS.md").is_file()


def test_store_doc_exists_and_is_link_checked():
    # The store backend guide must exist and be inside the checker's
    # default document set (docs/*.md), so its links are gated too.
    store_doc = REPO_ROOT / "docs" / "STORE.md"
    assert store_doc.is_file()
    assert store_doc in [doc.resolve() for doc in default_documents()]
