"""Tests for the analysis helpers (distributions, recovery, reporting)."""

from __future__ import annotations

import pytest

from repro.analysis.distributions import (
    PatternSizeDistribution,
    injected_pattern_recovery,
    largest_pattern_size,
    size_distribution,
)
from repro.analysis.reporting import format_series, format_table, print_figure_series, print_table
from repro.baselines.common import MinedPattern
from repro.core.patterns import SkinnyPattern
from repro.graph.labeled_graph import build_graph


def make_pattern(num_vertices: int) -> MinedPattern:
    labels = {i: "a" for i in range(num_vertices)}
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return MinedPattern(build_graph(labels, edges), support=2)


class TestDistributions:
    def test_size_distribution_counts(self):
        patterns = [make_pattern(3), make_pattern(3), make_pattern(5)]
        distribution = size_distribution("demo", patterns)
        assert distribution.count_at(3) == 2
        assert distribution.count_at(5) == 1
        assert distribution.count_at(4) == 0
        assert distribution.max_size() == 5
        assert distribution.total() == 3
        assert distribution.patterns_at_least(4) == 1
        assert distribution.as_series() == [(3, 2), (5, 1)]

    def test_accepts_skinny_patterns_and_graphs(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        skinny = SkinnyPattern(graph, [0, 1], [], 2)
        distribution = size_distribution("mixed", [skinny, graph])
        assert distribution.total() == 2

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            size_distribution("bad", [42])

    def test_empty_distribution(self):
        distribution = PatternSizeDistribution("empty")
        assert distribution.max_size() == 0
        assert distribution.sizes() == []


class TestRecovery:
    def test_recovery_by_isomorphism(self):
        injected = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        mined = [MinedPattern(build_graph({5: "c", 6: "b", 7: "a"}, [(5, 6), (6, 7)]), 2)]
        report = injected_pattern_recovery("demo", mined, [injected])
        assert report.recovered == [0]
        assert report.recovery_rate == 1.0

    def test_recovery_by_containment(self):
        injected = build_graph({0: "a", 1: "b"}, [(0, 1)])
        bigger = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        mined = [MinedPattern(bigger, 2)]
        by_containment = injected_pattern_recovery("demo", mined, [injected])
        strict = injected_pattern_recovery("demo", mined, [injected], allow_containment=False)
        assert by_containment.recovered == [0]
        assert strict.missed == [0]

    def test_recovery_with_dict_ground_truth(self):
        injected = {7: build_graph({0: "a", 1: "b"}, [(0, 1)])}
        report = injected_pattern_recovery("demo", [], injected)
        assert report.missed == [7]
        assert report.recovery_rate == 0.0

    def test_largest_pattern_size(self):
        assert largest_pattern_size([make_pattern(4), make_pattern(2)]) == (4, 3)
        assert largest_pattern_size([]) == (0, 0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "2.500" in text

    def test_format_series(self):
        assert format_series("s", [(1, 2), (3, 4)]) == "s: 1=2, 3=4"
        assert format_series("s", {}) == "s: (empty)"
        assert format_series("s", {2: 5}) == "s: 2=5"

    def test_print_helpers_smoke(self, capsys):
        print_table(["a"], [[1]], title="demo")
        print_figure_series("Figure X", {"line": [(1, 1)]}, note="scaled")
        captured = capsys.readouterr().out
        assert "demo" in captured
        assert "Figure X" in captured
        assert "line: 1=1" in captured
