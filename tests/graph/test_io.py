"""Tests for LG / edge-list graph I/O."""

from __future__ import annotations

import json

import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import graph_from_edge_list, read_lg, write_lg
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import build_graph


class TestLGFormat:
    def test_roundtrip_single_graph(self, tmp_path, triangle_graph):
        target = tmp_path / "one.lg"
        write_lg(triangle_graph, target)
        loaded = read_lg(target)
        assert len(loaded) == 1
        assert are_isomorphic(loaded[0], triangle_graph)

    def test_roundtrip_multiple_graphs(self, tmp_path, triangle_graph, path_graph):
        target = tmp_path / "many.lg"
        write_lg([triangle_graph, path_graph], target)
        loaded = read_lg(target)
        assert len(loaded) == 2
        assert are_isomorphic(loaded[0], triangle_graph)
        assert are_isomorphic(loaded[1], path_graph)

    def test_roundtrip_random_graph(self, tmp_path):
        graph = erdos_renyi_graph(40, 2, 3, seed=5)
        target = tmp_path / "random.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.num_vertices() == graph.num_vertices()
        assert loaded.num_edges() == graph.num_edges()

    def test_edge_labels_roundtrip(self, tmp_path):
        graph = build_graph({0: "a", 1: "b"}, [])
        graph.add_edge(0, 1, "rel")
        target = tmp_path / "labeled.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.edge_label(0, 1) == "rel"

    def test_malformed_vertex_line(self, tmp_path):
        target = tmp_path / "bad.lg"
        target.write_text("t # 0\nv 0\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_lg(target)

    def test_vertex_before_transaction(self, tmp_path):
        target = tmp_path / "bad2.lg"
        target.write_text("v 0 a\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_lg(target)

    def test_unknown_line(self, tmp_path):
        target = tmp_path / "bad3.lg"
        target.write_text("t # 0\nq nonsense\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_lg(target)

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        target = tmp_path / "ok.lg"
        target.write_text("# comment\n\nt # 0\nv 0 a\nv 1 b\ne 0 1\n", encoding="utf-8")
        loaded = read_lg(target)
        assert loaded[0].num_edges() == 1


class TestLGEdgeCases:
    """Regression tests: these inputs used to round-trip lossily."""

    def test_isolated_labeled_vertices_roundtrip(self, tmp_path):
        graph = build_graph({0: "a", 1: "b", 2: "lonely", 3: "alone"}, [(0, 1)])
        target = tmp_path / "isolated.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.vertex_labels() == {0: "a", 1: "b", 2: "lonely", 3: "alone"}
        assert loaded.num_edges() == 1

    def test_gspan_trailing_sentinel_ignored(self, tmp_path):
        target = tmp_path / "sentinel.lg"
        target.write_text("t # 0\nv 0 a\nv 1 b\ne 0 1\nt # -1\n", encoding="utf-8")
        loaded = read_lg(target)
        assert len(loaded) == 1
        assert loaded[0].num_vertices() == 2

    def test_real_empty_graph_preserved(self, tmp_path):
        target = tmp_path / "empty-mid.lg"
        target.write_text("t # 0\nv 0 a\nt # 1\nt # 2\nv 0 b\n", encoding="utf-8")
        loaded = read_lg(target)
        assert [g.num_vertices() for g in loaded] == [1, 0, 1]

    def test_labels_with_whitespace_roundtrip(self, tmp_path):
        graph = build_graph({0: "has space", 1: "tab\there"}, [])
        graph.add_edge(0, 1, "edge label")
        target = tmp_path / "spaces.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.vertex_labels() == {0: "has space", 1: "tab\there"}
        assert loaded.edge_label(0, 1) == "edge label"

    def test_percent_in_label_roundtrip(self, tmp_path):
        graph = build_graph({0: "50%", 1: "b"}, [(0, 1)])
        target = tmp_path / "percent.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.label_of(0) == "50%"

    def test_legacy_percent_labels_load_verbatim(self, tmp_path):
        # Files from older writers / third-party tools may contain labels with
        # percent-looking text; only the writer's own escapes are decoded.
        target = tmp_path / "legacy.lg"
        target.write_text("t # 0\nv 0 %41\nv 1 C%3A\ne 0 1\n", encoding="utf-8")
        loaded = read_lg(target)[0]
        assert loaded.label_of(0) == "%41"
        assert loaded.label_of(1) == "C%3A"

    def test_escaped_percent_roundtrips_through_file_text(self, tmp_path):
        graph = build_graph({0: "%20", 1: "b"}, [(0, 1)])
        target = tmp_path / "tricky.lg"
        write_lg(graph, target)
        assert "%2520" in target.read_text(encoding="utf-8")
        assert read_lg(target)[0].label_of(0) == "%20"

    def test_empty_string_label_rejected(self, tmp_path):
        graph = build_graph({0: "", 1: "b"}, [(0, 1)])
        with pytest.raises(ValueError):
            write_lg(graph, tmp_path / "bad.lg")

    def test_multigraph_with_isolated_vertices_roundtrip(self, tmp_path):
        first = build_graph({0: "a", 5: "solo"}, [])
        second = build_graph({0: "x", 1: "y", 2: "z"}, [(0, 1)])
        target = tmp_path / "multi.lg"
        write_lg([first, second], target)
        loaded = read_lg(target)
        assert len(loaded) == 2
        assert loaded[0].num_vertices() == 2 and loaded[0].num_edges() == 0
        assert loaded[1].num_vertices() == 3 and loaded[1].num_edges() == 1


class TestJSONRecords:
    def test_graph_record_roundtrip_exact(self, figure3_graph):
        from repro.graph.io import graph_from_record, graph_to_record

        record = graph_to_record(figure3_graph)
        back = graph_from_record(json.loads(json.dumps(record)))
        assert back.vertex_labels() == figure3_graph.vertex_labels()
        assert {(e.u, e.v, e.label) for e in back.edges()} == {
            (e.u, e.v, e.label) for e in figure3_graph.edges()
        }
        assert back.name == figure3_graph.name

    def test_non_json_label_rejected(self):
        from repro.graph.io import graph_to_record

        graph = build_graph({0: ("tuple", "label"), 1: "b"}, [(0, 1)])
        with pytest.raises(TypeError):
            graph_to_record(graph)


class TestFingerprints:
    def test_insertion_order_does_not_matter(self):
        from repro.graph.io import graph_fingerprint
        from repro.graph.labeled_graph import LabeledGraph

        forward = LabeledGraph()
        forward.add_vertex(0, "a")
        forward.add_vertex(1, "b")
        forward.add_edge(0, 1)
        backward = LabeledGraph(name="other-name")
        backward.add_vertex(1, "b")
        backward.add_vertex(0, "a")
        backward.add_edge(1, 0)
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_any_edit_changes_fingerprint(self, figure3_graph):
        from repro.graph.io import graph_fingerprint

        original = graph_fingerprint(figure3_graph)
        edited = figure3_graph.copy()
        edited.remove_edge(1, 2)
        assert graph_fingerprint(edited) != original
        edited.add_edge(1, 2)
        assert graph_fingerprint(edited) == original

    def test_dataset_fingerprint_is_order_sensitive(self, triangle_graph, path_graph):
        from repro.graph.io import dataset_fingerprint

        assert dataset_fingerprint([triangle_graph, path_graph]) != dataset_fingerprint(
            [path_graph, triangle_graph]
        )
        assert dataset_fingerprint(triangle_graph) == dataset_fingerprint([triangle_graph])


class TestEdgeList:
    def test_graph_from_edge_list(self):
        graph = graph_from_edge_list(
            [(0, "a", 1, "b"), (1, "b", 2, "c")], name="fixture"
        )
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 2
        assert graph.label_of(2) == "c"
        assert graph.name == "fixture"
