"""Tests for LG / edge-list graph I/O."""

from __future__ import annotations

import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import graph_from_edge_list, read_lg, write_lg
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import build_graph


class TestLGFormat:
    def test_roundtrip_single_graph(self, tmp_path, triangle_graph):
        target = tmp_path / "one.lg"
        write_lg(triangle_graph, target)
        loaded = read_lg(target)
        assert len(loaded) == 1
        assert are_isomorphic(loaded[0], triangle_graph)

    def test_roundtrip_multiple_graphs(self, tmp_path, triangle_graph, path_graph):
        target = tmp_path / "many.lg"
        write_lg([triangle_graph, path_graph], target)
        loaded = read_lg(target)
        assert len(loaded) == 2
        assert are_isomorphic(loaded[0], triangle_graph)
        assert are_isomorphic(loaded[1], path_graph)

    def test_roundtrip_random_graph(self, tmp_path):
        graph = erdos_renyi_graph(40, 2, 3, seed=5)
        target = tmp_path / "random.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.num_vertices() == graph.num_vertices()
        assert loaded.num_edges() == graph.num_edges()

    def test_edge_labels_roundtrip(self, tmp_path):
        graph = build_graph({0: "a", 1: "b"}, [])
        graph.add_edge(0, 1, "rel")
        target = tmp_path / "labeled.lg"
        write_lg(graph, target)
        loaded = read_lg(target)[0]
        assert loaded.edge_label(0, 1) == "rel"

    def test_malformed_vertex_line(self, tmp_path):
        target = tmp_path / "bad.lg"
        target.write_text("t # 0\nv 0\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_lg(target)

    def test_vertex_before_transaction(self, tmp_path):
        target = tmp_path / "bad2.lg"
        target.write_text("v 0 a\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_lg(target)

    def test_unknown_line(self, tmp_path):
        target = tmp_path / "bad3.lg"
        target.write_text("t # 0\nq nonsense\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_lg(target)

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        target = tmp_path / "ok.lg"
        target.write_text("# comment\n\nt # 0\nv 0 a\nv 1 b\ne 0 1\n", encoding="utf-8")
        loaded = read_lg(target)
        assert loaded[0].num_edges() == 1


class TestEdgeList:
    def test_graph_from_edge_list(self):
        graph = graph_from_edge_list(
            [(0, "a", 1, "b"), (1, "b", 2, "c")], name="fixture"
        )
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 2
        assert graph.label_of(2) == "c"
        assert graph.name == "fixture"
