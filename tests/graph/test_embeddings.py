"""Tests for embedding bookkeeping and support measures."""

from __future__ import annotations

import pytest

from repro.graph.embeddings import (
    Embedding,
    EmbeddingList,
    embedding_support,
    embeddings_from_maps,
    mni_support,
    path_embedding,
    transaction_support,
)
from repro.graph.isomorphism import find_subgraph_embeddings
from repro.graph.labeled_graph import build_graph


class TestEmbedding:
    def test_from_dict_roundtrip(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.as_dict() == {0: 10, 1: 11}
        assert embedding.graph_index == 0

    def test_image_and_key(self):
        embedding = Embedding.from_dict({0: 10, 1: 11}, graph_index=3)
        assert embedding.image() == frozenset({10, 11})
        assert embedding.image_key() == (3, frozenset({10, 11}))

    def test_target_of(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.target_of(1) == 11
        with pytest.raises(KeyError):
            embedding.target_of(9)

    def test_extended(self):
        embedding = Embedding.from_dict({0: 10})
        extended = embedding.extended(1, 20)
        assert extended.as_dict() == {0: 10, 1: 20}
        assert len(embedding) == 1  # original untouched
        with pytest.raises(KeyError):
            embedding.extended(0, 30)

    def test_embeddings_are_hashable(self):
        a = Embedding.from_dict({0: 1, 1: 2})
        b = Embedding.from_dict({1: 2, 0: 1})
        assert a == b
        assert len({a, b}) == 1


class TestEmbeddingList:
    def test_embedding_support_counts_distinct_images(self):
        collection = EmbeddingList()
        collection.add(Embedding.from_dict({0: 1, 1: 2}))
        collection.add(Embedding.from_dict({0: 2, 1: 1}))  # same image set
        collection.add(Embedding.from_dict({0: 3, 1: 4}))
        assert len(collection) == 3
        assert collection.embedding_support() == 2

    def test_transaction_support(self):
        collection = EmbeddingList()
        collection.add(Embedding.from_dict({0: 1}, graph_index=0))
        collection.add(Embedding.from_dict({0: 2}, graph_index=0))
        collection.add(Embedding.from_dict({0: 1}, graph_index=4))
        assert collection.transaction_support() == 2
        assert collection.transactions() == {0, 4}

    def test_deduplicated(self):
        collection = EmbeddingList()
        collection.add(Embedding.from_dict({0: 1, 1: 2}))
        collection.add(Embedding.from_dict({0: 2, 1: 1}))
        deduplicated = collection.deduplicated()
        assert len(deduplicated) == 1

    def test_images(self):
        collection = embeddings_from_maps([{0: 5, 1: 6}], graph_index=2)
        assert collection.images() == [frozenset({5, 6})]
        assert list(collection)[0].graph_index == 2


class TestSupportMeasures:
    def test_mni_support_simple(self):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        graph = build_graph(
            {0: "a", 1: "b", 2: "b", 3: "a"}, [(0, 1), (0, 2), (3, 1)]
        )
        maps = find_subgraph_embeddings(pattern, graph)
        embeddings = [Embedding.from_dict(m) for m in maps]
        # Vertex 0 (label a) maps to {0, 3}; vertex 1 (label b) maps to {1, 2}.
        assert mni_support(pattern, embeddings) == 2

    def test_mni_support_empty(self):
        pattern = build_graph({0: "a"}, [])
        assert mni_support(pattern, []) == 0

    def test_embedding_and_transaction_support_helpers(self):
        embeddings = [
            Embedding.from_dict({0: 1}, graph_index=0),
            Embedding.from_dict({0: 1}, graph_index=1),
            Embedding.from_dict({0: 2}, graph_index=1),
        ]
        assert transaction_support(embeddings) == 2
        assert embedding_support(embeddings) == 3

    def test_path_embedding_valid(self):
        embedding = path_embedding([0, 1, 2], [10, 11, 12], graph_index=1)
        assert embedding.as_dict() == {0: 10, 1: 11, 2: 12}
        assert embedding.graph_index == 1

    def test_path_embedding_length_mismatch(self):
        with pytest.raises(ValueError):
            path_embedding([0, 1], [10])

    def test_path_embedding_duplicate_data_vertices(self):
        with pytest.raises(ValueError):
            path_embedding([0, 1, 2], [10, 11, 10])

    def test_path_embedding_duplicate_pattern_vertices(self):
        with pytest.raises(ValueError):
            path_embedding([0, 1, 1], [10, 11, 12])
