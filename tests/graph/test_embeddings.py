"""Tests for embedding bookkeeping and support measures."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.embeddings import (
    Embedding,
    EmbeddingList,
    EmbeddingTable,
    embedding_support,
    embeddings_from_maps,
    mni_support,
    path_embedding,
    set_row_storage,
    transaction_support,
)
from repro.graph.isomorphism import find_subgraph_embeddings
from repro.graph.labeled_graph import build_graph


class TestEmbedding:
    def test_from_dict_roundtrip(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.as_dict() == {0: 10, 1: 11}
        assert embedding.graph_index == 0

    def test_image_and_key(self):
        embedding = Embedding.from_dict({0: 10, 1: 11}, graph_index=3)
        assert embedding.image() == frozenset({10, 11})
        assert embedding.image_key() == (3, frozenset({10, 11}))

    def test_target_of(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.target_of(1) == 11
        with pytest.raises(KeyError):
            embedding.target_of(9)

    def test_extended(self):
        embedding = Embedding.from_dict({0: 10})
        extended = embedding.extended(1, 20)
        assert extended.as_dict() == {0: 10, 1: 20}
        assert len(embedding) == 1  # original untouched
        with pytest.raises(KeyError):
            embedding.extended(0, 30)

    def test_embeddings_are_hashable(self):
        a = Embedding.from_dict({0: 1, 1: 2})
        b = Embedding.from_dict({1: 2, 0: 1})
        assert a == b
        assert len({a, b}) == 1


class TestEmbeddingList:
    def test_embedding_support_counts_distinct_images(self):
        collection = EmbeddingList()
        collection.add(Embedding.from_dict({0: 1, 1: 2}))
        collection.add(Embedding.from_dict({0: 2, 1: 1}))  # same image set
        collection.add(Embedding.from_dict({0: 3, 1: 4}))
        assert len(collection) == 3
        assert collection.embedding_support() == 2

    def test_transaction_support(self):
        collection = EmbeddingList()
        collection.add(Embedding.from_dict({0: 1}, graph_index=0))
        collection.add(Embedding.from_dict({0: 2}, graph_index=0))
        collection.add(Embedding.from_dict({0: 1}, graph_index=4))
        assert collection.transaction_support() == 2
        assert collection.transactions() == {0, 4}

    def test_deduplicated(self):
        collection = EmbeddingList()
        collection.add(Embedding.from_dict({0: 1, 1: 2}))
        collection.add(Embedding.from_dict({0: 2, 1: 1}))
        deduplicated = collection.deduplicated()
        assert len(deduplicated) == 1

    def test_images(self):
        collection = embeddings_from_maps([{0: 5, 1: 6}], graph_index=2)
        assert collection.images() == [frozenset({5, 6})]
        assert list(collection)[0].graph_index == 2


def _parity_pair(embeddings):
    """The same occurrences as legacy list and as a columnar table."""
    collection = EmbeddingList(list(embeddings))
    table = EmbeddingTable.from_embeddings(embeddings)
    return collection, table


class TestEmbeddingTable:
    def test_prefixes_cached_per_width(self):
        embeddings = [
            Embedding.from_dict({0: 10, 1: 11, 2: 12}, graph_index=0),
            Embedding.from_dict({0: 20, 1: 21, 2: 22}, graph_index=1),
        ]
        table = EmbeddingTable.from_embeddings(embeddings)
        prefixes = table.prefixes(2)
        assert prefixes == [(10, 11), (20, 21)]
        # Cached: the same list object answers repeat queries.
        assert table.prefixes(2) is prefixes
        assert table.prefixes(3) == [(10, 11, 12), (20, 21, 22)]

    def test_round_trip_preserves_embeddings(self):
        embeddings = [
            Embedding.from_dict({0: 10, 1: 11, 2: 12}, graph_index=0),
            Embedding.from_dict({0: 20, 1: 21, 2: 22}, graph_index=3),
        ]
        table = EmbeddingTable.from_embeddings(embeddings)
        assert len(table) == 2
        assert table.columns == (0, 1, 2)
        assert table.to_embeddings() == embeddings
        assert list(table) == embeddings

    def test_from_path_occurrences_matches_wire_format(self):
        table = EmbeddingTable.from_path_occurrences(
            [(0, (10, 11, 12)), (2, (5, 6, 7))], length=2
        )
        assert table.to_embeddings() == [
            Embedding.from_dict({0: 10, 1: 11, 2: 12}, graph_index=0),
            Embedding.from_dict({0: 5, 1: 6, 2: 7}, graph_index=2),
        ]

    def test_mixed_domains_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTable.from_embeddings(
                [Embedding.from_dict({0: 1}), Embedding.from_dict({0: 1, 1: 2})]
            )
        with pytest.raises(ValueError):  # equal size, different vertex sets
            EmbeddingTable.from_embeddings(
                [Embedding.from_dict({0: 1, 1: 2}), Embedding.from_dict({0: 3, 2: 4})]
            )
        with pytest.raises(ValueError):
            EmbeddingTable((0, 1), rows=[(5,)], graph_ids=[0])
        with pytest.raises(ValueError):
            EmbeddingTable((0, 1), rows=[(5, 6)], graph_ids=[])

    def test_embedding_support_parity_with_duplicate_images(self):
        # Two embeddings over the same vertex image (a symmetric occurrence)
        # plus one distinct occurrence: |E[P]| must be 2 under both
        # representations.
        embeddings = [
            Embedding.from_dict({0: 1, 1: 2}),
            Embedding.from_dict({0: 2, 1: 1}),  # same image, flipped mapping
            Embedding.from_dict({0: 3, 1: 4}),
        ]
        collection, table = _parity_pair(embeddings)
        assert table.embedding_support() == collection.embedding_support() == 2

    def test_embedding_support_duplicate_image_across_transactions(self):
        # The same vertex image in two *different* transactions is two
        # occurrences, not one — the graph index is part of the image key.
        embeddings = [
            Embedding.from_dict({0: 1, 1: 2}, graph_index=0),
            Embedding.from_dict({0: 1, 1: 2}, graph_index=1),
            Embedding.from_dict({0: 2, 1: 1}, graph_index=1),
        ]
        collection, table = _parity_pair(embeddings)
        assert table.embedding_support() == collection.embedding_support() == 2
        assert table.image_keys() == {(0, (1, 2)), (1, (1, 2))}

    def test_transaction_support_parity(self):
        embeddings = [
            Embedding.from_dict({0: 1}, graph_index=0),
            Embedding.from_dict({0: 2}, graph_index=0),
            Embedding.from_dict({0: 1}, graph_index=4),
        ]
        collection, table = _parity_pair(embeddings)
        assert table.transaction_support() == collection.transaction_support() == 2
        assert table.transactions() == collection.transactions() == {0, 4}

    def test_mni_support_parity_single_graph(self):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        graph = build_graph(
            {0: "a", 1: "b", 2: "b", 3: "a"}, [(0, 1), (0, 2), (3, 1)]
        )
        embeddings = [
            Embedding.from_dict(mapping)
            for mapping in find_subgraph_embeddings(pattern, graph)
        ]
        table = EmbeddingTable.from_embeddings(embeddings)
        assert table.mni_support() == mni_support(pattern, embeddings) == 2

    def test_mni_support_parity_transaction_database(self):
        # Minimum-image counting treats (transaction, vertex) pairs as the
        # images; occurrences of the same data vertex in different
        # transactions must count separately under both representations.
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        embeddings = [
            Embedding.from_dict({0: 1, 1: 2}, graph_index=0),
            Embedding.from_dict({0: 1, 1: 2}, graph_index=1),
            Embedding.from_dict({0: 1, 1: 3}, graph_index=1),
        ]
        table = EmbeddingTable.from_embeddings(embeddings)
        assert table.mni_support() == mni_support(pattern, embeddings) == 2

    def test_supports_cached_and_empty_table(self):
        table = EmbeddingTable((0, 1))
        assert table.embedding_support() == 0
        assert table.transaction_support() == 0
        assert table.mni_support() == 0
        filled = EmbeddingTable.from_embeddings([Embedding.from_dict({0: 1, 1: 2})])
        assert filled.embedding_support() == 1
        filled.rows.append((3, 4))  # mutation after caching is not re-counted
        filled.graph_ids.append(0)
        assert filled.embedding_support() == 1

    def test_extended_joins_rows(self):
        table = EmbeddingTable.from_embeddings(
            [
                Embedding.from_dict({0: 10, 1: 11}, graph_index=0),
                Embedding.from_dict({0: 20, 1: 21}, graph_index=1),
            ]
        )
        extended = table.extended(2, [(0, 12), (1, 22), (1, 23)])
        assert extended.columns == (0, 1, 2)
        assert extended.rows == [(10, 11, 12), (20, 21, 22), (20, 21, 23)]
        assert extended.graph_ids == [0, 1, 1]
        # The parent table is untouched.
        assert table.columns == (0, 1) and len(table) == 2

    def test_subset_shares_row_tuples(self):
        table = EmbeddingTable.from_embeddings(
            [
                Embedding.from_dict({0: 10, 1: 11}, graph_index=0),
                Embedding.from_dict({0: 20, 1: 21}, graph_index=2),
            ]
        )
        subset = table.subset([1])
        assert subset.rows[0] is table.rows[1]
        assert subset.graph_ids == [2]

    def test_column_layouts_are_interned(self):
        one = EmbeddingTable.from_embeddings([Embedding.from_dict({0: 1, 1: 2})])
        two = EmbeddingTable.from_embeddings([Embedding.from_dict({0: 7, 1: 8})])
        assert one.columns is two.columns


class TestSupportMeasures:
    def test_mni_support_simple(self):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        graph = build_graph(
            {0: "a", 1: "b", 2: "b", 3: "a"}, [(0, 1), (0, 2), (3, 1)]
        )
        maps = find_subgraph_embeddings(pattern, graph)
        embeddings = [Embedding.from_dict(m) for m in maps]
        # Vertex 0 (label a) maps to {0, 3}; vertex 1 (label b) maps to {1, 2}.
        assert mni_support(pattern, embeddings) == 2

    def test_mni_support_empty(self):
        pattern = build_graph({0: "a"}, [])
        assert mni_support(pattern, []) == 0

    def test_embedding_and_transaction_support_helpers(self):
        embeddings = [
            Embedding.from_dict({0: 1}, graph_index=0),
            Embedding.from_dict({0: 1}, graph_index=1),
            Embedding.from_dict({0: 2}, graph_index=1),
        ]
        assert transaction_support(embeddings) == 2
        assert embedding_support(embeddings) == 3

    def test_path_embedding_valid(self):
        embedding = path_embedding([0, 1, 2], [10, 11, 12], graph_index=1)
        assert embedding.as_dict() == {0: 10, 1: 11, 2: 12}
        assert embedding.graph_index == 1

    def test_path_embedding_length_mismatch(self):
        with pytest.raises(ValueError):
            path_embedding([0, 1], [10])

    def test_path_embedding_duplicate_data_vertices(self):
        with pytest.raises(ValueError):
            path_embedding([0, 1, 2], [10, 11, 10])

    def test_path_embedding_duplicate_pattern_vertices(self):
        with pytest.raises(ValueError):
            path_embedding([0, 1, 1], [10, 11, 12])


def _random_table_embeddings(rng, width, num_rows, vertex_pool, num_graphs):
    """Random injective rows over a small pool — duplicate images likely."""
    columns = tuple(range(width))
    embeddings = []
    for _ in range(num_rows):
        images = rng.sample(vertex_pool, width)
        embeddings.append(
            Embedding(
                mapping=tuple(zip(columns, images)),
                graph_index=rng.randrange(num_graphs),
            )
        )
    return embeddings


class TestSupportCounterDifferential:
    """ISSUE-9: the merge-scan support counter vs the hashing reference.

    :meth:`EmbeddingTable.embedding_support` counts distinct (transaction,
    image) occurrences by a sort + adjacent-distinct scan (byte slices of
    the flat key arena under array storage); :meth:`image_keys` is the
    hashing path it replaced.  Both must agree on every table shape, and
    the two storage modes must produce identical supports and identically
    *ordered* ``row_keys``.
    """

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_merge_scan_matches_hashing_across_storage_modes(
        self, width, num_rows, num_graphs, seed
    ):
        rng = random.Random(seed)
        pool = list(range(width + 3))  # small pool → permuted duplicate images
        embeddings = _random_table_embeddings(rng, width, num_rows, pool, num_graphs)
        results = {}
        previous = set_row_storage("array")
        try:
            for mode in ("array", "tuple"):
                set_row_storage(mode)
                table = EmbeddingTable.from_embeddings(embeddings)
                if num_rows:  # empty tables have no arena in either mode
                    assert table.storage_mode() == mode
                # Hashing reference on a fresh copy so the merge-scan cannot
                # read a cached value derived from image_keys (or vice versa).
                hashed = len(EmbeddingTable.from_embeddings(embeddings).image_keys())
                results[mode] = (
                    table.embedding_support(),
                    table.mni_support(),
                    table.transaction_support(),
                    table.row_keys(),
                )
                assert results[mode][0] == hashed
        finally:
            set_row_storage(previous)
        assert results["array"] == results["tuple"]

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_parity_survives_extend_and_subset(self, width, num_rows, seed):
        rng = random.Random(seed)
        pool = list(range(width + 4))
        embeddings = _random_table_embeddings(rng, width, num_rows, pool, 2)
        new_vertex = width  # next pattern column
        results = {}
        previous = set_row_storage("array")
        try:
            for mode in ("array", "tuple"):
                set_row_storage(mode)
                table = EmbeddingTable.from_embeddings(embeddings)
                table.row_keys()  # force the sorted-key path in extended()
                join_rng = random.Random(seed + 1)
                join_pairs = []
                for row_index, row in enumerate(table.rows):
                    free = [v for v in pool if v not in row]
                    if free and join_rng.random() < 0.8:
                        join_pairs.append((row_index, join_rng.choice(free)))
                child = table.extended(new_vertex, join_pairs)
                keep = [
                    i
                    for i in range(len(child.graph_ids))
                    if random.Random(seed + 2 + i).random() < 0.7
                ]
                grandchild = child.subset(keep)
                results[mode] = (
                    child.embedding_support(),
                    child.row_keys(),
                    len(child.image_keys()),
                    grandchild.embedding_support(),
                    grandchild.row_keys(),
                    grandchild.mni_support(),
                )
                assert results[mode][0] == results[mode][2]
        finally:
            set_row_storage(previous)
        assert results["array"] == results["tuple"]
