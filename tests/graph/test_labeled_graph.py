"""Unit tests for the LabeledGraph data structure."""

from __future__ import annotations

import pytest

from repro.graph.labeled_graph import Edge, LabeledGraph, build_graph, graph_from_paths


class TestVertexOperations:
    def test_add_vertex_and_label(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "a")
        assert graph.has_vertex(1)
        assert graph.label_of(1) == "a"
        assert graph.num_vertices() == 1

    def test_add_vertex_idempotent_same_label(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "a")
        graph.add_vertex(1, "a")
        assert graph.num_vertices() == 1

    def test_add_vertex_conflicting_label_raises(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "a")
        with pytest.raises(ValueError):
            graph.add_vertex(1, "b")

    def test_remove_vertex_removes_incident_edges(self):
        graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        graph.remove_vertex(1)
        assert not graph.has_vertex(1)
        assert graph.num_edges() == 0
        assert graph.num_vertices() == 2

    def test_remove_missing_vertex_raises(self):
        graph = LabeledGraph()
        with pytest.raises(KeyError):
            graph.remove_vertex(5)

    def test_label_histogram(self):
        graph = build_graph({0: "a", 1: "a", 2: "b"}, [])
        assert graph.label_histogram() == {"a": 2, "b": 1}

    def test_labels_used(self):
        graph = build_graph({0: "a", 1: "a", 2: "b"}, [])
        assert graph.labels_used() == {"a", "b"}


class TestEdgeOperations:
    def test_add_edge(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges() == 1

    def test_add_edge_missing_endpoint_raises(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "a")
        with pytest.raises(KeyError):
            graph.add_edge(0, 1)

    def test_self_loop_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "a")
        with pytest.raises(ValueError):
            graph.add_edge(0, 0)

    def test_duplicate_edge_is_noop(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        graph.add_edge(1, 0)
        assert graph.num_edges() == 1

    def test_edge_label_roundtrip(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "a")
        graph.add_vertex(1, "b")
        graph.add_edge(0, 1, "knows")
        assert graph.edge_label(0, 1) == "knows"
        assert graph.edge_label(1, 0) == "knows"

    def test_edge_relabel_conflict_raises(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "a")
        graph.add_vertex(1, "b")
        graph.add_edge(0, 1, "x")
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, "y")

    def test_remove_edge(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        graph.remove_edge(0, 1)
        assert graph.num_edges() == 0
        assert not graph.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        graph = build_graph({0: "a", 1: "b"}, [])
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_edges_iteration_yields_each_once(self):
        graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert all(edge.u < edge.v for edge in edges)

    def test_edge_normalises_endpoints(self):
        assert Edge(5, 2) == Edge(2, 5)
        assert Edge(5, 2).endpoints() == (2, 5)

    def test_edge_other(self):
        edge = Edge(1, 2)
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(ValueError):
            edge.other(3)

    def test_degree(self):
        graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (0, 2)])
        assert graph.degree(0) == 2
        assert graph.degree(1) == 1


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        clone = graph.copy()
        clone.add_vertex(2, "c")
        clone.add_edge(1, 2)
        assert graph.num_vertices() == 2
        assert graph.num_edges() == 1
        assert clone.num_vertices() == 3

    def test_induced_subgraph(self):
        graph = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (1, 2), (2, 3), (0, 3)]
        )
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(0, 3)

    def test_subgraph_missing_vertex_raises(self):
        graph = build_graph({0: "a"}, [])
        with pytest.raises(KeyError):
            graph.subgraph([0, 7])

    def test_edge_subgraph(self):
        graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)])
        sub = graph.edge_subgraph([(0, 1), (1, 2)])
        assert sub.num_edges() == 2
        assert sub.num_vertices() == 3

    def test_relabel_vertices(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        renamed = graph.relabel_vertices({0: 10, 1: 20})
        assert renamed.has_edge(10, 20)
        assert renamed.label_of(10) == "a"

    def test_relabel_requires_total_injective_mapping(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        with pytest.raises(ValueError):
            graph.relabel_vertices({0: 10})
        with pytest.raises(ValueError):
            graph.relabel_vertices({0: 10, 1: 10})

    def test_compact(self):
        graph = build_graph({5: "a", 9: "b"}, [(5, 9)])
        compacted, mapping = graph.compact()
        assert set(compacted.vertices()) == {0, 1}
        assert compacted.has_edge(mapping[5], mapping[9])

    def test_merged_with(self):
        left = build_graph({0: "a", 1: "b"}, [(0, 1)])
        right = build_graph({1: "b", 2: "c"}, [(1, 2)])
        merged = left.merged_with(right)
        assert merged.num_vertices() == 3
        assert merged.num_edges() == 2


class TestConnectivity:
    def test_connected_path(self, path_graph):
        assert path_graph.is_connected()

    def test_disconnected_components(self, two_triangles_graph):
        assert not two_triangles_graph.is_connected()
        components = two_triangles_graph.connected_components()
        assert len(components) == 2
        assert all(len(component) == 3 for component in components)

    def test_empty_graph_is_connected(self):
        assert LabeledGraph().is_connected()


class TestBuilders:
    def test_graph_from_paths(self):
        graph = graph_from_paths([["a", "b", "c"], ["x", "y"]])
        assert graph.num_vertices() == 5
        assert graph.num_edges() == 3
        assert len(graph.connected_components()) == 2

    def test_add_labeled_path_returns_ids(self):
        graph = LabeledGraph()
        ids = graph.add_labeled_path(["a", "b", "c"])
        assert len(ids) == 3
        assert graph.has_edge(ids[0], ids[1])
        assert graph.has_edge(ids[1], ids[2])

    def test_dunder_protocols(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        assert 0 in graph
        assert len(graph) == 2
        assert sorted(graph) == [0, 1]
        assert "LabeledGraph" in repr(graph)
