"""Unit and property tests for labeled (sub)graph isomorphism."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi_graph, random_tree_pattern
from repro.graph.isomorphism import (
    are_isomorphic,
    count_embeddings,
    find_automorphisms,
    find_subgraph_embeddings,
    is_subgraph_isomorphic,
    iter_subgraph_embeddings,
)
from repro.graph.labeled_graph import build_graph


class TestSubgraphEmbeddings:
    def test_single_edge_in_path(self, path_graph):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        embeddings = find_subgraph_embeddings(pattern, path_graph)
        # a-b occurs twice in a-b-c-b-a (vertices 0-1 and 3-4).
        assert len(embeddings) == 2

    def test_embeddings_are_valid_maps(self, path_graph):
        pattern = build_graph({0: "b", 1: "c"}, [(0, 1)])
        for mapping in find_subgraph_embeddings(pattern, path_graph):
            assert path_graph.label_of(mapping[0]) == "b"
            assert path_graph.label_of(mapping[1]) == "c"
            assert path_graph.has_edge(mapping[0], mapping[1])

    def test_triangle_in_triangle(self, triangle_graph):
        assert is_subgraph_isomorphic(triangle_graph, triangle_graph)

    def test_no_embedding_with_wrong_labels(self, triangle_graph):
        pattern = build_graph({0: "a", 1: "z"}, [(0, 1)])
        assert not is_subgraph_isomorphic(pattern, triangle_graph)

    def test_pattern_larger_than_graph(self, triangle_graph):
        pattern = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (1, 2), (2, 3)]
        )
        assert find_subgraph_embeddings(pattern, triangle_graph) == []

    def test_distinct_images_deduplicates_automorphic_maps(self):
        # Pattern a-b-a has an automorphism flipping the two 'a' vertices.
        pattern = build_graph({0: "a", 1: "b", 2: "a"}, [(0, 1), (1, 2)])
        graph = build_graph({10: "a", 11: "b", 12: "a"}, [(10, 11), (11, 12)])
        distinct = find_subgraph_embeddings(pattern, graph, distinct_images=True)
        all_maps = find_subgraph_embeddings(pattern, graph, distinct_images=False)
        assert len(distinct) == 1
        assert len(all_maps) == 2

    def test_max_embeddings_caps_search(self, two_triangles_graph):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        capped = find_subgraph_embeddings(pattern, two_triangles_graph, max_embeddings=1)
        assert len(capped) == 1

    def test_count_embeddings(self, two_triangles_graph):
        pattern = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)])
        assert count_embeddings(pattern, two_triangles_graph) == 2

    def test_anchored_matching_restricts_results(self, two_triangles_graph):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        anchored = list(
            iter_subgraph_embeddings(pattern, two_triangles_graph, anchors={0: 3})
        )
        assert anchored
        assert all(mapping[0] == 3 for mapping in anchored)

    def test_anchor_unknown_pattern_vertex_raises(self, triangle_graph):
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        with pytest.raises(KeyError):
            list(iter_subgraph_embeddings(pattern, triangle_graph, anchors={99: 0}))

    def test_induced_matching_respects_non_edges(self):
        # Pattern: path a-b-c (no a-c edge).  Graph: triangle a-b-c.
        pattern = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        triangle = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)])
        assert find_subgraph_embeddings(pattern, triangle, induced=False)
        assert not find_subgraph_embeddings(pattern, triangle, induced=True)

    def test_empty_pattern_yields_nothing(self, triangle_graph):
        from repro.graph.labeled_graph import LabeledGraph

        assert find_subgraph_embeddings(LabeledGraph(), triangle_graph) == []

    def test_edge_labels_respected(self):
        graph = build_graph({0: "a", 1: "b", 2: "b"}, [])
        graph.add_edge(0, 1, "x")
        graph.add_edge(0, 2, "y")
        pattern = build_graph({0: "a", 1: "b"}, [])
        pattern.add_edge(0, 1, "x")
        embeddings = find_subgraph_embeddings(pattern, graph)
        assert len(embeddings) == 1
        assert embeddings[0][1] == 1


class TestGraphIsomorphism:
    def test_isomorphic_relabeled_ids(self, triangle_graph):
        other = build_graph({10: "b", 20: "c", 30: "a"}, [(10, 20), (20, 30), (10, 30)])
        assert are_isomorphic(triangle_graph, other)

    def test_not_isomorphic_different_labels(self, triangle_graph):
        other = build_graph({0: "a", 1: "b", 2: "d"}, [(0, 1), (1, 2), (0, 2)])
        assert not are_isomorphic(triangle_graph, other)

    def test_not_isomorphic_different_structure(self):
        path = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2)])
        triangle = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        assert not are_isomorphic(path, triangle)

    def test_not_isomorphic_different_sizes(self, triangle_graph, path_graph):
        assert not are_isomorphic(triangle_graph, path_graph)

    def test_same_degree_sequence_different_structure(self):
        # Two graphs on 6 'a' vertices, both 2-regular: one hexagon vs two triangles.
        hexagon = build_graph(
            {i: "a" for i in range(6)},
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        )
        triangles = build_graph(
            {i: "a" for i in range(6)},
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert not are_isomorphic(hexagon, triangles)

    def test_automorphisms_of_symmetric_path(self):
        pattern = build_graph({0: "a", 1: "b", 2: "a"}, [(0, 1), (1, 2)])
        automorphisms = find_automorphisms(pattern)
        assert len(automorphisms) == 2

    def test_automorphisms_of_asymmetric_path(self):
        pattern = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        automorphisms = find_automorphisms(pattern)
        assert len(automorphisms) == 1


@st.composite
def random_small_tree(draw):
    size = draw(st.integers(min_value=1, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    labels = draw(st.integers(min_value=1, max_value=3))
    return random_tree_pattern(size, labels, seed=seed)


class TestIsomorphismProperties:
    @given(random_small_tree(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_isomorphism_invariant_under_relabeling(self, tree, seed):
        rng = random.Random(seed)
        ids = list(tree.vertices())
        shuffled = ids[:]
        rng.shuffle(shuffled)
        renamed = tree.relabel_vertices(dict(zip(ids, [i + 100 for i in shuffled])))
        assert are_isomorphic(tree, renamed)

    @given(random_small_tree())
    @settings(max_examples=40, deadline=None)
    def test_pattern_embeds_in_itself(self, tree):
        assert is_subgraph_isomorphic(tree, tree)

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_subtree_embeds_in_supertree(self, size, seed):
        tree = random_tree_pattern(size, 2, seed=seed)
        leaf = max(tree.vertices(), key=lambda v: (tree.degree(v) == 1, -v))
        # Remove one leaf to get a strict subgraph; it must still embed.
        sub = tree.copy()
        leaves = [v for v in sub.vertices() if sub.degree(v) == 1]
        sub.remove_vertex(leaves[0])
        if sub.num_vertices() > 0:
            assert is_subgraph_isomorphic(sub, tree)

    def test_embeddings_count_scales_with_copies(self):
        rng = random.Random(7)
        graph = erdos_renyi_graph(30, 1.5, 4, rng=rng)
        pattern = build_graph({0: "L0", 1: "L1"}, [(0, 1)])
        direct = count_embeddings(pattern, graph)
        # Count by brute force over edges.
        expected = sum(
            1
            for edge in graph.edges()
            if {graph.label_of(edge.u), graph.label_of(edge.v)} == {"L0", "L1"}
        )
        assert direct == expected
