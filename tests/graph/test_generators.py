"""Tests for random graph generators and pattern injection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    default_labels,
    erdos_renyi_graph,
    inject_pattern,
    random_labeled_path,
    random_skinny_pattern,
    random_transaction_database,
    random_tree_pattern,
)
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.paths import diameter, distance_to_set, all_diameter_paths


class TestErdosRenyi:
    def test_vertex_count_and_labels(self):
        graph = erdos_renyi_graph(50, 3, 4, seed=1)
        assert graph.num_vertices() == 50
        assert graph.labels_used() <= set(default_labels(4))

    def test_deterministic_with_seed(self):
        one = erdos_renyi_graph(40, 2.5, 3, seed=99)
        two = erdos_renyi_graph(40, 2.5, 3, seed=99)
        assert sorted(e.endpoints() for e in one.edges()) == sorted(
            e.endpoints() for e in two.edges()
        )
        assert one.vertex_labels() == two.vertex_labels()

    def test_different_seeds_differ(self):
        one = erdos_renyi_graph(40, 2.5, 3, seed=1)
        two = erdos_renyi_graph(40, 2.5, 3, seed=2)
        assert sorted(e.endpoints() for e in one.edges()) != sorted(
            e.endpoints() for e in two.edges()
        )

    def test_average_degree_roughly_matches(self):
        graph = erdos_renyi_graph(2_000, 4.0, 5, seed=7)
        average_degree = 2 * graph.num_edges() / graph.num_vertices()
        assert 3.0 < average_degree < 5.0

    def test_zero_vertices(self):
        graph = erdos_renyi_graph(0, 3, 2, seed=1)
        assert graph.num_vertices() == 0

    def test_zero_degree(self):
        graph = erdos_renyi_graph(10, 0, 2, seed=1)
        assert graph.num_edges() == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(-1, 2, 2)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, -1, 2)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 2, 0)

    def test_custom_label_alphabet(self):
        graph = erdos_renyi_graph(20, 2, 2, seed=3, labels=["x", "y", "z"])
        assert graph.labels_used() <= {"x", "y", "z"}


class TestPatternGenerators:
    def test_random_labeled_path_shape(self):
        path = random_labeled_path(5, 3, seed=1)
        assert path.num_vertices() == 6
        assert path.num_edges() == 5
        assert diameter(path) == 5

    def test_random_labeled_path_zero_length(self):
        path = random_labeled_path(0, 3, seed=1)
        assert path.num_vertices() == 1
        assert path.num_edges() == 0

    def test_random_labeled_path_negative_raises(self):
        with pytest.raises(ValueError):
            random_labeled_path(-1, 3)

    def test_skinny_pattern_backbone_is_diameter(self):
        pattern = random_skinny_pattern(10, 2, 18, 5, seed=11)
        assert diameter(pattern) == 10
        # Every vertex within distance 2 of some diameter path.
        backbone = all_diameter_paths(pattern)[0]
        levels = distance_to_set(pattern, backbone)
        assert max(levels.values()) <= 2

    def test_skinny_pattern_zero_skinniness_is_path(self):
        pattern = random_skinny_pattern(6, 0, 7, 4, seed=5)
        assert pattern.num_vertices() == 7
        assert pattern.num_edges() == 6
        assert diameter(pattern) == 6

    def test_skinny_pattern_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_skinny_pattern(0, 1, 5, 2)
        with pytest.raises(ValueError):
            random_skinny_pattern(4, -1, 5, 2)
        with pytest.raises(ValueError):
            random_skinny_pattern(4, 1, 3, 2)
        with pytest.raises(ValueError):
            random_skinny_pattern(4, 3, 10, 2)  # 2*delta > backbone
        with pytest.raises(ValueError):
            random_skinny_pattern(4, 0, 8, 2)  # extras with delta = 0

    def test_tree_pattern_is_tree(self):
        tree = random_tree_pattern(9, 3, seed=2)
        assert tree.num_vertices() == 9
        assert tree.num_edges() == 8
        assert tree.is_connected()

    def test_tree_pattern_invalid(self):
        with pytest.raises(ValueError):
            random_tree_pattern(0, 2)

    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_skinny_pattern_diameter_property(self, backbone, skinniness, seed):
        if 2 * skinniness > backbone:
            return
        extra = 0 if skinniness == 0 else 2 * skinniness
        pattern = random_skinny_pattern(
            backbone, skinniness, backbone + 1 + extra, 4, seed=seed
        )
        assert diameter(pattern) == backbone


class TestInjection:
    def test_injection_adds_embeddings(self):
        background = erdos_renyi_graph(60, 2, 6, seed=3)
        pattern = random_labeled_path(4, 6, seed=4)
        before = background.num_vertices()
        maps = inject_pattern(background, pattern, copies=3, seed=5)
        assert len(maps) == 3
        assert background.num_vertices() == before + 3 * pattern.num_vertices()
        assert is_subgraph_isomorphic(pattern, background)

    def test_injection_maps_are_faithful(self):
        background = erdos_renyi_graph(30, 1, 4, seed=1)
        pattern = random_tree_pattern(5, 4, seed=2)
        maps = inject_pattern(background, pattern, copies=2, seed=3)
        for mapping in maps:
            for edge in pattern.edges():
                assert background.has_edge(mapping[edge.u], mapping[edge.v])
            for vertex in pattern.vertices():
                assert background.label_of(mapping[vertex]) == pattern.label_of(vertex)

    def test_injection_into_empty_background(self):
        from repro.graph.labeled_graph import LabeledGraph

        background = LabeledGraph()
        pattern = random_labeled_path(2, 3, seed=1)
        maps = inject_pattern(background, pattern, copies=2, seed=2)
        assert len(maps) == 2
        assert background.num_vertices() == 2 * 3

    def test_injection_invalid_parameters(self):
        background = erdos_renyi_graph(10, 1, 2, seed=1)
        pattern = random_labeled_path(1, 2, seed=1)
        with pytest.raises(ValueError):
            inject_pattern(background, pattern, copies=-1)
        with pytest.raises(ValueError):
            inject_pattern(background, pattern, copies=1, bridge_probability=2.0)

    def test_zero_copies(self):
        background = erdos_renyi_graph(10, 1, 2, seed=1)
        pattern = random_labeled_path(1, 2, seed=1)
        before = background.num_vertices()
        assert inject_pattern(background, pattern, copies=0) == []
        assert background.num_vertices() == before


class TestTransactionDatabase:
    def test_database_shape(self):
        database = random_transaction_database(5, 30, 2, 4, seed=9)
        assert len(database) == 5
        assert all(graph.num_vertices() == 30 for graph in database)

    def test_database_deterministic(self):
        first = random_transaction_database(3, 20, 2, 4, seed=1)
        second = random_transaction_database(3, 20, 2, 4, seed=1)
        for left, right in zip(first, second):
            assert sorted(e.endpoints() for e in left.edges()) == sorted(
                e.endpoints() for e in right.edges()
            )

    def test_database_invalid(self):
        with pytest.raises(ValueError):
            random_transaction_database(-1, 10, 2, 2)
