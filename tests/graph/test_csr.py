"""Tests for the frozen CSR data plane: CSRGraph, LabelPalette, SumSweep.

Three families of guarantees (see ``docs/DATA_PLANE.md``):

* **round-trip** — freezing a ``LabeledGraph`` and thawing it back is the
  identity on content, for arbitrary graphs (property-based);
* **read-API parity** — every read method of ``CSRGraph`` agrees with the
  mutable original it mirrors, so engine code written against the shared
  surface cannot observe which representation it got;
* **immutability** — every mutator raises :class:`FrozenGraphError`, which
  is what licenses sharing views across contexts and snapshot generations.

The SumSweep eccentricity-bounding utilities (``sum_sweep_diameter``,
``diameter_at_most``) are fuzzed against the brute-force all-pairs diameter
here too, since the CSR refactor made them the engine's diameter oracle.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, FrozenGraphError, LabelPalette
from repro.graph.generators import erdos_renyi_graph
from repro.graph.labeled_graph import LabeledGraph, build_graph
from repro.graph.paths import diameter, diameter_at_most, sum_sweep_diameter


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
@st.composite
def labeled_graphs(draw, max_vertices: int = 12, labels: str = "abc"):
    """Arbitrary labeled graphs: random ids, labels, edge subsets."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    # Non-contiguous, unsorted ids exercise the slot map (identity off).
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    graph = LabeledGraph()
    for vid in ids:
        graph.add_vertex(vid, draw(st.sampled_from(labels)))
    pairs = [(u, v) for i, u in enumerate(ids) for v in ids[i + 1 :]]
    for u, v in pairs:
        if draw(st.booleans()):
            graph.add_edge(u, v)
    return graph


def connected_random_graph(seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    while True:
        graph = erdos_renyi_graph(
            num_vertices=rng.randint(2, 14),
            avg_degree=rng.uniform(1.0, 3.0),
            num_labels=3,
            seed=rng.randint(0, 10**6),
        )
        if graph.num_vertices() >= 2 and graph.is_connected():
            return graph


# --------------------------------------------------------------------- #
# round-trip
# --------------------------------------------------------------------- #
class TestRoundTrip:
    @given(labeled_graphs())
    @settings(max_examples=150, deadline=None)
    def test_freeze_thaw_is_identity_on_content(self, graph):
        thawed = CSRGraph.from_labeled(graph).to_labeled()
        assert sorted(thawed.vertices()) == sorted(graph.vertices())
        assert thawed.vertex_labels() == graph.vertex_labels()
        assert {edge.endpoints() for edge in thawed.edges()} == {
            edge.endpoints() for edge in graph.edges()
        }

    def test_edge_labels_survive_round_trip(self):
        graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1, "bond")
        frozen = CSRGraph.from_labeled(graph)
        assert frozen.edge_label(0, 1) == "bond"
        assert frozen.edge_label(1, 2) is None
        assert frozen.to_labeled().edge_label(0, 1) == "bond"

    def test_unknown_edge_label_raises(self):
        frozen = CSRGraph.from_labeled(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        with pytest.raises(KeyError):
            frozen.edge_label(0, 9)


# --------------------------------------------------------------------- #
# read-API parity
# --------------------------------------------------------------------- #
class TestReadParity:
    @given(labeled_graphs())
    @settings(max_examples=150, deadline=None)
    def test_every_read_method_agrees_with_the_original(self, graph):
        frozen = CSRGraph.from_labeled(graph)
        assert frozen.num_vertices() == graph.num_vertices()
        assert frozen.num_edges() == graph.num_edges()
        assert frozen.size() == graph.size()
        assert len(frozen) == graph.num_vertices()
        assert sorted(frozen.vertices()) == sorted(graph.vertices())
        assert sorted(iter(frozen)) == sorted(graph.vertices())
        assert frozen.labels_used() == graph.labels_used()
        assert frozen.label_histogram() == graph.label_histogram()
        assert frozen.is_connected() == graph.is_connected()
        assert sorted(map(sorted, frozen.connected_components())) == sorted(
            map(sorted, graph.connected_components())
        )
        for vertex in graph.vertices():
            assert frozen.has_vertex(vertex) and vertex in frozen
            assert frozen.label_of(vertex) == graph.label_of(vertex)
            assert frozen.degree(vertex) == graph.degree(vertex)
            assert frozen.neighbors(vertex) == tuple(sorted(graph.neighbors(vertex)))
            for other in graph.vertices():
                assert frozen.has_edge(vertex, other) == graph.has_edge(vertex, other)
        assert not frozen.has_vertex(999) and 999 not in frozen
        assert not frozen.has_edge(999, 1000)

    @given(labeled_graphs())
    @settings(max_examples=100, deadline=None)
    def test_csr_columns_are_consistent(self, graph):
        frozen = CSRGraph.from_labeled(graph)
        n = frozen.num_vertices()
        assert len(frozen.indptr) == n + 1
        assert len(frozen.indices) == 2 * frozen.num_edges()
        assert len(frozen.label_codes) == n
        for slot in range(n):
            vertex = frozen.slot_vertex(slot)
            assert frozen.vertex_slot(vertex) == slot
            run = frozen.indices[frozen.indptr[slot] : frozen.indptr[slot + 1]]
            assert tuple(frozen.slot_vertex(s) for s in run) == frozen.neighbors(vertex)
            assert frozen.palette.label_of(frozen.label_codes[slot]) == frozen.label_of(
                vertex
            )
        assert frozen.memory_bytes() > 0

    def test_identity_fast_path_skips_slot_map(self):
        contiguous = CSRGraph.from_labeled(
            build_graph({0: "a", 1: "b", 2: "a"}, [(0, 1), (1, 2)])
        )
        assert contiguous._slot_of is None
        assert contiguous.vertex_slot(1) == 1
        with pytest.raises(KeyError):
            contiguous.vertex_slot(7)
        sparse = CSRGraph.from_labeled(build_graph({5: "a", 9: "b"}, [(5, 9)]))
        assert sparse._slot_of is not None
        assert sparse.slot_vertex(sparse.vertex_slot(9)) == 9


# --------------------------------------------------------------------- #
# immutability
# --------------------------------------------------------------------- #
class TestImmutability:
    @pytest.mark.parametrize(
        "mutator, args",
        [
            ("add_vertex", (9, "z")),
            ("add_edge", (0, 9)),
            ("add_labeled_path", (["a", "b"],)),
            ("remove_vertex", (0,)),
            ("remove_edge", (0, 1)),
        ],
    )
    def test_mutators_raise_frozen_error(self, mutator, args):
        frozen = CSRGraph.from_labeled(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        with pytest.raises(FrozenGraphError):
            getattr(frozen, mutator)(*args)

    def test_frozen_error_is_a_type_error(self):
        # Callers catching TypeError for "wrong graph kind" keep working.
        assert issubclass(FrozenGraphError, TypeError)

    def test_direct_construction_rejected(self):
        with pytest.raises(TypeError):
            CSRGraph()


# --------------------------------------------------------------------- #
# palette interning
# --------------------------------------------------------------------- #
class TestLabelPalette:
    def test_codes_are_dense_and_stable(self):
        palette = LabelPalette()
        assert [palette.intern(label) for label in "abab"] == [0, 1, 0, 1]
        assert palette.code_of("b") == 1
        assert palette.label_of(0) == "a"
        assert palette.str_of(1) == "b"
        assert palette.labels() == ("a", "b")
        assert len(palette) == 2
        assert "a" in palette and "z" not in palette
        with pytest.raises(KeyError):
            palette.code_of("z")

    def test_shared_palette_keeps_codes_stable_across_views(self):
        palette = LabelPalette()
        first = CSRGraph.from_labeled(
            build_graph({0: "x", 1: "y"}, [(0, 1)]), palette=palette
        )
        second = CSRGraph.from_labeled(
            build_graph({0: "y", 1: "x"}, [(0, 1)]), palette=palette
        )
        assert first.palette is second.palette is palette
        # "x" got code 0 in the first view; the second must agree.
        assert second.label_codes[second.vertex_slot(1)] == 0
        assert second.label_codes[second.vertex_slot(0)] == 1

    def test_str_cache_matches_str(self):
        palette = LabelPalette()
        code = palette.intern(42)
        assert palette.str_of(code) == "42"


# --------------------------------------------------------------------- #
# SumSweep diameter bounding
# --------------------------------------------------------------------- #
class TestSumSweep:
    @pytest.mark.parametrize("seed", range(60))
    def test_sum_sweep_matches_brute_force(self, seed):
        graph = connected_random_graph(seed)
        assert sum_sweep_diameter(graph) == diameter(graph)

    @pytest.mark.parametrize("seed", range(30))
    def test_diameter_at_most_agrees_both_directions(self, seed):
        graph = connected_random_graph(seed)
        exact = diameter(graph)
        assert diameter_at_most(graph, exact)
        assert diameter_at_most(graph, exact + 1)
        if exact > 0:
            assert not diameter_at_most(graph, exact - 1)

    def test_sum_sweep_on_frozen_view(self):
        graph = connected_random_graph(7)
        frozen = CSRGraph.from_labeled(graph)
        assert sum_sweep_diameter(frozen) == diameter(graph)
        assert diameter_at_most(frozen, diameter(graph))
