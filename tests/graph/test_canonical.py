"""Tests for gSpan-style minimum DFS codes."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.graph.canonical import (
    CanonicalCode,
    UnicyclicEncodings,
    bicyclic_canonical_key,
    canonical_key,
    minimum_dfs_code,
    tree_canonical_key,
    tree_canonical_key_incremental,
    tree_encodings,
    unicyclic_canonical_key,
    wl_signature,
)
from repro.graph.generators import random_skinny_pattern, random_tree_pattern
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph, build_graph


class TestMinimumDFSCode:
    def test_single_vertex(self):
        graph = build_graph({0: "a"}, [])
        code = minimum_dfs_code(graph)
        assert code.code == ()
        assert code.isolated_labels == ("a",)

    def test_single_edge(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        code = minimum_dfs_code(graph)
        assert len(code.code) == 1
        # The smaller label must be the root of the canonical code.
        (i, j, li, le, lj) = code.code[0]
        assert (i, j) == (0, 1)
        assert li == "a" and lj == "b"

    def test_isomorphic_graphs_same_code(self, triangle_graph):
        shuffled = build_graph(
            {7: "c", 8: "a", 9: "b"}, [(7, 8), (8, 9), (7, 9)]
        )
        assert minimum_dfs_code(triangle_graph) == minimum_dfs_code(shuffled)

    def test_non_isomorphic_graphs_different_code(self):
        path = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2)])
        triangle = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        assert minimum_dfs_code(path) != minimum_dfs_code(triangle)

    def test_label_difference_changes_code(self):
        one = build_graph({0: "a", 1: "b"}, [(0, 1)])
        two = build_graph({0: "a", 1: "c"}, [(0, 1)])
        assert minimum_dfs_code(one) != minimum_dfs_code(two)

    def test_edge_labels_distinguish(self):
        one = LabeledGraph()
        one.add_vertex(0, "a")
        one.add_vertex(1, "a")
        one.add_edge(0, 1, "x")
        two = LabeledGraph()
        two.add_vertex(0, "a")
        two.add_vertex(1, "a")
        two.add_edge(0, 1, "y")
        assert minimum_dfs_code(one) != minimum_dfs_code(two)

    def test_disconnected_components_sorted(self):
        graph_a = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (2, 3)]
        )
        graph_b = build_graph(
            {0: "c", 1: "d", 2: "a", 3: "b"}, [(0, 1), (2, 3)]
        )
        assert minimum_dfs_code(graph_a) == minimum_dfs_code(graph_b)

    def test_isolated_vertices_tracked(self):
        one = build_graph({0: "a", 1: "b", 2: "z"}, [(0, 1)])
        two = build_graph({0: "a", 1: "b"}, [(0, 1)])
        assert minimum_dfs_code(one) != minimum_dfs_code(two)

    def test_canonical_key_hashable(self, triangle_graph):
        key = canonical_key(triangle_graph)
        assert hash(key) == hash(canonical_key(triangle_graph))

    def test_codes_are_comparable(self):
        small = minimum_dfs_code(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        assert isinstance(small, CanonicalCode)
        assert not (small < small)


class TestTreeCanonicalKey:
    def test_isomorphic_trees_same_key(self):
        one = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        two = build_graph({7: "c", 8: "b", 9: "a"}, [(7, 8), (8, 9)])
        assert tree_canonical_key(one) == tree_canonical_key(two)

    def test_attachment_point_distinguishes(self):
        # A twig on the middle vs on the end of an a-a-a path.
        middle = build_graph({0: "a", 1: "a", 2: "a", 3: "z"}, [(0, 1), (1, 2), (1, 3)])
        end = build_graph({0: "a", 1: "a", 2: "a", 3: "z"}, [(0, 1), (1, 2), (0, 3)])
        assert tree_canonical_key(middle) != tree_canonical_key(end)
        assert not are_isomorphic(middle, end)

    def test_labels_distinguish(self):
        one = build_graph({0: "a", 1: "b"}, [(0, 1)])
        two = build_graph({0: "a", 1: "c"}, [(0, 1)])
        assert tree_canonical_key(one) != tree_canonical_key(two)

    def test_edge_labels_distinguish(self):
        one = LabeledGraph()
        one.add_vertex(0, "a")
        one.add_vertex(1, "a")
        one.add_edge(0, 1, "x")
        two = LabeledGraph()
        two.add_vertex(0, "a")
        two.add_vertex(1, "a")
        two.add_edge(0, 1, "y")
        assert tree_canonical_key(one) != tree_canonical_key(two)

    def test_bicentral_tree_invariant_under_relabeling(self):
        # An even path has two centres; the key must not depend on which
        # vertex ids they carry.
        one = build_graph({0: "a", 1: "b", 2: "b", 3: "a"}, [(0, 1), (1, 2), (2, 3)])
        two = build_graph({9: "a", 4: "b", 5: "b", 6: "a"}, [(9, 4), (4, 5), (5, 6)])
        assert tree_canonical_key(one) == tree_canonical_key(two)

    def test_single_vertex(self):
        assert tree_canonical_key(build_graph({5: "q"}, [])) == tree_canonical_key(
            build_graph({0: "q"}, [])
        )

    def test_rejects_cycles_and_disconnected(self):
        triangle = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            tree_canonical_key(triangle)
        # Right edge count for a tree, but disconnected (triangle + isolate).
        pseudo = build_graph({0: "a", 1: "a", 2: "a", 3: "a"}, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            tree_canonical_key(pseudo)
        with pytest.raises(ValueError):
            tree_canonical_key(LabeledGraph())

    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_key_invariant_under_relabeling(self, size, labels, seed, shuffle_seed):
        tree = random_tree_pattern(size, labels, seed=seed)
        rng = random.Random(shuffle_seed)
        ids = list(tree.vertices())
        targets = [i + 500 for i in ids]
        rng.shuffle(targets)
        renamed = tree.relabel_vertices(dict(zip(ids, targets)))
        assert tree_canonical_key(tree) == tree_canonical_key(renamed)

    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_key_equality_matches_isomorphism(self, size, seed_a, seed_b):
        left = random_tree_pattern(size, 2, seed=seed_a)
        right = random_tree_pattern(size, 2, seed=seed_b)
        assert (
            tree_canonical_key(left) == tree_canonical_key(right)
        ) == are_isomorphic(left, right)


def _random_pendant_chain(rng, length, num_labels, edge_labels=False):
    """Yield (graph, attach, new_vertex, vertex_label, edge_label) growth steps."""
    labels = "abcdef"[:num_labels]
    graph = build_graph({0: rng.choice(labels)}, [])
    for step in range(1, length):
        attach = rng.choice(list(graph.vertices()))
        vertex_label = rng.choice(labels)
        edge_label = rng.choice(["x", "y"]) if edge_labels and rng.random() < 0.5 else None
        graph.add_vertex(step, vertex_label)
        graph.add_edge(attach, step, edge_label)
        yield graph, attach, step, vertex_label, edge_label


class TestIncrementalTreeKey:
    """The ISSUE-5 parity contract: incremental keys equal the batch key."""

    @given(
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=1, max_value=3),
        st.booleans(),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_chain_parity_with_batch_key(self, length, num_labels, edge_labels, seed):
        rng = random.Random(seed)
        encodings = None
        for graph, attach, new_vertex, vertex_label, edge_label in _random_pendant_chain(
            rng, length, num_labels, edge_labels
        ):
            if encodings is None:
                # Chain start: batch-build the 2-vertex tree's encodings.
                encodings = tree_encodings(graph)
            else:
                encodings = tree_canonical_key_incremental(
                    encodings, (attach, new_vertex, vertex_label, edge_label)
                )
            assert encodings.key == tree_canonical_key(graph)

    def test_extend_does_not_mutate_parent(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        parent = tree_encodings(graph)
        key_before = parent.key
        root_before = parent.root
        child = parent.extend(0, 2, "c")
        # Parent encodings untouched: growth states share them by reference.
        assert parent.key == key_before and parent.root == root_before
        assert 2 not in parent.parent
        graph.add_vertex(2, "c")
        graph.add_edge(0, 2)
        assert child.key == tree_canonical_key(graph)

    def test_invalid_edge_tuples_rejected(self):
        parent = tree_encodings(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        with pytest.raises(ValueError):
            tree_canonical_key_incremental(parent, (0, 2))
        with pytest.raises(ValueError):
            parent.extend(99, 2, "c")  # unknown attachment vertex
        with pytest.raises(ValueError):
            parent.extend(0, 1, "c")  # vertex already present


def _random_unicyclic(rng, size, num_labels, edge_labels=False):
    labels = "abcdef"[:num_labels]
    cycle = rng.randint(3, max(3, size - 1)) if size > 3 else 3
    cycle = min(cycle, size)
    graph = LabeledGraph()
    for vertex in range(cycle):
        graph.add_vertex(vertex, rng.choice(labels))
    for vertex in range(cycle):
        label = rng.choice("xy") if edge_labels and rng.random() < 0.5 else None
        graph.add_edge(vertex, (vertex + 1) % cycle, label)
    for vertex in range(cycle, size):
        graph.add_vertex(vertex, rng.choice(labels))
        label = rng.choice("xy") if edge_labels and rng.random() < 0.5 else None
        graph.add_edge(rng.randrange(vertex), vertex, label)
    return graph


class TestUnicyclicCanonicalKey:
    @given(
        st.integers(min_value=3, max_value=11),
        st.integers(min_value=1, max_value=3),
        st.booleans(),
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=0, max_value=50_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_invariant_under_relabeling(self, size, num_labels, edge_labels, seed, shuffle):
        graph = _random_unicyclic(random.Random(seed), size, num_labels, edge_labels)
        rng = random.Random(shuffle)
        ids = list(graph.vertices())
        targets = [i + 500 for i in ids]
        rng.shuffle(targets)
        renamed = graph.relabel_vertices(dict(zip(ids, targets)))
        assert unicyclic_canonical_key(graph) == unicyclic_canonical_key(renamed)

    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=20_000),
        st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_key_equality_matches_isomorphism(self, size, seed_a, seed_b):
        left = _random_unicyclic(random.Random(seed_a), size, 2)
        right = _random_unicyclic(random.Random(seed_b), size, 2)
        assert (
            unicyclic_canonical_key(left) == unicyclic_canonical_key(right)
        ) == are_isomorphic(left, right)

    def test_rejects_trees_and_cycle_plus_component(self):
        with pytest.raises(ValueError):
            unicyclic_canonical_key(build_graph({0: "a", 1: "a"}, [(0, 1)]))
        # |E| == |V| but disconnected: triangle + a detached edge... needs
        # 5 vertices 5 edges: triangle (3e) + path of 3 vertices (2e).
        pseudo = build_graph(
            {0: "a", 1: "a", 2: "a", 3: "a", 4: "a", 5: "a"},
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        with pytest.raises(ValueError):
            unicyclic_canonical_key(pseudo)


class TestIncrementalUnicyclicKey:
    """The ISSUE-9 parity contract: incremental unicyclic keys == batch key."""

    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.booleans(),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_chain_parity_with_batch_key(
        self, base_size, pendants, num_labels, edge_labels, seed
    ):
        rng = random.Random(seed)
        labels = "abcdef"[:num_labels]
        graph = _random_unicyclic(rng, base_size, num_labels, edge_labels)
        encodings = UnicyclicEncodings.from_graph(graph)
        assert encodings.key == unicyclic_canonical_key(graph)
        next_vertex = max(graph.vertices()) + 1
        for _ in range(pendants):
            attach = rng.choice(sorted(graph.vertices()))
            vertex_label = rng.choice(labels)
            edge_label = (
                rng.choice("xy") if edge_labels and rng.random() < 0.5 else None
            )
            # The peek key (no dict copies) must agree with the full extend.
            peeked = encodings.extended_key(
                attach, next_vertex, vertex_label, edge_label
            )
            encodings = encodings.extend(
                attach, next_vertex, vertex_label, edge_label
            )
            graph.add_vertex(next_vertex, vertex_label)
            graph.add_edge(attach, next_vertex, edge_label)
            assert peeked == encodings.key
            assert encodings.key == unicyclic_canonical_key(graph)
            next_vertex += 1

    def test_extend_does_not_mutate_parent(self):
        graph = build_graph(
            {0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)]
        )
        parent = UnicyclicEncodings.from_graph(graph)
        key_before = parent.key
        child = parent.extend(1, 3, "d")
        assert parent.key == key_before
        assert 3 not in parent.parent
        graph.add_vertex(3, "d")
        graph.add_edge(1, 3)
        assert child.key == unicyclic_canonical_key(graph)

    def test_rejects_bad_attachments(self):
        parent = UnicyclicEncodings.from_graph(
            build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        )
        with pytest.raises(ValueError):
            parent.extend(99, 3, "b")  # unknown attachment vertex
        with pytest.raises(ValueError):
            parent.extend(0, 2, "b")  # vertex already present
        with pytest.raises(ValueError):
            UnicyclicEncodings.from_graph(build_graph({0: "a", 1: "a"}, [(0, 1)]))


def _random_bicyclic(rng, size, num_labels, edge_labels=False):
    """A random connected graph with ``|E| = |V| + 1`` (exactly two cycles).

    With ``edge_labels`` every edge gets a label: ``are_isomorphic`` treats
    an unlabeled pattern edge as a wildcard (matching semantics), so the
    exactness oracle is only strict when no ``None`` labels are present.
    """
    labels = "abcdef"[:num_labels]
    graph = LabeledGraph()
    graph.add_vertex(0, rng.choice(labels))
    for vertex in range(1, size):
        graph.add_vertex(vertex, rng.choice(labels))
        label = rng.choice("xy") if edge_labels else None
        graph.add_edge(rng.randrange(vertex), vertex, label)
    added = 0
    while added < 2:
        u, v = rng.randrange(size), rng.randrange(size)
        if u == v or graph.has_edge(u, v):
            continue
        label = rng.choice("xy") if edge_labels else None
        graph.add_edge(u, v, label)
        added += 1
    return graph


class TestBicyclicCanonicalKey:
    @given(
        st.integers(min_value=4, max_value=11),
        st.integers(min_value=1, max_value=3),
        st.booleans(),
        st.integers(min_value=0, max_value=50_000),
        st.integers(min_value=0, max_value=50_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariant_under_relabeling(
        self, size, num_labels, edge_labels, seed, shuffle
    ):
        graph = _random_bicyclic(random.Random(seed), size, num_labels, edge_labels)
        rng = random.Random(shuffle)
        ids = list(graph.vertices())
        targets = [i + 500 for i in ids]
        rng.shuffle(targets)
        renamed = graph.relabel_vertices(dict(zip(ids, targets)))
        assert bicyclic_canonical_key(graph) == bicyclic_canonical_key(renamed)

    @given(
        st.integers(min_value=4, max_value=7),
        st.integers(min_value=0, max_value=20_000),
        st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_key_equality_matches_isomorphism(self, size, seed_a, seed_b):
        left = _random_bicyclic(random.Random(seed_a), size, 2)
        right = _random_bicyclic(random.Random(seed_b), size, 2)
        assert (
            bicyclic_canonical_key(left) == bicyclic_canonical_key(right)
        ) == are_isomorphic(left, right)

    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=0, max_value=20_000),
        st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_edge_labels_keep_exactness(self, size, seed_a, seed_b):
        left = _random_bicyclic(random.Random(seed_a), size, 2, edge_labels=True)
        right = _random_bicyclic(random.Random(seed_b), size, 2, edge_labels=True)
        assert (
            bicyclic_canonical_key(left) == bicyclic_canonical_key(right)
        ) == are_isomorphic(left, right)

    def test_covers_all_three_core_shapes(self):
        # figure-eight: two triangles sharing vertex 0.
        eight = build_graph(
            {0: "a", 1: "b", 2: "b", 3: "b", 4: "b"},
            [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)],
        )
        # theta: two branch vertices joined by three strands.
        theta = build_graph(
            {0: "a", 1: "a", 2: "b", 3: "b", 4: "b"},
            [(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 1)],
        )
        # dumbbell: two triangles joined by a bridge edge.
        dumbbell = build_graph(
            {0: "a", 1: "a", 2: "a", 3: "a", 4: "a", 5: "a"},
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (0, 3)],
        )
        keys = {
            bicyclic_canonical_key(eight)[1],
            bicyclic_canonical_key(theta)[1],
            bicyclic_canonical_key(dumbbell)[1],
        }
        assert keys == {"8", "theta", "dumbbell"}

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            bicyclic_canonical_key(
                build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
            )
        # |E| == |V| + 1 but disconnected: theta component + detached edge
        # fails the connectivity check.
        pseudo = build_graph(
            {0: "a", 1: "a", 2: "a", 3: "a", 4: "a", 5: "a", 6: "a"},
            [(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 1), (5, 6)],
        )
        with pytest.raises(ValueError):
            bicyclic_canonical_key(pseudo)


class TestWLSignature:
    def test_invariant_under_relabeling(self):
        one = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        two = build_graph({7: "c", 8: "b", 9: "a"}, [(7, 8), (8, 9)])
        assert wl_signature(one) == wl_signature(two)

    def test_distinguishes_path_from_triangle(self):
        path = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2)])
        triangle = build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        assert wl_signature(path) != wl_signature(triangle)

    def test_hashable(self):
        graph = build_graph({0: "a", 1: "b"}, [(0, 1)])
        assert hash(wl_signature(graph)) == hash(wl_signature(graph))


class TestCanonicalCodeProperties:
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_code_invariant_under_relabeling(self, size, labels, seed, shuffle_seed):
        tree = random_tree_pattern(size, labels, seed=seed)
        rng = random.Random(shuffle_seed)
        ids = list(tree.vertices())
        targets = [i + 500 for i in ids]
        rng.shuffle(targets)
        renamed = tree.relabel_vertices(dict(zip(ids, targets)))
        assert minimum_dfs_code(tree) == minimum_dfs_code(renamed)

    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_code_equality_matches_isomorphism(self, size, seed_a, seed_b):
        left = random_tree_pattern(size, 2, seed=seed_a)
        right = random_tree_pattern(size, 2, seed=seed_b)
        assert (minimum_dfs_code(left) == minimum_dfs_code(right)) == are_isomorphic(
            left, right
        )

    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_skinny_patterns_roundtrip(self, backbone, skinniness, seed):
        pattern = random_skinny_pattern(
            backbone, skinniness, backbone + 1 + 2 * skinniness, 3, seed=seed
        )
        compacted, _ = pattern.compact()
        assert minimum_dfs_code(pattern) == minimum_dfs_code(compacted)
