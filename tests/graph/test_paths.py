"""Tests for shortest paths, diameters and simple-path enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi_graph, random_tree_pattern
from repro.graph.labeled_graph import build_graph
from repro.graph.paths import (
    all_diameter_paths,
    all_pairs_distances,
    bfs_distances,
    diameter,
    distance_to_set,
    eccentricity,
    enumerate_simple_paths,
    is_simple_path,
    path_labels,
    shortest_path_length,
    shortest_paths_between,
    unique_simple_paths,
)


class TestBFS:
    def test_distances_on_path(self, path_graph):
        distances = bfs_distances(path_graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_cutoff_limits_search(self, path_graph):
        distances = bfs_distances(path_graph, 0, cutoff=2)
        assert max(distances.values()) == 2
        assert 4 not in distances

    def test_missing_source_raises(self, path_graph):
        with pytest.raises(KeyError):
            bfs_distances(path_graph, 99)

    def test_shortest_path_length(self, path_graph):
        assert shortest_path_length(path_graph, 0, 4) == 4
        assert shortest_path_length(path_graph, 2, 2) == 0

    def test_shortest_path_length_disconnected(self, two_triangles_graph):
        assert shortest_path_length(two_triangles_graph, 0, 3) is None

    def test_all_pairs(self, triangle_graph):
        distances = all_pairs_distances(triangle_graph)
        assert distances[0][1] == 1
        assert distances[0][2] == 1


class TestDiameter:
    def test_diameter_of_path(self, path_graph):
        assert diameter(path_graph) == 4

    def test_diameter_of_triangle(self, triangle_graph):
        assert diameter(triangle_graph) == 1

    def test_eccentricity(self, path_graph):
        assert eccentricity(path_graph, 0) == 4
        assert eccentricity(path_graph, 2) == 2

    def test_diameter_disconnected_raises(self, two_triangles_graph):
        with pytest.raises(ValueError):
            diameter(two_triangles_graph)

    def test_diameter_empty_raises(self):
        from repro.graph.labeled_graph import LabeledGraph

        with pytest.raises(ValueError):
            diameter(LabeledGraph())

    def test_figure3_diameter_is_six(self, figure3_graph):
        assert diameter(figure3_graph) == 6

    def test_all_diameter_paths_on_path_graph(self, path_graph):
        paths = all_diameter_paths(path_graph)
        assert len(paths) == 1
        assert paths[0] in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])

    def test_all_diameter_paths_have_diameter_length(self, figure3_graph):
        d = diameter(figure3_graph)
        for path in all_diameter_paths(figure3_graph):
            assert len(path) == d + 1
            assert is_simple_path(figure3_graph, path)

    def test_distance_to_set_is_multi_source(self, figure3_graph):
        backbone = [1, 2, 3, 4, 5, 6, 7]
        levels = distance_to_set(figure3_graph, backbone)
        assert levels[8] == 1
        assert levels[9] == 2
        assert levels[10] == 1
        assert all(levels[v] == 0 for v in backbone)

    def test_distance_to_set_missing_target_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            distance_to_set(triangle_graph, [0, 99])


class TestSimplePathEnumeration:
    def test_length_zero_paths_are_vertices(self, triangle_graph):
        paths = list(enumerate_simple_paths(triangle_graph, 0))
        assert sorted(p[0] for p in paths) == [0, 1, 2]

    def test_negative_length_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            list(enumerate_simple_paths(triangle_graph, -1))

    def test_paths_of_length_two_in_triangle(self, triangle_graph):
        unique = unique_simple_paths(triangle_graph, 2)
        assert len(unique) == 3

    def test_unique_paths_deduplicate_orientations(self, path_graph):
        unique = unique_simple_paths(path_graph, 4)
        assert len(unique) == 1

    def test_start_restriction(self, path_graph):
        paths = list(enumerate_simple_paths(path_graph, 2, start=0))
        assert all(path[0] == 0 for path in paths)
        assert paths == [[0, 1, 2]]

    def test_missing_start_raises(self, path_graph):
        with pytest.raises(KeyError):
            list(enumerate_simple_paths(path_graph, 1, start=42))

    def test_path_labels(self, path_graph):
        assert path_labels(path_graph, [0, 1, 2]) == ["a", "b", "c"]

    def test_is_simple_path(self, path_graph):
        assert is_simple_path(path_graph, [0, 1, 2])
        assert not is_simple_path(path_graph, [0, 2])
        assert not is_simple_path(path_graph, [0, 1, 0])
        assert not is_simple_path(path_graph, [])

    def test_shortest_paths_between(self, triangle_graph):
        paths = shortest_paths_between(triangle_graph, 0, 2)
        assert [0, 2] in paths
        assert len(paths) == 1

    def test_shortest_paths_between_multiple(self):
        square = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (1, 2), (2, 3), (3, 0)]
        )
        paths = shortest_paths_between(square, 0, 2)
        assert len(paths) == 2

    def test_shortest_paths_disconnected(self, two_triangles_graph):
        assert shortest_paths_between(two_triangles_graph, 0, 3) == []


class TestPathProperties:
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=30, deadline=None)
    def test_tree_diameter_matches_bruteforce(self, size, seed):
        tree = random_tree_pattern(size, 2, seed=seed)
        pairs = all_pairs_distances(tree)
        brute = max(max(row.values()) for row in pairs.values())
        assert diameter(tree) == brute

    @given(st.integers(min_value=5, max_value=20), st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=20, deadline=None)
    def test_bfs_distances_symmetric(self, size, seed):
        graph = erdos_renyi_graph(size, 2.0, 3, seed=seed)
        vertices = list(graph.vertices())
        source, target = vertices[0], vertices[-1]
        forward = bfs_distances(graph, source).get(target)
        backward = bfs_distances(graph, target).get(source)
        assert forward == backward

    @given(st.integers(min_value=3, max_value=7), st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=20, deadline=None)
    def test_enumerated_paths_are_simple(self, size, seed):
        graph = erdos_renyi_graph(size, 2.0, 2, seed=seed)
        for path in enumerate_simple_paths(graph, 2):
            assert is_simple_path(graph, path)
