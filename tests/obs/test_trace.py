"""Tests for the span tracer: nesting, timing, the no-op mode's overhead."""

from __future__ import annotations

import time

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.obs.export import TraceJsonlWriter, flatten_trace, iter_trace_lines
from repro.obs.trace import _NULL_SPAN


class TestSpanNesting:
    def test_with_structure_is_the_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        tree = root.to_dict()
        assert tree["name"] == "root"
        assert [child["name"] for child in tree["children"]] == ["child-a", "child-b"]
        assert tree["children"][0]["children"][0]["name"] == "grandchild"
        assert tree["parent_id"] is None
        assert tree["children"][0]["parent_id"] == tree["span_id"]

    def test_span_ids_unique_within_tracer(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        rows = [row for root in tracer.drain() for row in flatten_trace(root, "t")]
        ids = [row["span_id"] for row in rows]
        assert len(ids) == len(set(ids)) == 3

    def test_drain_returns_roots_once(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        roots = tracer.drain()
        assert [root["name"] for root in roots] == ["first", "second"]
        assert tracer.drain() == []

    def test_exception_annotates_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        (root,) = tracer.drain()
        assert root["attrs"]["error"] == "RuntimeError"
        assert root["children"][0]["attrs"]["error"] == "RuntimeError"
        # The stack fully unwound: a new span is again a root.
        with tracer.span("after"):
            pass
        assert [root["name"] for root in tracer.drain()] == ["after"]

    def test_annotate_merges_attrs(self):
        tracer = Tracer()
        with tracer.span("op", fixed=1) as span:
            span.annotate(hit=True)
        assert span.to_dict()["attrs"] == {"fixed": 1, "hit": True}


class TestTiming:
    def test_children_contained_in_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                time.sleep(0.002)
        assert child.seconds > 0
        assert parent.seconds >= child.seconds
        assert parent.start_seconds <= child.start_seconds
        assert (
            child.start_seconds + child.seconds
            <= parent.start_seconds + parent.seconds + 1e-9
        )

    def test_sibling_starts_monotonic(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for index in range(5):
                with tracer.span("step", index=index):
                    pass
        starts = [child["start_seconds"] for child in root.to_dict()["children"]]
        assert starts == sorted(starts)
        assert all(start >= 0 for start in starts)

    def test_record_attaches_pretimed_aggregate(self):
        tracer = Tracer()
        with tracer.span("stage2") as span:
            tracer.record("stage2.phase.canonical", 0.125, samples=10)
        (child,) = span.to_dict()["children"]
        assert child["name"] == "stage2.phase.canonical"
        assert child["seconds"] == 0.125
        assert child["attrs"] == {"samples": 10}

    def test_record_without_open_span_is_a_root(self):
        tracer = Tracer()
        tracer.record("aggregate", 1.5)
        (root,) = tracer.drain()
        assert root["name"] == "aggregate"
        assert root["seconds"] == 1.5


class TestDisabledMode:
    def test_disabled_span_is_the_shared_null_span(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.span("anything", attr=1) is _NULL_SPAN
        assert NULL_TRACER.span("other") is _NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("op") as span:
            span.annotate(ignored=True)
        tracer.record("aggregate", 1.0)
        assert tracer.drain() == []
        assert span.to_dict() is None

    def test_noop_span_overhead_bounded(self):
        """The disabled span() path must stay within ~10x of a no-op call."""

        def noop():
            pass

        def baseline(iterations):
            started = time.perf_counter()
            for _ in range(iterations):
                noop()
            return time.perf_counter() - started

        def traced(iterations):
            span = NULL_TRACER.span
            started = time.perf_counter()
            for _ in range(iterations):
                with span("op"):
                    pass
            return time.perf_counter() - started

        iterations = 50_000
        baseline(iterations), traced(iterations)  # warm-up
        base = min(baseline(iterations) for _ in range(3))
        cost = min(traced(iterations) for _ in range(3))
        # A generous ceiling (context-manager protocol + method dispatch);
        # what it guards against is accidental allocation or clock reads on
        # the disabled path, which send this ratio into the hundreds.
        assert cost <= base * 10 + 0.01


class TestJsonlExport:
    def test_flatten_parent_before_child(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.drain()
        rows = flatten_trace(root, "t1")
        names = [row["name"] for row in rows]
        assert names == ["root", "child", "grandchild"]
        seen = set()
        for row in rows:
            if row["parent_id"] is not None:
                assert row["parent_id"] in seen
            seen.add(row["span_id"])

    def test_writer_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        with tracer.span("query", constraint="skinny"):
            with tracer.span("stage1"):
                pass
        with TraceJsonlWriter(path) as writer:
            writer.write_event("mine", min_support=2)
            for root in tracer.drain():
                writer.write_trace(root)
        rows = list(iter_trace_lines(path))
        assert rows[0] == {"type": "event", "event": "mine", "min_support": 2}
        spans = [row for row in rows if row["type"] == "span"]
        assert [span["name"] for span in spans] == ["query", "stage1"]
        assert spans[0]["attrs"] == {"constraint": "skinny"}
        assert spans[1]["parent_id"] == spans[0]["span_id"]
        assert all(span["trace_id"] == "t1" for span in spans)


class TestRecordedSubtrees:
    """record(..., children=...): pre-timed span trees from other threads."""

    def test_children_become_nested_spans(self):
        tracer = Tracer()
        tracer.record(
            "service.request",
            0.3,
            children=[
                {"name": "service.queue", "seconds": 0.1},
                {
                    "name": "service.worker",
                    "seconds": 0.2,
                    "attrs": {"generation": 1},
                    "children": [{"name": "stage1", "seconds": 0.15}],
                },
            ],
            constraint="skinny",
        )
        (root,) = tracer.drain()
        assert root["name"] == "service.request"
        assert root["seconds"] == pytest.approx(0.3)
        assert root["attrs"] == {"constraint": "skinny"}
        queue, worker = root["children"]
        assert queue["name"] == "service.queue"
        assert queue["seconds"] == pytest.approx(0.1)
        assert worker["attrs"] == {"generation": 1}
        (stage1,) = worker["children"]
        assert stage1["name"] == "stage1"
        assert stage1["parent_id"] == worker["span_id"]
        assert worker["parent_id"] == root["span_id"]

    def test_recorded_tree_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.record(
                "service.request", 0.05, children=[{"name": "service.queue"}]
            )
        (outer,) = tracer.drain()
        (request,) = outer["children"]
        assert request["parent_id"] == outer["span_id"]
        (queue,) = request["children"]
        assert queue["seconds"] == 0.0  # seconds defaults when omitted

    def test_recorded_tree_flattens_for_export(self):
        tracer = Tracer()
        tracer.record(
            "service.request",
            0.2,
            children=[{"name": "service.worker", "seconds": 0.1}],
        )
        (root,) = tracer.drain()
        rows = flatten_trace(root, "t9")
        assert [row["name"] for row in rows] == [
            "service.request",
            "service.worker",
        ]
        assert rows[1]["parent_id"] == rows[0]["span_id"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("service.request", 0.2, children=[{"name": "x"}])
        assert tracer.drain() == []
