"""Tests for the metrics registry: counters, histograms, export formats."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.obs import MetricsRegistry, default_registry
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, load_snapshot


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc()
        registry.counter("hits_total").inc(4)
        assert registry.counter("hits_total").value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits_total").inc(-1)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", labels={"constraint": "skinny"}).inc()
        registry.counter("queries_total", labels={"constraint": "path"}).inc(2)
        assert registry.counter("queries_total", labels={"constraint": "skinny"}).value == 1
        assert registry.counter("queries_total", labels={"constraint": "path"}).value == 2

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(7)
        gauge.inc(-3)
        assert gauge.value == 4

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()


class TestHistogramPercentiles:
    def test_uniform_distribution(self):
        """Percentiles on 1..1000 ms uniform must land near the true values."""
        histogram = MetricsRegistry().histogram(
            "latency", buckets=[i / 100 for i in range(1, 101)]
        )
        values = [i / 1000 for i in range(1, 1001)]  # 0.001 .. 1.000
        for value in values:
            histogram.observe(value)
        assert histogram.count == 1000
        assert histogram.sum == pytest.approx(sum(values))
        # Bucket width is 10ms, so the interpolation error is < 10ms.
        assert histogram.percentile(0.50) == pytest.approx(0.500, abs=0.011)
        assert histogram.percentile(0.95) == pytest.approx(0.950, abs=0.011)
        assert histogram.percentile(0.99) == pytest.approx(0.990, abs=0.011)

    def test_known_small_distribution(self):
        histogram = MetricsRegistry().histogram("latency", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 0.5, 1.5, 3.0):
            histogram.observe(value)
        # p50: target rank 2 falls in the first bucket (2 samples, bound 1.0).
        assert 0.0 < histogram.percentile(0.50) <= 1.0
        # p99: rank 3.96 falls in the (2.0, 4.0] bucket.
        assert 2.0 < histogram.percentile(0.99) <= 4.0

    def test_percentile_clamped_to_observed_max(self):
        """A lone sample in a wide bucket is never reported above itself."""
        histogram = MetricsRegistry().histogram("latency")  # default buckets
        histogram.observe(0.0011)
        assert histogram.percentile(0.99) <= 0.0011

    def test_overflow_bucket_uses_max(self):
        histogram = MetricsRegistry().histogram("latency", buckets=[1.0])
        histogram.observe(50.0)
        histogram.observe(70.0)
        p99 = histogram.percentile(0.99)
        assert 1.0 <= p99 <= 70.0
        assert math.isfinite(p99)

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.percentile(0.5) == 0.0
        assert histogram.summary() == {
            "count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_random_distribution_percentiles_bracket_truth(self):
        rng = random.Random(7)
        values = [rng.uniform(0.0005, 8.0) for _ in range(5000)]
        histogram = MetricsRegistry().histogram("latency")  # default buckets
        for value in values:
            histogram.observe(value)
        ranked = sorted(values)
        for quantile in (0.50, 0.95, 0.99):
            true_value = ranked[int(quantile * len(ranked)) - 1]
            estimate = histogram.percentile(quantile)
            # The estimate must land within the true value's bucket.
            bounds = [0.0] + list(DEFAULT_LATENCY_BUCKETS)
            bucket = next(
                (low, high)
                for low, high in zip(bounds, bounds[1:] + [float("inf")])
                if low < true_value <= high or high == float("inf")
            )
            assert bucket[0] <= estimate <= min(bucket[1], max(values))

    def test_quantile_validation(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_bucket_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("latency", buckets=[2.0, 1.0])


class TestExport:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("queries_total", "Queries", {"constraint": "skinny"}).inc(3)
        registry.gauge("depth", "Depth").set(2.5)
        histogram = registry.histogram("latency", "Latency", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        return registry

    def test_snapshot_round_trip(self):
        registry = self.build()
        payload = json.loads(json.dumps(registry.snapshot()))
        rebuilt = MetricsRegistry.from_snapshot(payload)
        assert rebuilt.snapshot() == registry.snapshot()
        histogram = rebuilt.histogram("latency", buckets=[0.1, 1.0])
        assert histogram.count == 3
        assert histogram.percentile(0.99) == pytest.approx(
            registry.histogram("latency", buckets=[0.1, 1.0]).percentile(0.99)
        )

    def test_snapshot_rejects_wrong_bucket_count(self):
        payload = self.build().snapshot()
        payload["histograms"][0]["counts"] = [1, 2]  # needs 3 (2 bounds + inf)
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot(payload)

    def test_load_snapshot_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(self.build().snapshot()), encoding="utf-8")
        assert load_snapshot(path).counter(
            "queries_total", labels={"constraint": "skinny"}
        ).value == 3

    def test_render_text_prometheus_format(self):
        text = self.build().render_text()
        lines = text.strip().splitlines()
        assert "# TYPE queries_total counter" in lines
        assert 'queries_total{constraint="skinny"} 3' in lines
        assert "# TYPE latency histogram" in lines
        # Cumulative buckets: 1 below 0.1, 2 below 1.0, 3 below +Inf.
        assert 'latency_bucket{le="0.1"} 1' in lines
        assert 'latency_bucket{le="1"} 2' in lines
        assert 'latency_bucket{le="+Inf"} 3' in lines
        assert "latency_count 3" in lines
        # Every non-comment line parses as "name{labels} value".
        for line in lines:
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)

    def test_iter_metrics_yields_live_objects(self):
        registry = self.build()
        kinds = sorted(kind for kind, _metric in registry.iter_metrics())
        assert kinds == ["counter", "gauge", "histogram"]

    def test_reset_clears(self):
        registry = self.build()
        registry.reset()
        assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}


class TestAbsorb:
    """absorb(): merging per-worker registries into one view."""

    @staticmethod
    def worker_registry(count, latency):
        registry = MetricsRegistry()
        registry.counter("queries_total", labels={"constraint": "skinny"}).inc(count)
        registry.gauge("queue_depth").set(count)
        registry.histogram("latency", buckets=(0.1, 1.0)).observe(latency)
        return registry

    def test_counters_add_and_gauges_overwrite(self):
        merged = MetricsRegistry()
        merged.absorb(self.worker_registry(2, 0.05).snapshot())
        merged.absorb(self.worker_registry(3, 0.5).snapshot())
        assert merged.counter(
            "queries_total", labels={"constraint": "skinny"}
        ).value == 5
        # Gauges are point-in-time: the later snapshot wins.
        assert merged.gauge("queue_depth").value == 3

    def test_histograms_merge_buckets_counts_and_sums(self):
        merged = MetricsRegistry()
        merged.absorb(self.worker_registry(1, 0.05).snapshot())
        merged.absorb(self.worker_registry(1, 0.5).snapshot())
        row = merged.snapshot()["histograms"][0]
        assert row["counts"] == [1, 1, 0]
        assert row["count"] == 2
        assert row["sum"] == pytest.approx(0.55)
        assert row["max"] == pytest.approx(0.5)

    def test_labelled_series_stay_separate(self):
        merged = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("queries_total", labels={"constraint": "skinny"}).inc()
        source.counter("queries_total", labels={"constraint": "path"}).inc(2)
        merged.absorb(source.snapshot())
        merged.absorb(source.snapshot())
        assert merged.counter(
            "queries_total", labels={"constraint": "skinny"}
        ).value == 2
        assert merged.counter(
            "queries_total", labels={"constraint": "path"}
        ).value == 4

    def test_bucket_mismatch_rejected(self):
        merged = MetricsRegistry()
        merged.histogram("latency", buckets=(0.1, 1.0)).observe(0.2)
        other = MetricsRegistry()
        other.histogram("latency", buckets=(0.1, 0.5, 1.0)).observe(0.2)
        with pytest.raises(ValueError):
            merged.absorb(other.snapshot())

    def test_absorb_into_empty_equals_source(self):
        source = self.worker_registry(4, 0.3)
        merged = MetricsRegistry()
        merged.absorb(source.snapshot())
        assert merged.snapshot() == source.snapshot()
