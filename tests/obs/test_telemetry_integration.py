"""Telemetry through the engine: trace coverage, stats invariant, metrics isolation."""

from __future__ import annotations

import json

import pytest

from repro.api import MiningEngine, Query
from repro.api.query import QueryStats, Result
from repro.obs import MetricsRegistry, Tracer
from repro.graph.labeled_graph import build_graph


def chains_graph():
    return build_graph(
        {
            0: "a", 1: "b", 2: "c", 3: "d",
            10: "a", 11: "b", 12: "c", 13: "d",
            20: "x", 21: "y",
        },
        [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (12, 13), (20, 21), (3, 20)],
    )


SKINNY = Query("skinny", {"length": 3, "delta": 1}, min_support=2)


def span_names(tree):
    """Every span name in a ``Span.to_dict`` tree, depth-first."""
    names = [tree["name"]]
    for child in tree.get("children", []):
        names.extend(span_names(child))
    return names


def traced_engine():
    return MiningEngine(chains_graph(), tracer=Tracer(), metrics=MetricsRegistry())


class TestTraceCoverage:
    def test_trace_attached_and_covers_both_stages(self):
        engine = traced_engine()
        result = engine.run(SKINNY)
        trace = result.stats.trace
        assert isinstance(trace, dict)
        assert trace["name"] == "query"
        names = set(span_names(trace))
        assert {"store.get", "stage1.mine", "stage2", "stage2.level"} <= names
        for phase in ("canonical", "invariant", "probe"):
            assert f"stage2.phase.{phase}" in names
        # Stage-1 mined inline (no prebuilt store), so the ladder ran too.
        assert "stage1.ladder" in names

    def test_disabled_tracer_leaves_trace_none(self):
        engine = MiningEngine(chains_graph(), metrics=MetricsRegistry())
        result = engine.run(SKINNY)
        assert result.stats.trace is None
        # The envelope still round-trips with a null trace.
        rebuilt = Result.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.stats.trace is None

    def test_trace_round_trips_through_result_envelope(self):
        engine = traced_engine()
        result = engine.run(SKINNY)
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = Result.from_dict(payload)
        assert rebuilt.stats.trace == result.stats.trace
        assert rebuilt.stats.to_dict() == result.stats.to_dict()
        assert rebuilt.query == result.query

    def test_query_stats_round_trip_alone(self):
        engine = traced_engine()
        stats = engine.run(SKINNY).stats
        rebuilt = QueryStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats

    def test_cache_hit_trace_is_flat(self):
        engine = traced_engine()
        engine.run(SKINNY)
        hit = engine.run(SKINNY)
        assert hit.stats.result_cache_hit
        trace = hit.stats.trace
        assert trace["name"] == "query"
        assert trace["attrs"].get("result_cache_hit") is True
        assert "stage2" not in span_names(trace)


class TestTimingInvariant:
    def test_cold_query_total_is_exact_sum(self):
        engine = traced_engine()
        stats = engine.run(SKINNY).stats
        assert stats.overhead_seconds >= 0.0
        assert stats.total_seconds == (
            stats.stage_one_seconds + stats.stage_two_seconds + stats.overhead_seconds
        )

    def test_cache_hit_total_is_all_overhead(self):
        engine = traced_engine()
        engine.run(SKINNY)
        stats = engine.run(SKINNY).stats
        assert stats.result_cache_hit
        assert stats.stage_one_seconds == stats.stage_two_seconds == 0.0
        assert stats.total_seconds == stats.overhead_seconds

    def test_invariant_holds_without_tracing(self):
        engine = MiningEngine(chains_graph(), metrics=MetricsRegistry())
        for query in (SKINNY, Query("path", {"length": 3}, min_support=2)):
            stats = engine.run(query).stats
            assert stats.total_seconds == (
                stats.stage_one_seconds + stats.stage_two_seconds + stats.overhead_seconds
            )


class TestMetricsPublication:
    def test_counters_reflect_query_flow(self):
        registry = MetricsRegistry()
        engine = MiningEngine(chains_graph(), metrics=registry)
        engine.run(SKINNY)
        engine.run(SKINNY)  # result-cache hit
        labels = {"constraint": "skinny"}
        assert registry.counter("repro_queries_total", labels=labels).value == 2
        assert registry.counter("repro_result_cache_misses_total").value == 1
        assert registry.counter("repro_result_cache_hits_total").value == 1
        assert registry.counter("repro_store_misses_total").value == 1
        assert registry.histogram("repro_query_seconds", labels=labels).count == 2
        assert registry.histogram("repro_stage_two_seconds", labels=labels).count == 1

    def test_registries_are_independent_across_engines(self):
        """Two engines with private registries publish identical counter values."""
        snapshots = []
        for _ in range(2):
            registry = MetricsRegistry()
            MiningEngine(chains_graph(), metrics=registry).run(SKINNY)
            counters = {
                (metric.name, metric.labels): metric.value
                for kind, metric in registry.iter_metrics()
                if kind == "counter"
            }
            snapshots.append(counters)
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]  # something was actually published

    def test_level_statistics_counters_published(self):
        """Nonzero fast-path counters surface as labelled process counters."""
        registry = MetricsRegistry()
        result = MiningEngine(chains_graph(), metrics=registry).run(SKINNY)
        assert result.stats.level_statistics["canonical_incremental_hits"] >= 1
        labels = {"constraint": "skinny"}
        hits = registry.counter("repro_canonical_incremental_hits_total", labels=labels).value
        assert hits == result.stats.level_statistics["canonical_incremental_hits"]

    @pytest.mark.parametrize("query", [SKINNY, Query("diam-le", {"k": 2}, min_support=2)])
    def test_render_text_parses_after_real_queries(self, query):
        registry = MetricsRegistry()
        MiningEngine(chains_graph(), metrics=registry).run(query)
        for line in registry.render_text().strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)
