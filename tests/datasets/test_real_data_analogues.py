"""Tests for the DBLP-, Weibo- and trajectory-style synthetic datasets."""

from __future__ import annotations

import pytest

from repro.datasets.dblp import (
    CareerArchetype,
    DBLPConfig,
    collaboration_label,
    generate_dblp_dataset,
)
from repro.datasets.trajectories import TrajectoryConfig, generate_trajectory_dataset
from repro.datasets.weibo import ROOT_LABEL, WeiboConfig, generate_weibo_dataset
from repro.graph.paths import diameter


class TestDBLP:
    def test_labels(self):
        assert collaboration_label("P", 2) == "P2"
        with pytest.raises(ValueError):
            collaboration_label("X", 1)
        with pytest.raises(ValueError):
            collaboration_label("P", 9)

    def test_archetype_label_sequence(self):
        archetype = CareerArchetype("demo", (("B", 1), ("P", 3)))
        labels = archetype.label_sequence(4)
        assert labels == ["B1", "B1", "P3", "P3"]

    def test_dataset_shape(self):
        config = DBLPConfig(num_authors=12, career_length=10, authors_per_archetype=2, seed=1)
        dataset = generate_dblp_dataset(config)
        assert len(dataset.graphs) == 12
        # Timeline backbone: career_length year nodes labelled 'Y' forming a path.
        graph = dataset.graphs[0]
        year_nodes = [v for v in graph.vertices() if graph.label_of(v) == "Y"]
        assert len(year_nodes) == 10
        assert diameter(graph) >= 9

    def test_archetype_ground_truth(self):
        config = DBLPConfig(num_authors=12, career_length=8, authors_per_archetype=2, seed=2)
        dataset = generate_dblp_dataset(config)
        rising = dataset.archetype_authors("rising-star")
        assert len(rising) == 2
        background = [a for a, name in dataset.archetype_of_author.items() if name is None]
        assert len(background) == 12 - 6

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            generate_dblp_dataset(DBLPConfig(num_authors=2, authors_per_archetype=5))
        with pytest.raises(ValueError):
            generate_dblp_dataset(DBLPConfig(career_length=1))

    def test_deterministic(self):
        config = DBLPConfig(num_authors=10, career_length=6, authors_per_archetype=1, seed=9)
        first = generate_dblp_dataset(config)
        second = generate_dblp_dataset(config)
        assert [g.num_edges() for g in first.graphs] == [g.num_edges() for g in second.graphs]


class TestWeibo:
    def test_dataset_shape(self):
        config = WeiboConfig(num_conversations=10, planted_conversations=3, chain_length=8, seed=1)
        dataset = generate_weibo_dataset(config)
        assert len(dataset.graphs) == 10
        assert dataset.planted_conversation_ids == [0, 1, 2]
        for graph in dataset.graphs:
            assert graph.label_of(0) == ROOT_LABEL
            assert graph.is_connected()

    def test_planted_conversations_are_longer(self):
        config = WeiboConfig(num_conversations=8, planted_conversations=4, chain_length=10, seed=3)
        dataset = generate_weibo_dataset(config)
        planted = [diameter(dataset.graphs[i]) for i in dataset.planted_conversation_ids]
        background = [
            diameter(dataset.graphs[i])
            for i in range(len(dataset.graphs))
            if i not in dataset.planted_conversation_ids
        ]
        assert min(planted) >= config.chain_length
        assert max(background) < config.chain_length

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            generate_weibo_dataset(WeiboConfig(num_conversations=2, planted_conversations=5))
        with pytest.raises(ValueError):
            generate_weibo_dataset(WeiboConfig(chain_length=1))


class TestTrajectories:
    def test_dataset_shape(self):
        config = TrajectoryConfig(num_users=15, route_length=6, users_per_route=4, seed=1)
        dataset = generate_trajectory_dataset(config)
        assert len(dataset.graphs) == 15
        assert len(dataset.popular_routes) == config.num_popular_routes
        assert all(len(route) == 7 for route in dataset.popular_routes)

    def test_route_users_share_backbone(self):
        config = TrajectoryConfig(num_users=14, route_length=5, users_per_route=5, seed=2)
        dataset = generate_trajectory_dataset(config)
        route = dataset.popular_routes[0]
        followers = [u for u, r in dataset.route_of_user.items() if r == 0]
        assert len(followers) == 5
        for user in followers:
            graph = dataset.graphs[user]
            backbone_labels = [graph.label_of(v) for v in range(len(route))]
            assert backbone_labels == route

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            generate_trajectory_dataset(TrajectoryConfig(num_users=2, users_per_route=5))
        with pytest.raises(ValueError):
            generate_trajectory_dataset(TrajectoryConfig(route_length=1))
