"""Round-trip coverage: every dataset generator survives LG / index-store I/O.

The persistent index is only trustworthy if serialisation is lossless, so for
each generator in :mod:`repro.datasets` we check that writing the graphs with
``write_lg`` and reloading yields (a) identical structure and labels under the
writer's deterministic renumbering, (b) identical canonical keys for the
(small) injected ground-truth patterns, and (c) identical Stage-1 supports —
the quantities mining actually consumes.
"""

from __future__ import annotations

import pytest

from repro.core.database import MiningContext
from repro.core.diammine import DiamMine
from repro.graph.canonical import canonical_key
from repro.graph.io import read_lg, write_lg
from repro.index.store import DiskPatternStore, IndexEntry, MemoryPatternStore, StoreKey


def stringified(graph):
    """Vertex labels as the LG text format stores them (str)."""
    return {vertex: str(label) for vertex, label in graph.vertex_labels().items()}


def assert_lossless(graphs, tmp_path, mine_length=2, min_support=2):
    """write_lg → read_lg must preserve structure, labels and path supports."""
    target = tmp_path / "dataset.lg"
    write_lg(graphs, target)
    reloaded = read_lg(target)
    assert len(reloaded) == len(graphs)
    for original, loaded in zip(graphs, reloaded):
        compact, _ = original.compact()
        assert stringified(compact) == stringified(loaded)
        assert {e.endpoints() for e in compact.edges()} == {
            e.endpoints() for e in loaded.edges()
        }

    # Stage-1 supports computed on the reloaded data must match exactly.
    original_paths = DiamMine(MiningContext(list(graphs), min_support)).mine(mine_length)
    reloaded_paths = DiamMine(MiningContext(reloaded, min_support)).mine(mine_length)
    assert [(p.labels, p.support) for p in original_paths] == [
        (p.labels, p.support) for p in reloaded_paths
    ]
    return reloaded


class TestSyntheticGenerators:
    @pytest.mark.parametrize("gid", [1, 2, 3, 4, 5])
    def test_gid_dataset_roundtrip(self, gid, tmp_path):
        from repro.datasets.synthetic import build_gid_dataset

        dataset = build_gid_dataset(gid, seed=3, scale=0.15)
        assert_lossless([dataset.graph], tmp_path)
        # Injected ground-truth patterns are small: canonical keys must survive.
        for pattern in dataset.long_patterns + dataset.short_patterns:
            (reloaded,) = assert_roundtrip_single(pattern, tmp_path)
            assert canonical_key(reloaded) == canonical_key(stringify_labels(pattern))

    def test_skinniness_series_roundtrip(self, tmp_path):
        from repro.datasets.synthetic import build_skinniness_series

        series = build_skinniness_series(seed=3, scale=0.1)
        assert_lossless([series.graph], tmp_path)

    def test_transaction_dataset_roundtrip(self, tmp_path):
        from repro.datasets.synthetic import build_transaction_dataset

        dataset = build_transaction_dataset(seed=3, scale=0.1, num_graphs=4)
        assert_lossless(dataset.graphs, tmp_path)


class TestRealDataAnalogues:
    def test_dblp_roundtrip(self, tmp_path):
        from repro.datasets.dblp import DBLPConfig, generate_dblp_dataset

        dataset = generate_dblp_dataset(
            DBLPConfig(num_authors=12, career_length=8, authors_per_archetype=1, seed=3)
        )
        assert_lossless(dataset.graphs, tmp_path)

    def test_weibo_roundtrip(self, tmp_path):
        from repro.datasets.weibo import WeiboConfig, generate_weibo_dataset

        dataset = generate_weibo_dataset(
            WeiboConfig(num_conversations=6, planted_conversations=2, chain_length=5, seed=3)
        )
        assert_lossless(dataset.graphs, tmp_path)

    def test_trajectories_roundtrip(self, tmp_path):
        from repro.datasets.trajectories import (
            TrajectoryConfig,
            generate_trajectory_dataset,
        )

        dataset = generate_trajectory_dataset(
            TrajectoryConfig(num_users=8, route_length=4, users_per_route=3, seed=3)
        )
        assert_lossless(dataset.graphs, tmp_path)


class TestIndexStoreRoundtrip:
    """Generator → DiamMine → disk store → reload: keys and supports identical."""

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_stage_one_entries_survive_the_store(self, backend, tmp_path):
        from repro.datasets.synthetic import build_gid_dataset
        from repro.graph.io import dataset_fingerprint

        dataset = build_gid_dataset(1, seed=3, scale=0.15)
        context = MiningContext(dataset.graph, 2)
        patterns = DiamMine(context).mine(3)
        assert patterns, "expected frequent length-3 paths in GID 1"

        store = (
            MemoryPatternStore() if backend == "memory" else DiskPatternStore(tmp_path)
        )
        key = StoreKey.make(
            dataset_fingerprint([dataset.graph]),
            "skinny",
            {"length": 3, "min_support": 2, "support_measure": "embeddings"},
        )
        store.put(IndexEntry(key=key, patterns=patterns))

        reader = store if backend == "memory" else DiskPatternStore(tmp_path)
        reloaded = reader.get(key).patterns
        assert [(p.labels, p.support) for p in reloaded] == [
            (p.labels, p.support) for p in patterns
        ]
        assert [p.embeddings for p in reloaded] == [p.embeddings for p in patterns]


# ------------------------------------------------------------------ #
# helpers for the injected-pattern canonical-key checks
# ------------------------------------------------------------------ #
def stringify_labels(graph):
    """The LG text format stores labels as text; compare in that domain."""
    from repro.graph.labeled_graph import LabeledGraph

    out = LabeledGraph(name=graph.name)
    for vertex in graph.vertices():
        out.add_vertex(vertex, str(graph.label_of(vertex)))
    for edge in graph.edges():
        out.add_edge(edge.u, edge.v, None if edge.label is None else str(edge.label))
    return out


def assert_roundtrip_single(graph, tmp_path):
    target = tmp_path / "single.lg"
    write_lg(graph, target)
    return read_lg(target)
