"""Tests for the Table 1/2/3 and graph-transaction dataset builders."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    TABLE1_SETTINGS,
    TABLE2_DIFFERENCES,
    TABLE3_PATTERNS,
    build_gid_dataset,
    build_skinniness_series,
    build_transaction_dataset,
)
from repro.graph.isomorphism import is_subgraph_isomorphic
from repro.graph.paths import diameter


class TestTable1Settings:
    def test_all_five_settings_present(self):
        assert set(TABLE1_SETTINGS) == {1, 2, 3, 4, 5}

    def test_table1_values_match_paper(self):
        one = TABLE1_SETTINGS[1]
        assert (one.num_vertices, one.num_labels, one.avg_degree) == (500, 80, 2)
        assert (one.long_pattern_vertices, one.long_pattern_diameter) == (40, 18)
        four = TABLE1_SETTINGS[4]
        assert (four.num_vertices, four.num_labels, four.avg_degree) == (1000, 240, 4)
        assert four.short_pattern_support == 20
        five = TABLE1_SETTINGS[5]
        assert five.num_short_patterns == 20

    def test_table2_differences_documented(self):
        assert "2 vs 1" in TABLE2_DIFFERENCES
        assert "doubles the average degree" in TABLE2_DIFFERENCES["2 vs 1"]

    def test_scaled_setting_preserves_shape(self):
        scaled = TABLE1_SETTINGS[1].scaled(0.3)
        assert scaled.num_labels == 80
        assert scaled.avg_degree == 2
        assert scaled.num_vertices < 500
        # The injected long pattern shrinks but keeps its vertices/diameter ratio.
        assert 4 <= scaled.long_pattern_diameter < 18
        original_ratio = 40 / 18
        scaled_ratio = scaled.long_pattern_vertices / scaled.long_pattern_diameter
        assert abs(scaled_ratio - original_ratio) < 0.5
        with pytest.raises(ValueError):
            TABLE1_SETTINGS[1].scaled(0.0)


class TestGIDDatasets:
    def test_unknown_gid_rejected(self):
        with pytest.raises(ValueError):
            build_gid_dataset(9)

    def test_build_scaled_gid1(self):
        dataset = build_gid_dataset(1, seed=1, scale=0.2)
        assert dataset.gid == 1
        assert dataset.graph.num_vertices() >= 60
        assert len(dataset.long_patterns) == 5
        assert len(dataset.short_patterns) >= 1
        # Every injected long pattern really occurs in the data graph.
        assert is_subgraph_isomorphic(dataset.long_patterns[0], dataset.graph)

    def test_injected_long_patterns_have_table_diameter(self):
        dataset = build_gid_dataset(2, seed=3, scale=0.2)
        for pattern in dataset.long_patterns:
            assert diameter(pattern) == dataset.setting.long_pattern_diameter

    def test_deterministic(self):
        first = build_gid_dataset(1, seed=5, scale=0.2)
        second = build_gid_dataset(1, seed=5, scale=0.2)
        assert first.graph.num_edges() == second.graph.num_edges()
        assert first.graph.vertex_labels() == second.graph.vertex_labels()


class TestSkinninessSeries:
    def test_table3_shape(self):
        assert len(TABLE3_PATTERNS) == 10
        assert TABLE3_PATTERNS[0] == (1, 60, 50)
        assert TABLE3_PATTERNS[9] == (10, 60, 8)

    def test_build_series_scaled(self):
        series = build_skinniness_series(seed=1, scale=0.15)
        assert set(series.patterns) == set(range(1, 11))
        # PID 1 remains skinnier (longer diameter relative to size) than PID 10.
        assert series.pattern_diameter(1) > series.pattern_diameter(10)
        assert is_subgraph_isomorphic(series.patterns[6], series.graph)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_skinniness_series(scale=0)


class TestTransactionDataset:
    def test_figure9_defaults_scaled(self):
        dataset = build_transaction_dataset(seed=1, scale=0.15)
        assert len(dataset.graphs) == 10
        assert len(dataset.skinny_patterns) == 5
        assert dataset.small_patterns == []

    def test_figure10_adds_small_patterns(self):
        dataset = build_transaction_dataset(seed=1, scale=0.15, num_small=120)
        assert len(dataset.small_patterns) >= 1

    def test_skinny_patterns_occur_in_enough_transactions(self):
        dataset = build_transaction_dataset(
            seed=2, scale=0.15, num_skinny=2, skinny_support=4
        )
        pattern = dataset.skinny_patterns[0]
        containing = sum(
            1 for graph in dataset.graphs if is_subgraph_isomorphic(pattern, graph)
        )
        assert containing >= 4

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_transaction_dataset(scale=1.5)
