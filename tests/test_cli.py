"""Tests for the ``python -m repro`` command-line interface (in-process)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.cli import _parse_lengths, load_dataset, main
from repro.graph.io import write_lg
from repro.graph.labeled_graph import build_graph

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

from check_trace_schema import check_trace_file  # noqa: E402


@pytest.fixture
def lg_file(tmp_path):
    """A small LG dataset with two injected a-b-c-d chains."""
    graph = build_graph(
        {
            0: "a", 1: "b", 2: "c", 3: "d",
            10: "a", 11: "b", 12: "c", 13: "d",
            20: "x", 21: "y",
        },
        [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (12, 13), (20, 21), (3, 20)],
    )
    path = tmp_path / "data.lg"
    write_lg(graph, path)
    return path


class TestHelpers:
    def test_parse_lengths(self):
        assert _parse_lengths("4,6") == [4, 6]
        assert _parse_lengths("3-5") == [3, 4, 5]
        assert _parse_lengths("5,3-4,5") == [3, 4, 5]
        with pytest.raises(ValueError):
            _parse_lengths(",")

    def test_load_dataset_demo(self):
        (graph,) = load_dataset("demo")
        assert graph.num_vertices() > 0

    def test_load_dataset_bad_spec(self):
        with pytest.raises(ValueError):
            load_dataset("/nonexistent/path.lg")

    def test_load_dataset_synthetic(self):
        (graph,) = load_dataset("synthetic:1:0.1:3")
        assert graph.num_vertices() >= 60


class TestIndexCommands:
    def test_build_then_info(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "index", "build",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "--lengths", "2,3",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )
        built = json.loads(capsys.readouterr().out)
        assert set(built["lengths"]) == {"2", "3"}
        assert built["lengths"]["3"] >= 1  # the a-b-c-d chain occurs twice

        assert main(["index", "info", "--store", str(store), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 2
        assert all(entry["constraint_id"] == "skinny" for entry in entries)

    def test_info_empty_store(self, tmp_path, capsys):
        assert main(["index", "info", "--store", str(tmp_path / "empty")]) == 0
        assert "empty index store" in capsys.readouterr().out


class TestIndexQueryAndBackends:
    def _build(self, lg_file, store, backend):
        assert (
            main(
                [
                    "index", "build",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "--backend", backend,
                    "--lengths", "2,3",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )

    def test_sqlite_build_info_query(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        self._build(lg_file, store, "sqlite")
        capsys.readouterr()
        assert (store / "patterns.sqlite").exists()

        assert main(["index", "info", "--store", str(store), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 2

        assert (
            main(
                [
                    "index", "query",
                    "--store", str(store),
                    "--labels-contain", "b",
                    "--labels-contain", "c",
                    "--order-by=-support",
                    "--json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert rows, "expected at least one b-and-c pattern"
        assert all({"b", "c"} <= set(row["labels"]) for row in rows)
        supports = [row["support"] for row in rows]
        assert supports == sorted(supports, reverse=True)

    def test_query_identical_across_backends(self, lg_file, tmp_path, capsys):
        outputs = {}
        for backend in ("jsonl", "sqlite"):
            store = tmp_path / backend
            self._build(lg_file, store, backend)
            capsys.readouterr()
            assert (
                main(
                    [
                        "index", "query",
                        "--store", str(store),
                        "--min-support", "2",
                        "--order-by", "size",
                        "--json",
                        "--include-patterns",
                    ]
                )
                == 0
            )
            outputs[backend] = capsys.readouterr().out
        assert outputs["jsonl"] == outputs["sqlite"]

    def test_backend_from_environment(self, lg_file, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        store = tmp_path / "env-store"
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "-l", "3", "-d", "1",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (store / "patterns.sqlite").exists()

    def test_query_limit_and_table_output(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        self._build(lg_file, store, "sqlite")
        capsys.readouterr()
        assert (
            main(
                ["index", "query", "--store", str(store), "--limit", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 match(es)" in out and "SqlitePatternStore" in out

    def test_query_bad_filter_exits_one(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        self._build(lg_file, store, "sqlite")
        capsys.readouterr()
        assert (
            main(["index", "query", "--store", str(store), "--limit", "-3"]) == 1
        )
        assert "limit" in capsys.readouterr().err


class TestMineCommand:
    def test_mine_warm_after_build(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        main(
            [
                "index", "build",
                "--data", str(lg_file),
                "--store", str(store),
                "--lengths", "3",
                "--min-support", "2",
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "-l", "3",
                    "-d", "1",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["served_from_store"] is True
        assert payload["stats"]["num_minimal_patterns"] >= 1
        assert payload["patterns"], "expected at least one mined pattern"
        assert all(p["support"] >= 2 for p in payload["patterns"])

    def test_mine_persists_to_fresh_store(self, lg_file, tmp_path, capsys):
        # Regression: an empty DiskPatternStore is falsy; `mine --store` must
        # still use (and warm) it rather than falling back to memory.
        store = tmp_path / "fresh-store"
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "-l", "3",
                    "-d", "0",
                    "--min-support", "2",
                ]
            )
            == 0
        )
        assert "cold" in capsys.readouterr().out
        # Backend-agnostic persistence check: jsonl entry files or the
        # sqlite database, whichever REPRO_STORE_BACKEND selected.
        from repro.index import detect_store_backend

        assert detect_store_backend(store) is not None, "Stage-1 entry was not persisted"
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "-l", "3",
                    "-d", "0",
                    "--min-support", "2",
                ]
            )
            == 0
        )
        assert "warm index" in capsys.readouterr().out

    def test_mine_without_store(self, lg_file, capsys):
        assert (
            main(
                ["mine", "--data", str(lg_file), "-l", "3", "-d", "0", "--min-support", "2"]
            )
            == 0
        )
        assert "cold" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "arguments",
        [
            ["-l", "3", "-d", "1"],
            ["--constraint", "path", "--param", "length=3"],
            ["--constraint", "diam-le", "--param", "k=2"],
        ],
        ids=["skinny", "path", "diam-le"],
    )
    def test_mine_cold_path_every_constraint(self, lg_file, capsys, arguments):
        """Without a prebuilt store, Stage 1 runs inline — and says so.

        Mirrors the CI cold-path smoke: ``served_from_store`` must be false
        for all three registered constraints when no ``--store`` is given.
        """
        assert (
            main(
                ["mine", "--data", str(lg_file), "--min-support", "2", "--json"]
                + arguments
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["served_from_store"] is False
        assert payload["stats"]["result_cache_hit"] is False


class TestServeBatch:
    def test_batch_responses(self, lg_file, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(
            json.dumps(
                [
                    {"length": 3, "delta": 1, "min_support": 2},
                    {"length": 3, "delta": 1, "min_support": 2, "top_k": 1},
                ]
            ),
            encoding="utf-8",
        )
        output = tmp_path / "responses.json"
        assert (
            main(
                [
                    "serve-batch",
                    "--data", str(lg_file),
                    "--requests", str(requests),
                    "--output", str(output),
                ]
            )
            == 0
        )
        results = json.loads(output.read_text(encoding="utf-8"))
        assert len(results) == 2
        assert results[1]["num_patterns"] <= 1
        assert "patterns" not in results[0]

    def test_batch_rejects_non_list(self, lg_file, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text("{}", encoding="utf-8")
        assert (
            main(
                ["serve-batch", "--data", str(lg_file), "--requests", str(requests)]
            )
            == 1
        )
        assert "error" in capsys.readouterr().err


class TestConstraintDispatch:
    def test_constraints_listing(self, capsys):
        assert main(["constraints"]) == 0
        out = capsys.readouterr().out
        for constraint_id in ("skinny", "path", "diam-le"):
            assert constraint_id in out

    def test_constraints_listing_json(self, capsys):
        assert main(["constraints", "--json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert {spec["constraint_id"] for spec in specs} >= {"skinny", "path", "diam-le"}

    def test_mine_path_constraint(self, lg_file, capsys):
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--constraint", "path",
                    "--param", "length=3",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["patterns"]
        assert all(p["num_edges"] == 3 for p in payload["patterns"])
        assert payload["stats"]["request"]["constraint"] == "path"

    def test_mine_diam_constraint_shares_store_with_skinny(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "-l", "3", "-d", "1",
                    "--min-support", "2",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "--constraint", "diam-le",
                    "--param", "k=2",
                    "--min-support", "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["index", "info", "--store", str(store), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {entry["constraint_id"] for entry in entries} == {"skinny", "diam-le"}

    def test_index_build_path_constraint(self, lg_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "index", "build",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "--constraint", "path",
                    "--lengths", "3",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )
        built = json.loads(capsys.readouterr().out)
        assert built["constraint"] == "path"
        assert built["lengths"]["3"] >= 1
        # A follow-up mine over the same store is served warm.
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--store", str(store),
                    "--constraint", "path",
                    "--param", "length=3",
                    "--min-support", "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["served_from_store"] is True

    def test_serve_batch_accepts_query_envelopes(self, lg_file, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(
            json.dumps(
                [
                    {"constraint": "path", "params": {"length": 3}, "min_support": 2},
                    {"constraint": "diam-le", "params": {"k": 2}, "min_support": 2},
                    {"length": 3, "delta": 1, "min_support": 2},  # legacy shape
                ]
            ),
            encoding="utf-8",
        )
        assert (
            main(["serve-batch", "--data", str(lg_file), "--requests", str(requests)])
            == 0
        )
        results = json.loads(capsys.readouterr().out)
        assert len(results) == 3
        assert all(result["num_patterns"] >= 1 for result in results)
        assert results[1]["stats"]["request"]["constraint"] == "diam-le"
        assert results[2]["stats"]["request"]["constraint"] == "skinny"


class TestTelemetryFlags:
    def mine_arguments(self, lg_file):
        return [
            "mine",
            "--data", str(lg_file),
            "-l", "3",
            "-d", "1",
            "--min-support", "2",
        ]

    def test_mine_stats_table(self, lg_file, capsys):
        assert main(self.mine_arguments(lg_file) + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "query statistics:" in out
        assert "overhead seconds" in out
        assert "stage 2 seconds" in out
        # Stage-2 fast-path counters appear with underscores humanised.
        assert "canonical incremental hits" in out

    def test_trace_out_writes_valid_jsonl(self, lg_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(self.mine_arguments(lg_file) + ["--trace-out", str(trace)]) == 0
        required = ["stage1", "stage2.level", "stage2.phase.canonical", "store"]
        assert check_trace_file(trace, required) == []
        rows = [
            json.loads(line)
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        assert rows[0]["type"] == "event"
        assert rows[0]["event"] == "mine"
        assert any(row.get("name") == "query" for row in rows)

    def test_emit_metrics_snapshot_loads(self, lg_file, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        metrics = tmp_path / "metrics.json"
        assert main(self.mine_arguments(lg_file) + ["--emit-metrics", str(metrics)]) == 0
        payload = json.loads(metrics.read_text(encoding="utf-8"))
        registry = MetricsRegistry.from_snapshot(payload)
        assert registry.counter(
            "repro_queries_total", labels={"constraint": "skinny"}
        ).value == 1
        assert registry.histogram(
            "repro_query_seconds", labels={"constraint": "skinny"}
        ).count == 1

    def test_serve_batch_trace_covers_all_queries(self, lg_file, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(
            json.dumps(
                [
                    {"constraint": "skinny", "params": {"length": 3, "delta": 1},
                     "min_support": 2},
                    {"constraint": "path", "params": {"length": 3}, "min_support": 2},
                ]
            ),
            encoding="utf-8",
        )
        trace = tmp_path / "batch.jsonl"
        assert (
            main(
                [
                    "serve-batch",
                    "--data", str(lg_file),
                    "--requests", str(requests),
                    "--trace-out", str(trace),
                ]
            )
            == 0
        )
        assert check_trace_file(trace, ["service.batch", "query"]) == []
        rows = [
            json.loads(line)
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        queries = [row for row in rows if row.get("name") == "query"]
        assert len(queries) == 2
        batch = next(row for row in rows if row.get("name") == "service.batch")
        assert all(row["parent_id"] == batch["span_id"] for row in queries)

    def test_stats_verb_table_prom_json(self, lg_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(self.mine_arguments(lg_file) + ["--emit-metrics", str(metrics)])
        capsys.readouterr()

        assert main(["stats", str(metrics)]) == 0
        table = capsys.readouterr().out
        assert "counters:" in table
        assert 'repro_queries_total{constraint="skinny"}' in table
        assert "p50=" in table and "p99=" in table

        assert main(["stats", str(metrics), "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in prom
        for line in prom.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)

        assert main(["stats", str(metrics), "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert {"counters", "gauges", "histograms"} <= set(snapshot)

    def test_stats_verb_empty_registry(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        metrics = tmp_path / "empty.json"
        metrics.write_text(
            json.dumps(MetricsRegistry().snapshot()), encoding="utf-8"
        )
        assert main(["stats", str(metrics)]) == 0
        assert "no metrics recorded" in capsys.readouterr().out


class TestErrors:
    def test_bad_data_spec_returns_one(self, capsys):
        assert main(["mine", "--data", "nope.lg", "-l", "2", "-d", "0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_constraint(self, lg_file, capsys):
        assert (
            main(
                ["mine", "--data", str(lg_file), "--constraint", "bogus", "-l", "2", "-d", "0"]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "unknown constraint id 'bogus'" in err
        assert "skinny" in err  # the error names the registered ids

    def test_missing_parameter(self, lg_file, capsys):
        assert (
            main(["mine", "--data", str(lg_file), "--constraint", "diam-le"]) == 1
        )
        assert "missing required parameter 'k'" in capsys.readouterr().err

    def test_unexpected_parameter(self, lg_file, capsys):
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--constraint", "path",
                    "--param", "length=3",
                    "-d", "1",
                ]
            )
            == 1
        )
        assert "unexpected parameter" in capsys.readouterr().err

    def test_wrong_parameter_type(self, lg_file, capsys):
        assert (
            main(
                [
                    "mine",
                    "--data", str(lg_file),
                    "--constraint", "diam-le",
                    "--param", "k=two",
                ]
            )
            == 1
        )
        assert "must be an integer" in capsys.readouterr().err

    def test_malformed_param_flag(self, lg_file, capsys):
        assert (
            main(
                ["mine", "--data", str(lg_file), "--constraint", "diam-le", "--param", "k2"]
            )
            == 1
        )
        assert "name=value" in capsys.readouterr().err

    def test_serve_batch_unknown_constraint(self, lg_file, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(
            json.dumps([{"constraint": "bogus", "params": {}}]), encoding="utf-8"
        )
        assert (
            main(["serve-batch", "--data", str(lg_file), "--requests", str(requests)])
            == 1
        )
        assert "unknown constraint id 'bogus'" in capsys.readouterr().err

    def test_serve_batch_malformed_payload(self, lg_file, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"lengths": [3]}]), encoding="utf-8")
        assert (
            main(["serve-batch", "--data", str(lg_file), "--requests", str(requests)])
            == 1
        )
        assert "neither a Query envelope" in capsys.readouterr().err

    def test_index_build_lengths_required_for_length_indexed(self, lg_file, tmp_path, capsys):
        assert (
            main(
                [
                    "index", "build",
                    "--data", str(lg_file),
                    "--store", str(tmp_path / "s"),
                    "--constraint", "path",
                ]
            )
            == 1
        )
        assert "--lengths" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_speaks_ndjson_over_tcp(self, lg_file):
        """`repro serve` end to end: spawn, scrape the port, query, shutdown."""
        import asyncio
        import os
        import subprocess

        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--data",
                str(lg_file),
                "--port",
                "0",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            listening = json.loads(process.stdout.readline())
            assert listening["event"] == "listening"
            assert listening["pid"] == process.pid

            async def talk():
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", listening["port"]
                )
                try:
                    responses = {}

                    async def request(payload):
                        writer.write((json.dumps(payload) + "\n").encode())
                        await writer.drain()
                        line = await asyncio.wait_for(reader.readline(), timeout=30)
                        response = json.loads(line)
                        responses[response["id"]] = response

                    await request({"op": "ping", "id": 1})
                    await request(
                        {
                            "op": "query",
                            "id": 2,
                            "query": {
                                "constraint": "skinny",
                                "params": {"length": 3, "delta": 1},
                                "min_support": 2,
                            },
                        }
                    )
                    await request({"op": "shutdown", "id": 3})
                    return responses
                finally:
                    writer.close()

            responses = asyncio.run(talk())
            assert responses[1]["op"] == "ping" and responses[1]["ok"]
            assert responses[2]["ok"] is True
            assert responses[2]["num_patterns"] == 1  # the repeated a-b-c-d chain
            assert responses[3] == {"id": 3, "ok": True, "op": "shutdown"}
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
