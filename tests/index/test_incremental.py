"""Tests for incremental index maintenance under edge deltas."""

from __future__ import annotations

import pytest

from repro.core.database import EdgeDelta, GraphDelta, MiningContext
from repro.core.diammine import DiamMine, brute_force_frequent_paths
from repro.graph.io import dataset_fingerprint
from repro.graph.labeled_graph import build_graph
from repro.graph.paths import unique_simple_paths
from repro.index.incremental import (
    IndexMaintainer,
    find_labeled_path_occurrences,
    paths_through_edge,
)
from repro.index.store import IndexEntry, MemoryPatternStore, StoreKey


def normalised(patterns):
    return sorted(
        (p.labels, p.support, tuple(sorted(p.embeddings))) for p in patterns
    )


def seeded_store(graph, length, min_support):
    """A store holding one freshly mined exact-mode entry for ``graph``."""
    store = MemoryPatternStore()
    context = MiningContext(graph, min_support)
    patterns = DiamMine(context).mine(length)
    parameter = {
        "length": length,
        "min_support": min_support,
        "support_measure": context.support_measure.value,
        "stage1_mode": "exact",
    }
    key = StoreKey.make(dataset_fingerprint([graph]), "skinny", parameter)
    store.put(IndexEntry(key=key, patterns=patterns, build_seconds=0.1))
    return store, key, parameter


@pytest.fixture
def data_graph():
    # Two injected a-b-c-d chains plus background edges.
    return build_graph(
        {
            0: "a", 1: "b", 2: "c", 3: "d",
            10: "a", 11: "b", 12: "c", 13: "d",
            20: "x", 21: "y", 22: "a", 23: "b",
        },
        [
            (0, 1), (1, 2), (2, 3),
            (10, 11), (11, 12), (12, 13),
            (20, 21), (21, 22), (22, 23),
            (3, 20),
        ],
    )


class TestPathsThroughEdge:
    def test_matches_brute_force(self, data_graph):
        for length in (1, 2, 3):
            expected = {
                tuple(path)
                for path in unique_simple_paths(data_graph, length)
                if any(
                    {a, b} == {2, 3} for a, b in zip(path, path[1:])
                )
            }
            found = {
                min(p, tuple(reversed(p)))
                for p in paths_through_edge(data_graph, 2, 3, length)
            }
            assert found == expected

    def test_missing_edge_rejected(self, data_graph):
        with pytest.raises(KeyError):
            paths_through_edge(data_graph, 0, 13, 2)


class TestFindLabeledPathOccurrences:
    def test_counts_match_brute_force(self, data_graph):
        context = MiningContext(data_graph, 1)
        for pattern in brute_force_frequent_paths(context, 2):
            found = find_labeled_path_occurrences(context, pattern.labels)
            assert tuple(sorted(found)) == pattern.embeddings


class TestRepairRemove:
    def test_removal_matches_rebuild(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 3, 1)
        maintainer = IndexMaintainer(store)
        graphs = [data_graph]
        report = maintainer.apply_delta(graphs, [EdgeDelta.remove_edge(2, 3)])
        assert report.entries_repaired == 1
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        repaired = store.get(new_key).patterns
        truth = brute_force_frequent_paths(MiningContext(data_graph, 1), 3)
        assert normalised(repaired) == normalised(truth)

    def test_support_drop_evicts_pattern(self):
        # "a-b" occurs twice; σ=2 keeps it only while both embeddings live.
        graph = build_graph(
            {0: "a", 1: "b", 2: "a", 3: "b"}, [(0, 1), (2, 3)]
        )
        store, key, parameter = seeded_store(graph, 1, 2)
        assert len(store.get(key).patterns) == 1
        maintainer = IndexMaintainer(store)
        report = maintainer.apply_delta([graph], [EdgeDelta.remove_edge(0, 1)])
        assert report.patterns_dropped == 1
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        assert store.get(new_key).patterns == []


class TestRepairAdd:
    def test_added_edge_matches_rebuild(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        graphs = [data_graph]
        report = maintainer.apply_delta(
            graphs, [EdgeDelta.add_edge(13, 20)]
        )
        assert report.entries_repaired == 1
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        repaired = store.get(new_key).patterns
        truth = brute_force_frequent_paths(MiningContext(data_graph, 1), 2)
        assert normalised(repaired) == normalised(truth)

    def test_new_vertex_via_delta(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        report = maintainer.apply_delta(
            [data_graph], [EdgeDelta.add_edge(0, 99, label_v="z")]
        )
        assert data_graph.has_vertex(99)
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        repaired = store.get(new_key).patterns
        truth = brute_force_frequent_paths(MiningContext(data_graph, 1), 2)
        assert normalised(repaired) == normalised(truth)

    def test_newly_frequent_pattern_admitted_under_sigma_two(self):
        # One a-b-c chain exists; adding a second makes the path frequent at σ=2.
        graph = build_graph(
            {0: "a", 1: "b", 2: "c", 10: "a", 11: "b", 12: "c"},
            [(0, 1), (1, 2), (10, 11)],
        )
        store, key, parameter = seeded_store(graph, 2, 2)
        assert store.get(key).patterns == []
        maintainer = IndexMaintainer(store)
        report = maintainer.apply_delta([graph], [EdgeDelta.add_edge(11, 12)])
        assert report.patterns_added == 1
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        repaired = store.get(new_key).patterns
        truth = brute_force_frequent_paths(MiningContext(graph, 2), 2)
        assert normalised(repaired) == normalised(truth)
        assert repaired[0].labels == ("a", "b", "c")


class TestMaintainerBookkeeping:
    def test_untouched_entry_is_migrated_not_repaired(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 1, 1)
        maintainer = IndexMaintainer(store)
        # Removing edge (20, 21) touches x-y only; a single-edge entry mined at
        # σ=1 holds that embedding, so instead edit an edge seen by no l=1 path:
        # add a brand-new component.
        report = maintainer.apply_delta(
            [data_graph], [EdgeDelta.add_edge(50, 51, label_u="q", label_v="q")]
        )
        # "q-q" becomes a new frequent single edge at σ=1 → entry is repaired;
        # check the books balance either way.
        assert report.entries_seen == 1
        assert report.entries_repaired + report.entries_migrated == 1
        truth = brute_force_frequent_paths(MiningContext(data_graph, 1), 1)
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        assert normalised(store.get(new_key).patterns) == normalised(truth)

    def test_old_fingerprint_keys_are_purged(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        report = maintainer.apply_delta([data_graph], [EdgeDelta.remove_edge(21, 22)])
        assert store.get(key) is None
        assert len(store.keys()) == 1
        assert store.keys()[0].fingerprint == report.new_fingerprint

    def test_cap_truncated_entries_are_invalidated_not_repaired(self, data_graph):
        # Entries carrying extra parameter keys (here a Stage-1 cap) are
        # deliberately incomplete; repair must invalidate, never "complete" them.
        store = MemoryPatternStore()
        key = StoreKey.make(
            dataset_fingerprint([data_graph]),
            "skinny",
            {
                "length": 2,
                "min_support": 1,
                "support_measure": "embeddings",
                "max_paths_per_length": 1,
            },
        )
        store.put(IndexEntry(key=key, patterns=[], build_seconds=0.0))
        maintainer = IndexMaintainer(store)
        report = maintainer.apply_delta([data_graph], [EdgeDelta.remove_edge(21, 22)])
        assert report.entries_invalidated == 1
        assert report.entries_repaired == 0
        assert store.keys() == []

    def test_unknown_parameter_scheme_is_invalidated(self, data_graph):
        store = MemoryPatternStore()
        key = StoreKey.make(dataset_fingerprint([data_graph]), "skinny", (3, 1))
        store.put(IndexEntry(key=key, patterns=[], build_seconds=0.0))
        maintainer = IndexMaintainer(store)
        report = maintainer.apply_delta([data_graph], [EdgeDelta.remove_edge(21, 22)])
        assert report.entries_invalidated == 1
        assert store.keys() == []

    def test_invalid_batch_rejected_before_any_mutation(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        fingerprint_before = dataset_fingerprint([data_graph])
        edges_before = {e.endpoints() for e in data_graph.edges()}
        # Second operation is invalid (edge does not exist): nothing may apply.
        delta = GraphDelta().remove_edge(2, 3).remove_edge(0, 13)
        with pytest.raises(KeyError):
            maintainer.apply_delta([data_graph], delta)
        assert {e.endpoints() for e in data_graph.edges()} == edges_before
        assert dataset_fingerprint([data_graph]) == fingerprint_before
        assert store.keys() == [key]

    def test_edge_relabel_conflict_rejected_upfront(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        edges_before = {e.endpoints() for e in data_graph.edges()}
        # (2, 3) exists unlabeled; re-adding it with a label is a relabel.
        delta = GraphDelta().remove_edge(0, 1).add_edge(2, 3, edge_label="x")
        with pytest.raises(ValueError):
            maintainer.apply_delta([data_graph], delta)
        assert {e.endpoints() for e in data_graph.edges()} == edges_before

    def test_add_without_label_for_new_vertex_rejected_upfront(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        edges_before = {e.endpoints() for e in data_graph.edges()}
        delta = GraphDelta().remove_edge(0, 1).add_edge(0, 999)  # 999 has no label
        with pytest.raises(ValueError):
            maintainer.apply_delta([data_graph], delta)
        assert {e.endpoints() for e in data_graph.edges()} == edges_before

    def test_batched_delta_applies_in_order(self, data_graph):
        store, key, parameter = seeded_store(data_graph, 2, 1)
        maintainer = IndexMaintainer(store)
        delta = GraphDelta().remove_edge(2, 3).add_edge(2, 3)
        report = maintainer.apply_delta([data_graph], delta)
        assert report.operations == 2
        # Net effect is the identity; the entry must match a rebuild exactly.
        new_key = StoreKey.make(report.new_fingerprint, "skinny", parameter)
        truth = brute_force_frequent_paths(MiningContext(data_graph, 1), 2)
        assert normalised(store.get(new_key).patterns) == normalised(truth)
        assert report.new_fingerprint == report.old_fingerprint
