"""Atomic-replace publication: concurrent readers never see torn entries.

``DiskPatternStore.put`` writes into a same-directory temp file and
publishes with ``os.replace``, so a reader racing a writer must observe
either the previous complete entry or the new complete entry — never a
half-written file.  These tests hammer one key from reader threads and
reader processes while a writer flip-flops between two entry versions;
any torn read would surface as a ``StoreFormatError`` (truncation is
caught by the header's ``num_patterns`` promise) or as an entry whose
patterns match neither version.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.core.database import MiningContext
from repro.core.diammine import DiamMine
from repro.graph.labeled_graph import build_graph
from repro.index.store import DiskPatternStore, IndexEntry, StoreFormatError, StoreKey

KEY = StoreKey.make("f" * 64, "skinny", {"length": 2, "min_support": 1})
WRITE_ROUNDS = 150


def _mined_patterns():
    graph = build_graph(
        {0: "a", 1: "b", 2: "c", 3: "b", 4: "a"},
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    return DiamMine(MiningContext(graph, 1)).mine(2)


def _entry_versions():
    patterns = _mined_patterns()
    assert len(patterns) >= 2, "fixture graph must mine at least two patterns"
    small = IndexEntry(key=KEY, patterns=patterns[:1], build_seconds=1.0)
    full = IndexEntry(key=KEY, patterns=list(patterns), build_seconds=2.0)
    return small, full


def _classify(entry, small, full):
    """Which complete version a read observed; raises on a mixed entry."""
    if entry is None:
        return "missing"
    if entry.build_seconds == small.build_seconds and len(entry.patterns) == len(
        small.patterns
    ):
        return "small"
    if entry.build_seconds == full.build_seconds and len(entry.patterns) == len(
        full.patterns
    ):
        return "full"
    raise AssertionError(
        f"mixed entry observed: build_seconds={entry.build_seconds} "
        f"num_patterns={len(entry.patterns)}"
    )


def _read_until(root, stop_event, small, full):
    """Read the key repeatedly until ``stop_event``; tally what was seen.

    A fresh ``DiskPatternStore`` per read defeats the in-memory entry
    cache, forcing every ``get`` through the on-disk file.
    """
    counts = {"missing": 0, "small": 0, "full": 0, "torn": 0}
    while not stop_event.is_set():
        try:
            entry = DiskPatternStore(root).get(KEY)
        except StoreFormatError:
            counts["torn"] += 1
            continue
        counts[_classify(entry, small, full)] += 1
    return counts


def _process_reader(root, stop_event, queue):
    small, full = _entry_versions()
    queue.put(_read_until(root, stop_event, small, full))


class TestConcurrentReaders:
    def test_thread_readers_never_see_torn_entries(self, tmp_path):
        small, full = _entry_versions()
        writer_store = DiskPatternStore(tmp_path)
        stop = threading.Event()
        results = []
        errors = []

        def reader():
            try:
                results.append(_read_until(str(tmp_path), stop, small, full))
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(WRITE_ROUNDS):
                writer_store.put(small if round_index % 2 else full)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors
        assert len(results) == 4
        merged = {
            name: sum(counts[name] for counts in results)
            for name in ("missing", "small", "full", "torn")
        }
        assert merged["torn"] == 0, merged
        assert merged["small"] + merged["full"] > 0, (
            f"readers never observed a published entry: {merged}"
        )

    def test_process_readers_never_see_torn_entries(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        context = multiprocessing.get_context("fork")
        small, full = _entry_versions()
        writer_store = DiskPatternStore(tmp_path)
        writer_store.put(small)  # readers start against a published file
        stop = context.Event()
        queue = context.Queue()
        readers = [
            context.Process(target=_process_reader, args=(str(tmp_path), stop, queue))
            for _ in range(2)
        ]
        for process in readers:
            process.start()
        try:
            for round_index in range(WRITE_ROUNDS):
                writer_store.put(small if round_index % 2 else full)
        finally:
            stop.set()
        results = [queue.get(timeout=30) for _ in readers]
        for process in readers:
            process.join(timeout=30)
            assert process.exitcode == 0
        merged = {
            name: sum(counts[name] for counts in results)
            for name in ("missing", "small", "full", "torn")
        }
        assert merged["torn"] == 0, merged
        assert merged["small"] + merged["full"] > 0, (
            f"reader processes never observed a published entry: {merged}"
        )
