"""SqlitePatternStore: CRUD, WAL mode, indexed queries, backend selection.

The contract under test (ISSUE 10): the SQLite backend is a drop-in
:class:`PatternStore` — same entries, same snapshot views, same repair
semantics — whose corpus queries are answered from indexed metadata
columns *without deserialising non-matching pattern bodies* (pinned via
:func:`repro.index.codec.decode_count`).
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.core.patterns import PathPattern, SkinnyPattern
from repro.graph.labeled_graph import build_graph
from repro.index import (
    BACKEND_ENV_VAR,
    DiskPatternStore,
    IndexEntry,
    MemoryPatternStore,
    SqlitePatternStore,
    StoreKey,
    decode_count,
    detect_store_backend,
    open_pattern_store,
    resolve_store_backend,
)
from repro.index.store import StoreFormatError


def path_pattern(labels, support):
    return PathPattern(tuple(labels), (), support=support)


def skinny_pattern(support=5):
    graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
    return SkinnyPattern(graph=graph, diameter=[0, 1, 2], embeddings=[], support=support)


KEY_A = StoreKey.make("fp-one", "path", {"length": 2})
KEY_B = StoreKey.make("fp-one", "skinny", {"length": 3, "delta": 1})
KEY_C = StoreKey.make("fp-two", "path", {"length": 2})


def fill(store):
    store.put(
        IndexEntry(
            key=KEY_A,
            patterns=[path_pattern("abc", 4), path_pattern("aa", 9)],
            build_seconds=1.5,
        )
    )
    store.put(IndexEntry(key=KEY_B, patterns=[skinny_pattern(support=5)]))
    store.put(IndexEntry(key=KEY_C, patterns=[path_pattern("bcd", 2)]))


class TestCrudRoundtrip:
    def test_put_get_roundtrip_across_instances(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        store.close()
        reopened = SqlitePatternStore(tmp_path)
        entry = reopened.get(KEY_A)
        assert [p.labels for p in entry.patterns] == [("a", "b", "c"), ("a", "a")]
        assert entry.build_seconds == 1.5
        assert entry.key == KEY_A
        skinny = reopened.get(KEY_B).patterns[0]
        assert skinny.support == 5 and skinny.diameter == [0, 1, 2]
        assert reopened.get(StoreKey.make("fp-one", "path", {"length": 99})) is None
        reopened.close()

    def test_put_replaces_and_delete_removes(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        store.put(IndexEntry(key=KEY_A, patterns=[path_pattern("z", 1)]))
        assert len(store.get(KEY_A).patterns) == 1
        assert set(store.keys()) == {KEY_A, KEY_B, KEY_C}
        assert store.delete(KEY_A) is True
        assert store.delete(KEY_A) is False
        assert store.get(KEY_A) is None
        assert len(store) == 2
        store.close()

    def test_replaced_entry_leaves_no_orphan_rows(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        store.put(IndexEntry(key=KEY_A, patterns=[path_pattern("z", 1)]))
        store.delete(KEY_B)
        counts = store._connection().execute(
            "SELECT (SELECT count(*) FROM patterns), (SELECT count(*) FROM pattern_labels)"
        ).fetchone()
        # KEY_A now holds 1 path (1 label), KEY_C 1 path (3 labels).
        assert counts == (2, 4)
        store.close()

    def test_info_reads_columns_only(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        before = decode_count()
        rows = store.info()
        assert decode_count() == before
        assert [row["num_patterns"] for row in rows] == [2, 1, 1]
        assert rows[0]["parameter"] == {"length": 2}
        store.close()

    def test_direct_sqlite_path_root(self, tmp_path):
        store = SqlitePatternStore(tmp_path / "corpus.sqlite")
        fill(store)
        assert store.path.name == "corpus.sqlite"
        assert len(store) == 3
        store.close()


class TestWalAndFormat:
    def test_database_runs_in_wal_mode(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        mode = store._connection().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_foreign_format_database_is_rejected(self, tmp_path):
        alien = tmp_path / "patterns.sqlite"
        connection = sqlite3.connect(str(alien))
        connection.executescript(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);"
            "INSERT INTO meta VALUES ('format', 'something-else'), ('version', '1');"
        )
        connection.commit()
        connection.close()
        with pytest.raises(StoreFormatError, match="not a repro-pattern-index"):
            SqlitePatternStore(tmp_path)

    def test_future_schema_version_is_rejected(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        store._connection().execute("UPDATE meta SET value = '999' WHERE key = 'version'")
        store.close()
        with pytest.raises(StoreFormatError, match="version"):
            SqlitePatternStore(tmp_path)


class TestIndexedQueries:
    def test_matching_rows_only_are_decoded(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)  # 4 pattern bodies total
        before = decode_count()
        matches = store.query(min_support=9)
        assert [m.support for m in matches] == [9]
        assert decode_count() - before == 1, (
            "sqlite corpus query decoded non-matching bodies"
        )
        before = decode_count()
        assert store.query(labels_contain="nowhere") == []
        assert decode_count() == before
        store.close()

    def test_filters_and_ordering(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        assert [m.support for m in store.query(order_by="-support")] == [9, 5, 4, 2]
        assert [m.support for m in store.query(order_by="support", limit=2)] == [2, 4]
        assert [m.kind for m in store.query(kind="skinny")] == ["skinny"]
        assert [m.support for m in store.query(labels_contain=["b", "c"])] == [4, 5, 2]
        assert [m.support for m in store.query(fingerprint="fp-two")] == [2]
        assert [m.support for m in store.query(constraint_id="path", min_size=2)] == [4, 2]
        assert [m.support for m in store.query(max_size=1)] == [9]
        store.close()

    def test_unknown_filter_rejected_like_scan_backends(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        with pytest.raises(TypeError, match="labels_containz"):
            store.query(labels_containz="a")
        with pytest.raises(ValueError, match="order by"):
            store.query(order_by="beauty")
        with pytest.raises(ValueError, match="limit"):
            store.query(limit=-1)
        store.close()

    def test_match_metadata_agrees_with_scan_backend(self, tmp_path):
        sqlite_store = SqlitePatternStore(tmp_path / "s")
        jsonl_store = DiskPatternStore(tmp_path / "j")
        fill(sqlite_store)
        fill(jsonl_store)
        for filters in (
            {},
            {"order_by": "-support", "limit": 3},
            {"labels_contain": "b", "order_by": "size"},
            {"kind": "path", "min_support": 3},
        ):
            got = [m.to_dict(include_pattern=True) for m in sqlite_store.query(**filters)]
            want = [m.to_dict(include_pattern=True) for m in jsonl_store.query(**filters)]
            assert got == want, filters
        sqlite_store.close()

    def test_support_none_sorts_like_sqlite_null(self, tmp_path):
        # Bare graphs have support=None: first ascending, last descending,
        # on both the SQL path and the Python scan path.
        graph = build_graph({0: "q"}, [])
        key = StoreKey.make("fp-one", "graph", {"n": 1})
        stores = [SqlitePatternStore(tmp_path / "s"), MemoryPatternStore()]
        for store in stores:
            fill(store)
            store.put(IndexEntry(key=key, patterns=[graph]))
        expected_asc = [None, 2, 4, 5, 9]
        expected_desc = [9, 5, 4, 2, None]
        for store in stores:
            assert [m.support for m in store.query(order_by="support")] == expected_asc
            assert [m.support for m in store.query(order_by="-support")] == expected_desc
        stores[0].close()


class TestSnapshotViewOverlay:
    def test_view_query_merges_overlay_and_base(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        view = store.snapshot_view()
        assert [m.support for m in view.query(order_by="support")] == [2, 4, 5, 9]
        view.delete(KEY_A)
        view.put(IndexEntry(key=KEY_C, patterns=[path_pattern("bq", 7)]))
        assert [m.support for m in view.query(order_by="support")] == [5, 7]
        # The base store is untouched.
        assert [m.support for m in store.query(order_by="support")] == [2, 4, 5, 9]
        store.close()


class TestBackendSelection:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "jsonl")
        store = open_pattern_store(tmp_path, backend="sqlite")
        assert isinstance(store, SqlitePatternStore)
        store.close()

    def test_environment_picks_fresh_store_format(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        store = open_pattern_store(tmp_path)
        assert isinstance(store, SqlitePatternStore)
        store.close()

    def test_on_disk_detection_beats_environment(self, tmp_path, monkeypatch):
        # An existing store is never reopened under the other backend: the
        # environment variable only decides the format of fresh roots, so a
        # suite-wide REPRO_STORE_BACKEND=sqlite cannot shadow a JSONL store
        # somebody already built at the same path (and vice versa).
        jsonl = DiskPatternStore(tmp_path / "j")
        fill(jsonl)
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        assert isinstance(open_pattern_store(tmp_path / "j"), DiskPatternStore)

        relational = SqlitePatternStore(tmp_path / "s")
        relational.close()
        monkeypatch.setenv(BACKEND_ENV_VAR, "jsonl")
        reopened = open_pattern_store(tmp_path / "s")
        assert isinstance(reopened, SqlitePatternStore)
        reopened.close()

    def test_on_disk_detection_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        first = SqlitePatternStore(tmp_path / "s")
        first.close()
        assert detect_store_backend(tmp_path / "s") == "sqlite"
        reopened = open_pattern_store(tmp_path / "s")
        assert isinstance(reopened, SqlitePatternStore)
        reopened.close()

        jsonl = DiskPatternStore(tmp_path / "j")
        fill(jsonl)
        assert detect_store_backend(tmp_path / "j") == "jsonl"
        assert isinstance(open_pattern_store(tmp_path / "j"), DiskPatternStore)

    def test_fresh_root_defaults_to_jsonl(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert detect_store_backend(tmp_path) is None
        assert isinstance(open_pattern_store(tmp_path), DiskPatternStore)

    def test_unknown_backend_names_are_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_pattern_store(tmp_path, backend="mongodb")
        with pytest.raises(ValueError, match="REPRO_STORE_BACKEND"):
            resolve_store_backend(None, env={"REPRO_STORE_BACKEND": "csv"})


class TestTruncationGuard:
    def test_missing_pattern_rows_raise_store_format_error(self, tmp_path):
        store = SqlitePatternStore(tmp_path)
        fill(store)
        store._cache.clear()
        store._connection().execute(
            "DELETE FROM patterns WHERE position = 1"
        )
        with pytest.raises(StoreFormatError, match="truncated"):
            store.get(KEY_A)
        store.close()


class TestMetrics:
    def test_query_metrics_published(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = SqlitePatternStore(tmp_path, metrics=registry)
        fill(store)
        store.query(min_support=1)
        store.query(labels_contain="a")
        snapshot = json.dumps(registry.snapshot())
        assert "repro_store_query_seconds" in snapshot
        assert "repro_store_queries_total" in snapshot
        counter = registry.counter("repro_store_queries_total")
        assert counter.value == 2
        store.close()

    def test_jsonl_scan_publishes_same_metric_names(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = DiskPatternStore(tmp_path, metrics=registry)
        fill(store)
        store.query(min_support=1)
        assert registry.counter("repro_store_queries_total").value == 1
