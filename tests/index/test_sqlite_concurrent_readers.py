"""WAL publication: concurrent SQLite readers never see torn entries.

The SQLite analogue of ``tests/index/test_concurrent_readers.py``:
``SqlitePatternStore.put`` replaces an entry inside one immediate
transaction, and ``get`` reads the entry row and its pattern rows inside
one deferred transaction, so a reader racing a writer must observe either
the previous complete entry or the new complete one — WAL mode is what
lets the readers proceed while the writer commits.  A torn read would
surface as a ``StoreFormatError`` (the entries row's ``num_patterns``
promise) or as an entry matching neither version.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.core.database import MiningContext
from repro.core.diammine import DiamMine
from repro.graph.labeled_graph import build_graph
from repro.index.sqlite_store import SqlitePatternStore
from repro.index.store import IndexEntry, StoreFormatError, StoreKey

KEY = StoreKey.make("f" * 64, "skinny", {"length": 2, "min_support": 1})
WRITE_ROUNDS = 150


def _mined_patterns():
    graph = build_graph(
        {0: "a", 1: "b", 2: "c", 3: "b", 4: "a"},
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    return DiamMine(MiningContext(graph, 1)).mine(2)


def _entry_versions():
    patterns = _mined_patterns()
    assert len(patterns) >= 2, "fixture graph must mine at least two patterns"
    small = IndexEntry(key=KEY, patterns=patterns[:1], build_seconds=1.0)
    full = IndexEntry(key=KEY, patterns=list(patterns), build_seconds=2.0)
    return small, full


def _classify(entry, small, full):
    """Which complete version a read observed; raises on a mixed entry."""
    if entry is None:
        return "missing"
    if entry.build_seconds == small.build_seconds and len(entry.patterns) == len(
        small.patterns
    ):
        return "small"
    if entry.build_seconds == full.build_seconds and len(entry.patterns) == len(
        full.patterns
    ):
        return "full"
    raise AssertionError(
        f"mixed entry observed: build_seconds={entry.build_seconds} "
        f"num_patterns={len(entry.patterns)}"
    )


def _read_until(root, stop_event, small, full):
    """Read the key repeatedly until ``stop_event``; tally what was seen.

    A fresh ``SqlitePatternStore`` per read defeats the in-memory entry
    cache, forcing every ``get`` through a real database transaction.
    """
    counts = {"missing": 0, "small": 0, "full": 0, "torn": 0}
    while not stop_event.is_set():
        store = SqlitePatternStore(root)
        try:
            entry = store.get(KEY)
        except StoreFormatError:
            counts["torn"] += 1
            continue
        finally:
            store.close()
        counts[_classify(entry, small, full)] += 1
    return counts


def _process_reader(root, stop_event, queue):
    small, full = _entry_versions()
    queue.put(_read_until(root, stop_event, small, full))


class TestSqliteConcurrentReaders:
    def test_thread_readers_never_see_torn_entries(self, tmp_path):
        small, full = _entry_versions()
        writer_store = SqlitePatternStore(tmp_path)
        stop = threading.Event()
        results = []
        errors = []

        def reader():
            try:
                results.append(_read_until(str(tmp_path), stop, small, full))
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(WRITE_ROUNDS):
                writer_store.put(small if round_index % 2 else full)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        writer_store.close()
        assert not errors, errors
        assert len(results) == 4
        merged = {
            name: sum(counts[name] for counts in results)
            for name in ("missing", "small", "full", "torn")
        }
        assert merged["torn"] == 0, merged
        assert merged["small"] + merged["full"] > 0, (
            f"readers never observed a published entry: {merged}"
        )

    def test_one_shared_store_across_reader_threads(self, tmp_path):
        # Same hammer through ONE store instance: per-thread connections
        # must isolate readers from the writer without a fresh store object.
        small, full = _entry_versions()
        store = SqlitePatternStore(tmp_path)
        stop = threading.Event()
        results = []
        errors = []

        def reader():
            counts = {"missing": 0, "small": 0, "full": 0, "torn": 0}
            try:
                while not stop.is_set():
                    store._cache.clear()  # force a database read
                    try:
                        entry = store.get(KEY)
                    except StoreFormatError:
                        counts["torn"] += 1
                        continue
                    counts[_classify(entry, small, full)] += 1
                results.append(counts)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(WRITE_ROUNDS):
                store.put(small if round_index % 2 else full)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        store.close()
        assert not errors, errors
        merged = {
            name: sum(counts[name] for counts in results)
            for name in ("missing", "small", "full", "torn")
        }
        assert merged["torn"] == 0, merged
        assert merged["small"] + merged["full"] > 0, merged

    def test_process_readers_never_see_torn_entries(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        context = multiprocessing.get_context("fork")
        small, full = _entry_versions()
        writer_store = SqlitePatternStore(tmp_path)
        writer_store.put(small)  # readers start against a published entry
        stop = context.Event()
        queue = context.Queue()
        readers = [
            context.Process(target=_process_reader, args=(str(tmp_path), stop, queue))
            for _ in range(2)
        ]
        for process in readers:
            process.start()
        try:
            for round_index in range(WRITE_ROUNDS):
                writer_store.put(small if round_index % 2 else full)
        finally:
            stop.set()
        results = [queue.get(timeout=30) for _ in readers]
        for process in readers:
            process.join(timeout=30)
            assert process.exitcode == 0
        writer_store.close()
        merged = {
            name: sum(counts[name] for counts in results)
            for name in ("missing", "small", "full", "torn")
        }
        assert merged["torn"] == 0, merged
        assert merged["small"] + merged["full"] > 0, (
            f"reader processes never observed a published entry: {merged}"
        )
