"""SnapshotStoreView: copy-on-write isolation over a frozen base store."""

import pytest

from repro.core.database import MiningContext
from repro.core.diammine import DiamMine
from repro.graph.labeled_graph import build_graph
from repro.index.store import (
    DiskPatternStore,
    IndexEntry,
    MemoryPatternStore,
    SnapshotStoreView,
    StoreKey,
)


def entry(fingerprint="fp", constraint="path", parameter=None, patterns=("p1",)):
    key = StoreKey.make(fingerprint, constraint, parameter or {"length": 2})
    return IndexEntry(key=key, patterns=list(patterns))


def codec_safe_entry():
    """An entry whose patterns survive the disk codec (real mined paths)."""
    graph = build_graph(
        {0: "a", 1: "b", 2: "c", 3: "b", 4: "a"},
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    paths = DiamMine(MiningContext(graph, 1)).mine(2)
    key = StoreKey.make("fp", "path", {"length": 2})
    return IndexEntry(key=key, patterns=list(paths))


class TestSnapshotStoreView:
    def test_reads_fall_through_to_base(self):
        base = MemoryPatternStore()
        stored = entry()
        base.put(stored)
        view = base.snapshot_view()
        assert view.get(stored.key) is stored
        assert view.keys() == [stored.key]
        assert len(view) == 1

    def test_put_shadows_without_touching_base(self):
        base = MemoryPatternStore()
        original = entry(patterns=["p1"])
        base.put(original)
        view = base.snapshot_view()
        replacement = IndexEntry(key=original.key, patterns=["p1", "p2"])
        view.put(replacement)
        assert view.get(original.key) is replacement
        assert base.get(original.key) is original
        assert view.overlay_size == 1

    def test_delete_is_a_tombstone(self):
        base = MemoryPatternStore()
        stored = entry()
        base.put(stored)
        view = base.snapshot_view()
        assert view.delete(stored.key) is True
        assert view.get(stored.key) is None
        assert stored.key not in view
        assert view.keys() == []
        # The base still serves the entry to everyone else.
        assert base.get(stored.key) is stored
        # Deleting an absent key reports absence but still tombstones it.
        missing = StoreKey.make("fp", "skinny", {"length": 9})
        assert view.delete(missing) is False

    def test_overlay_only_keys_appear(self):
        base = MemoryPatternStore()
        view = base.snapshot_view()
        fresh = entry(constraint="skinny", parameter={"length": 4})
        view.put(fresh)
        assert view.keys() == [fresh.key]
        assert base.keys() == []

    def test_views_nest(self):
        base = MemoryPatternStore()
        stored = entry()
        base.put(stored)
        first = base.snapshot_view()
        second = first.snapshot_view()
        assert second.base is first
        second.delete(stored.key)
        assert second.get(stored.key) is None
        assert first.get(stored.key) is stored
        assert base.get(stored.key) is stored

    def test_sibling_views_are_independent(self):
        base = MemoryPatternStore()
        stored = entry()
        base.put(stored)
        gen1 = base.snapshot_view()
        gen2 = base.snapshot_view()
        gen2.put(IndexEntry(key=stored.key, patterns=["p1", "p2", "p3"]))
        assert len(gen1.get(stored.key).patterns) == 1
        assert len(gen2.get(stored.key).patterns) == 3

    def test_view_over_disk_store(self, tmp_path):
        base = DiskPatternStore(tmp_path / "index")
        stored = codec_safe_entry()
        base.put(stored)
        view = base.snapshot_view()
        assert isinstance(view, SnapshotStoreView)
        view.delete(stored.key)
        assert view.get(stored.key) is None
        # No disk mutation happened: a fresh store over the same root
        # still reads the entry.
        reread = DiskPatternStore(tmp_path / "index").get(stored.key)
        assert reread is not None
        assert reread.patterns == stored.patterns

    def test_view_over_sqlite_store(self, tmp_path):
        from repro.index.sqlite_store import SqlitePatternStore

        base = SqlitePatternStore(tmp_path / "index")
        stored = codec_safe_entry()
        base.put(stored)
        view = base.snapshot_view()
        assert isinstance(view, SnapshotStoreView)
        view.delete(stored.key)
        assert view.get(stored.key) is None
        # No database mutation happened: a fresh store over the same root
        # still reads the entry.
        reread = SqlitePatternStore(tmp_path / "index").get(stored.key)
        assert reread is not None
        assert len(reread.patterns) == len(stored.patterns)

    def test_info_reflects_the_view(self):
        base = MemoryPatternStore()
        stored = entry()
        base.put(stored)
        view = base.snapshot_view()
        view.delete(stored.key)
        assert view.info() == []
        assert len(base.info()) == 1


@pytest.mark.parametrize("backend", ["memory", "disk", "sqlite"])
def test_clear_on_view_leaves_base_intact(tmp_path, backend):
    if backend == "memory":
        base = MemoryPatternStore()
    elif backend == "disk":
        base = DiskPatternStore(tmp_path / "index")
    else:
        from repro.index.sqlite_store import SqlitePatternStore

        base = SqlitePatternStore(tmp_path / "index")
    stored = entry() if backend == "memory" else codec_safe_entry()
    base.put(stored)
    view = base.snapshot_view()
    view.clear()
    assert view.keys() == []
    assert base.get(stored.key) is not None
