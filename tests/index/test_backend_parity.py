"""Backend parity: jsonl and sqlite stores answer byte-identically (ISSUE 10).

The SQLite backend changes *where* pattern metadata lives (indexed columns
vs JSONL scan), never *what* a query answers.  This suite runs the
13-scenario corpus from ``tests/core/test_emission_fast_path.py`` through
:class:`MiningEngine` twice — once over a :class:`DiskPatternStore`, once
over a :class:`SqlitePatternStore` — and requires byte-identical ``Result``
serialisations (timings excluded: ``stats`` is wall-clock), identical
warm-store re-serves, and identical corpus-query answers.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.api import MiningEngine, Query
from repro.index import DiskPatternStore, SqlitePatternStore

_scenarios_spec = importlib.util.spec_from_file_location(
    "_emission_fast_path_scenarios",
    Path(__file__).resolve().parents[1] / "core" / "test_emission_fast_path.py",
)
_scenarios = importlib.util.module_from_spec(_scenarios_spec)
_scenarios_spec.loader.exec_module(_scenarios)
SCENARIOS = _scenarios.SCENARIOS
build_scenario = _scenarios.build_scenario

BACKENDS = ("jsonl", "sqlite")


def make_store(backend, root):
    if backend == "sqlite":
        return SqlitePatternStore(root)
    return DiskPatternStore(root)


def scenario_graphs(kind, seed, params):
    graphs = build_scenario(kind, seed, params)
    return graphs if isinstance(graphs, list) else [graphs]


def scenario_query(length, delta, sigma, measure):
    return Query(
        constraint_id="skinny",
        params={"length": length, "delta": delta},
        min_support=sigma,
        support_measure=measure.value,
    )


def result_bytes(result):
    """Canonical byte form of a Result, with wall-clock timings stripped."""
    payload = result.to_dict(include_patterns=True)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


def query_bytes(matches):
    return json.dumps(
        [match.to_dict(include_pattern=True) for match in matches], sort_keys=True
    )


class TestBackendParity:
    @pytest.mark.parametrize("kind, seed, params, length, delta, sigma, measure", SCENARIOS)
    def test_results_byte_identical_across_backends(
        self, tmp_path, kind, seed, params, length, delta, sigma, measure
    ):
        query = scenario_query(length, delta, sigma, measure)
        cold, warm, corpus = {}, {}, {}
        for backend in BACKENDS:
            store = make_store(backend, tmp_path / backend)
            engine = MiningEngine(
                scenario_graphs(kind, seed, params), store=store
            )
            cold[backend] = result_bytes(engine.run(query))
            # A fresh engine over the same store serves Stage 1 warm —
            # the persisted entry must round-trip identically too.
            warm_engine = MiningEngine(
                scenario_graphs(kind, seed, params), store=store
            )
            warm_result = warm_engine.run(query)
            assert warm_result.stats.served_from_store
            warm[backend] = result_bytes(warm_result)
            corpus[backend] = query_bytes(
                store.query(order_by="-support", min_size=1)
            )
        assert cold["jsonl"] == cold["sqlite"]
        assert warm["jsonl"] == warm["sqlite"]
        assert cold["jsonl"] == warm["jsonl"]
        assert corpus["jsonl"] == corpus["sqlite"]
