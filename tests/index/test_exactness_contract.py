"""The Stage-1 exactness contract: repair == rebuild, byte for byte.

Incremental repair counts occurrences exhaustively, and DiamMine's default
:class:`repro.core.diammine.Stage1Mode.EXACT` mode computes the same object —
so for exact-mode store entries a repaired entry and a freshly rebuilt one
must be identical down to the serialised record.  This was the ROADMAP's
"DiamMine pruning vs repair exactness" open item: under the old pruned
default, the repaired entry could (correctly) hold frequent paths a pruned
rebuild missed, and the scenario pinned here is the ROADMAP's own —
``erdos_renyi_graph(30, 2.0, 4, seed=2)`` at l=3 σ=2 after
``remove(1, 16)`` + ``add(27, 1)``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.database import EdgeDelta, MiningContext
from repro.core.diammine import DiamMine, Stage1Mode
from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import dataset_fingerprint
from repro.index.codec import encode_record
from repro.index.incremental import IndexMaintainer
from repro.index.sqlite_store import SqlitePatternStore
from repro.index.store import DiskPatternStore, IndexEntry, MemoryPatternStore, StoreKey

STORE_BACKENDS = ("memory", "jsonl", "sqlite")


def make_store(backend, tmp_path):
    if backend == "memory":
        return MemoryPatternStore()
    if backend == "jsonl":
        return DiskPatternStore(tmp_path / "jsonl")
    return SqlitePatternStore(tmp_path / "sqlite")

LENGTH = 3
MIN_SUPPORT = 2


def scenario_graph():
    return erdos_renyi_graph(30, 2.0, 4, seed=2)


def scenario_delta():
    return [EdgeDelta.remove_edge(1, 16), EdgeDelta.add_edge(27, 1)]


def exact_parameter(measure: str):
    return {
        "length": LENGTH,
        "min_support": MIN_SUPPORT,
        "support_measure": measure,
        "stage1_mode": Stage1Mode.EXACT.value,
    }


def serialised(patterns):
    """Canonical byte form of an entry's patterns (what the disk store writes)."""
    return [
        json.dumps(encode_record(pattern), sort_keys=True) for pattern in patterns
    ]


class TestRepairVsRebuildEquivalence:
    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_roadmap_delta_scenario_matches_exact_rebuild(self, backend, tmp_path):
        # The repair==rebuild pin must hold on every persistent backend:
        # IndexMaintainer round-trips entries through put/get, so a backend
        # that loses information would break exactness here.
        graph = scenario_graph()
        context = MiningContext(graph, MIN_SUPPORT)
        store = make_store(backend, tmp_path)
        key = StoreKey.make(
            dataset_fingerprint([graph]),
            "skinny",
            exact_parameter(context.support_measure.value),
        )
        store.put(
            IndexEntry(key=key, patterns=DiamMine(context).mine(LENGTH))
        )

        graphs = [graph]
        report = IndexMaintainer(store).apply_delta(graphs, scenario_delta())
        assert report.entries_repaired == 1

        repaired_key = StoreKey.make(
            report.new_fingerprint,
            "skinny",
            exact_parameter(context.support_measure.value),
        )
        repaired = store.get(repaired_key).patterns

        rebuilt = DiamMine(MiningContext(graphs[0], MIN_SUPPORT)).mine(LENGTH)
        assert serialised(repaired) == serialised(rebuilt)

    def test_pruned_rebuild_would_diverge(self):
        # The scenario is only a meaningful regression pin if the old pruned
        # default actually disagrees with the exhaustive result on it.
        graph = scenario_graph()
        graphs = [graph]
        for operation in scenario_delta():
            from repro.core.database import apply_edge_delta

            apply_edge_delta(graphs, operation)
        context = MiningContext(graphs[0], MIN_SUPPORT)
        exact = DiamMine(context, mode=Stage1Mode.EXACT).mine(LENGTH)
        pruned = DiamMine(context, mode=Stage1Mode.PRUNED).mine(LENGTH)
        assert {p.labels for p in pruned} < {p.labels for p in exact}

    def test_pruned_entries_are_invalidated_not_repaired(self):
        graph = scenario_graph()
        context = MiningContext(graph, MIN_SUPPORT)
        store = MemoryPatternStore()
        parameter = exact_parameter(context.support_measure.value)
        parameter["stage1_mode"] = Stage1Mode.PRUNED.value
        key = StoreKey.make(dataset_fingerprint([graph]), "skinny", parameter)
        store.put(
            IndexEntry(
                key=key,
                patterns=DiamMine(context, mode=Stage1Mode.PRUNED).mine(LENGTH),
            )
        )
        report = IndexMaintainer(store).apply_delta([graph], scenario_delta())
        assert report.entries_invalidated == 1
        assert report.entries_repaired == 0
        assert store.keys() == []

    def test_legacy_entries_without_mode_are_invalidated(self):
        # Entries that predate the exactness contract were built pruned;
        # repair must not pretend they are exhaustive.
        graph = scenario_graph()
        context = MiningContext(graph, MIN_SUPPORT)
        store = MemoryPatternStore()
        legacy = {
            "length": LENGTH,
            "min_support": MIN_SUPPORT,
            "support_measure": context.support_measure.value,
        }
        key = StoreKey.make(dataset_fingerprint([graph]), "skinny", legacy)
        store.put(IndexEntry(key=key, patterns=[]))
        report = IndexMaintainer(store).apply_delta([graph], scenario_delta())
        assert report.entries_invalidated == 1
        assert store.keys() == []
