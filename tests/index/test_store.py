"""Tests for the persistent pattern-index store (memory and disk backends)."""

from __future__ import annotations

import json

import pytest

from repro.core.database import MiningContext
from repro.core.diammine import DiamMine
from repro.graph.labeled_graph import build_graph
from repro.index.codec import CodecError, decode_record, encode_record
from repro.index.store import (
    FORMAT_VERSION,
    DiskPatternStore,
    IndexEntry,
    MemoryPatternStore,
    StoreFormatError,
    StoreKey,
    decode_parameter,
    encode_parameter,
)


@pytest.fixture
def sample_paths():
    graph = build_graph(
        {0: "a", 1: "b", 2: "c", 3: "b", 4: "a"},
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    return DiamMine(MiningContext(graph, 1)).mine(2)


def make_key(parameter=None):
    return StoreKey.make("f" * 64, "skinny", parameter or {"length": 2, "min_support": 1})


class TestParameterCodec:
    @pytest.mark.parametrize(
        "parameter",
        [
            5,
            "l6",
            (5, 1),
            ("a", (1, 2), None),
            {"length": 6, "min_support": 2, "support_measure": "embeddings"},
            {"nested": (1, ("x", 2))},
        ],
    )
    def test_roundtrip(self, parameter):
        assert decode_parameter(encode_parameter(parameter)) == parameter

    def test_canonical_text_is_order_insensitive_for_dicts(self):
        a = encode_parameter({"x": 1, "y": 2})
        b = encode_parameter({"y": 2, "x": 1})
        assert a == b

    def test_reserved_key_rejected(self):
        with pytest.raises(TypeError):
            encode_parameter({"__tuple__": 1})

    def test_unencodable_parameter_rejected(self):
        with pytest.raises(TypeError):
            encode_parameter(object())


class TestMemoryStore:
    def test_put_get_delete(self, sample_paths):
        store = MemoryPatternStore()
        key = make_key()
        assert store.get(key) is None
        store.put(IndexEntry(key=key, patterns=list(sample_paths), build_seconds=0.5))
        assert key in store
        assert store.get(key).build_seconds == 0.5
        assert len(store) == 1
        assert store.delete(key)
        assert not store.delete(key)
        assert store.get(key) is None

    def test_info(self, sample_paths):
        store = MemoryPatternStore()
        store.put(IndexEntry(key=make_key(), patterns=list(sample_paths)))
        (summary,) = store.info()
        assert summary["num_patterns"] == len(sample_paths)
        assert summary["parameter"] == {"length": 2, "min_support": 1}


class TestDiskStore:
    def test_roundtrip_across_instances(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path / "idx")
        key = make_key()
        store.put(IndexEntry(key=key, patterns=list(sample_paths), build_seconds=1.25))

        reopened = DiskPatternStore(tmp_path / "idx")
        entry = reopened.get(key)
        assert entry is not None
        assert entry.build_seconds == 1.25
        assert [p.labels for p in entry.patterns] == [p.labels for p in sample_paths]
        assert [p.embeddings for p in entry.patterns] == [
            p.embeddings for p in sample_paths
        ]
        assert [p.support for p in entry.patterns] == [p.support for p in sample_paths]
        assert reopened.keys() == [key]

    def test_header_is_versioned(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path)
        store.put(IndexEntry(key=make_key(), patterns=list(sample_paths)))
        (path,) = list((tmp_path).glob("*/*/*.jsonl"))
        header = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert header["format"] == "repro-pattern-index"
        assert header["version"] == FORMAT_VERSION
        assert header["num_patterns"] == len(sample_paths)

    def test_no_temp_files_left_behind(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path)
        for _ in range(3):
            store.put(IndexEntry(key=make_key(), patterns=list(sample_paths)))
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_unsupported_version_rejected(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path)
        key = make_key()
        store.put(IndexEntry(key=key, patterns=list(sample_paths)))
        (path,) = list(tmp_path.glob("*/*/*.jsonl"))
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["version"] = FORMAT_VERSION + 10
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n", encoding="utf-8")
        with pytest.raises(StoreFormatError):
            DiskPatternStore(tmp_path).get(key)

    def test_truncated_entry_rejected(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path)
        key = make_key()
        store.put(IndexEntry(key=key, patterns=list(sample_paths)))
        (path,) = list(tmp_path.glob("*/*/*.jsonl"))
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(StoreFormatError):
            DiskPatternStore(tmp_path).get(key)

    def test_corrupt_header_rejected(self, tmp_path):
        store = DiskPatternStore(tmp_path)
        bad = tmp_path / ("a" * 64) / "skinny" / "deadbeef.jsonl"
        bad.parent.mkdir(parents=True)
        bad.write_text("not json\n", encoding="utf-8")
        with pytest.raises(StoreFormatError):
            store.keys()

    def test_delete_removes_file(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path)
        key = make_key()
        store.put(IndexEntry(key=key, patterns=list(sample_paths)))
        assert store.delete(key)
        assert list(tmp_path.glob("*/*/*.jsonl")) == []
        assert DiskPatternStore(tmp_path).get(key) is None

    def test_empty_fingerprint_entries_are_enumerable(self, tmp_path, sample_paths):
        # MinimalPatternIndex defaults to fingerprint=""; the disk layout must
        # still occupy one directory level so keys()/info() find the entry.
        store = DiskPatternStore(tmp_path)
        key = StoreKey.make("", "generic", (5, 1))
        store.put(IndexEntry(key=key, patterns=list(sample_paths)))
        reopened = DiskPatternStore(tmp_path)
        assert reopened.keys() == [key]
        assert reopened.get(key) is not None
        assert len(reopened.info()) == 1

    def test_info_reports_sizes(self, tmp_path, sample_paths):
        store = DiskPatternStore(tmp_path)
        store.put(IndexEntry(key=make_key(), patterns=list(sample_paths)))
        (summary,) = store.info()
        assert summary["size_bytes"] > 0
        assert summary["num_patterns"] == len(sample_paths)


class TestCodec:
    def test_graph_record_roundtrip(self, figure3_graph):
        record = encode_record(figure3_graph)
        back = decode_record(record)
        assert back.vertex_labels() == figure3_graph.vertex_labels()
        assert {e.endpoints() for e in back.edges()} == {
            e.endpoints() for e in figure3_graph.edges()
        }

    def test_skinny_pattern_roundtrip(self):
        from repro.core.skinnymine import SkinnyMine
        from repro.graph.labeled_graph import build_graph

        graph = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "d", 4: "x", 10: "a", 11: "b", 12: "c", 13: "d", 14: "x"},
            [(0, 1), (1, 2), (2, 3), (1, 4), (10, 11), (11, 12), (12, 13), (11, 14)],
        )
        patterns = SkinnyMine(graph, min_support=2).mine(3, 1)
        assert patterns
        for pattern in patterns:
            back = decode_record(encode_record(pattern))
            assert back.support == pattern.support
            assert back.diameter == pattern.diameter
            assert back.canonical_form() == pattern.canonical_form()
            assert sorted(e.mapping for e in back.embeddings) == sorted(
                e.mapping for e in pattern.embeddings
            )

    def test_unknown_record_type_rejected(self):
        with pytest.raises(CodecError):
            decode_record({"type": "mystery"})

    def test_unencodable_object_rejected(self):
        with pytest.raises(CodecError):
            encode_record(42)
