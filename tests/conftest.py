"""Shared fixtures: small graphs used across the test-suite.

The ``figure3_graph`` fixture reproduces the example graph of Figure 3 in the
paper: a 6-long 2-skinny graph whose canonical diameter is the path
``v1..v7`` (labels a, b, c, d, e, f, g here), with twigs hanging off the
backbone at levels 1 and 2.
"""

from __future__ import annotations

import os

import pytest

from repro.graph.labeled_graph import LabeledGraph, build_graph

try:
    from hypothesis import settings as _hypothesis_settings

    # The property suite runs fully randomized by default: the miner
    # completeness gaps that once forced derandomization (the seed-85
    # 4-cycle and friends — see docs/CORRECTNESS.md) are closed and pinned
    # by tests/core/test_completeness_matrix.py.  CI sets
    # REPRO_HYPOTHESIS_DERANDOMIZE=1 purely as a stability flag, so a gate
    # run never flakes on an as-yet-unseen draw; local runs keep exploring
    # fresh seeds.
    _hypothesis_settings.register_profile("repro-ci", derandomize=True)
    _hypothesis_settings.register_profile("repro-random", derandomize=False)
    if os.environ.get("REPRO_HYPOTHESIS_DERANDOMIZE"):
        _hypothesis_settings.load_profile("repro-ci")
    else:
        _hypothesis_settings.load_profile("repro-random")
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    pass


@pytest.fixture
def triangle_graph() -> LabeledGraph:
    """A labeled triangle a-b-c."""
    return build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph() -> LabeledGraph:
    """A 5-vertex labeled path a-b-c-b-a."""
    return build_graph(
        {0: "a", 1: "b", 2: "c", 3: "b", 4: "a"},
        [(0, 1), (1, 2), (2, 3), (3, 4)],
    )


@pytest.fixture
def figure3_graph() -> LabeledGraph:
    """A 6-long 2-skinny graph in the spirit of the paper's Figure 3.

    Backbone: 1-2-3-4-5-6-7 (labels a..g).  Twigs: vertex 8 (level 1) off
    vertex 3, vertex 9 (level 2) off vertex 8, vertex 10 (level 1) off
    vertex 5, vertex 11 (level 1) off vertex 6.
    """
    return build_graph(
        {
            1: "a",
            2: "b",
            3: "c",
            4: "d",
            5: "e",
            6: "f",
            7: "g",
            8: "h",
            9: "i",
            10: "j",
            11: "k",
        },
        [
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (3, 8),
            (8, 9),
            (5, 10),
            (6, 11),
        ],
    )


@pytest.fixture
def two_triangles_graph() -> LabeledGraph:
    """Two disjoint labeled triangles (used for component / embedding tests)."""
    return build_graph(
        {0: "a", 1: "b", 2: "c", 3: "a", 4: "b", 5: "c"},
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
    )
