"""MiningEngine.fork() and stage_one_key(): the serving tier's engine hooks."""

import pytest

from repro.api import MiningEngine, Query
from repro.api.errors import UnknownConstraintError
from repro.graph.labeled_graph import graph_from_paths
from repro.index.store import SnapshotStoreView
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def engine():
    graphs = graph_from_paths([list("abcde"), list("abcde"), list("abcde")])
    return MiningEngine(graphs, max_paths_per_length=500, metrics=MetricsRegistry())


QUERY = Query("skinny", {"length": 3, "delta": 1}, min_support=2)


class TestStageOneKey:
    def test_matches_private_key_and_store_contents(self, engine):
        key = engine.stage_one_key(QUERY)
        assert key.fingerprint == engine.fingerprint
        assert key.constraint_id == "skinny"
        assert key not in engine.store
        engine.run(QUERY)
        assert key in engine.store

    def test_unknown_constraint_raises_typed_error(self, engine):
        with pytest.raises(UnknownConstraintError):
            engine.stage_one_key(Query("nope", {}, min_support=2))


class TestFork:
    def test_fork_shares_data_and_caps_but_not_caches(self, engine):
        fork = engine.fork(metrics=MetricsRegistry())
        assert type(fork) is MiningEngine
        assert fork.graphs is engine.graphs or fork.graphs == engine.graphs
        assert fork.fingerprint == engine.fingerprint
        assert fork.stage1_mode == engine.stage1_mode
        assert fork.store is engine.store
        assert fork.metrics is not engine.metrics
        assert fork._descriptor_cache is engine._descriptor_cache
        assert fork.stats_log is not engine.stats_log

    def test_fork_answers_identically(self, engine):
        expected = engine.run(QUERY)
        fork = engine.fork(metrics=MetricsRegistry())
        result = fork.run(QUERY)
        assert [p.canonical_form() for p in result.patterns] == [
            p.canonical_form() for p in expected.patterns
        ]
        assert [p.support for p in result.patterns] == [
            p.support for p in expected.patterns
        ]
        # The first engine populated the shared store, so the fork's Stage 1
        # was warm.
        assert result.stats.served_from_store is True

    def test_fork_onto_snapshot_view_isolates_writes(self, engine):
        view = engine.store.snapshot_view()
        fork = engine.fork(store=view, metrics=MetricsRegistry())
        assert isinstance(fork.store, SnapshotStoreView)
        fork.run(QUERY)
        key = engine.stage_one_key(QUERY)
        # The fork persisted its Stage-1 entry into the view's overlay only.
        assert key in fork.store
        assert key not in engine.store

    def test_fork_metrics_stay_private(self, engine):
        fork = engine.fork(metrics=MetricsRegistry())
        fork.run(QUERY)
        fork_counters = {row["name"] for row in fork.metrics.snapshot()["counters"]}
        assert "repro_queries_total" in fork_counters
        engine_counters = {row["name"] for row in engine.metrics.snapshot()["counters"]}
        assert "repro_queries_total" not in engine_counters
