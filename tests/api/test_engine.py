"""End-to-end tests for the MiningEngine facade: one code path, any constraint."""

from __future__ import annotations

import pytest

from repro.api import MiningEngine, ParamSpec, Query, register_constraint, unregister_constraint
from repro.core.database import EdgeDelta
from repro.core.framework import bounded_diameter_constraint, path_shape_constraint
from repro.core.skinnymine import SkinnyMine
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern
from repro.graph.labeled_graph import build_graph
from repro.index.store import DiskPatternStore
from repro.service.mining import MineRequest, MiningService


@pytest.fixture(scope="module")
def data_graph():
    background = erdos_renyi_graph(120, 1.4, 25, seed=41)
    pattern = random_skinny_pattern(5, 1, 8, 25, seed=43)
    inject_pattern(background, pattern, copies=3, seed=47)
    return background


def chains_graph():
    return build_graph(
        {
            0: "a", 1: "b", 2: "c", 3: "d",
            10: "a", 11: "b", 12: "c", 13: "d",
            20: "x", 21: "y",
        },
        [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (12, 13), (20, 21), (3, 20)],
    )


SKINNY = Query("skinny", {"length": 5, "delta": 1}, min_support=2)


class TestSkinnyThroughEngine:
    def test_matches_skinnymine(self, data_graph):
        engine = MiningEngine(data_graph)
        result = engine.run(SKINNY)
        reference = SkinnyMine(data_graph, min_support=2).mine(5, 1)
        assert {p.canonical_form() for p in result.patterns} == {
            p.canonical_form() for p in reference
        }
        assert not result.stats.served_from_store

    def test_matches_service_with_legacy_request(self, data_graph):
        engine = MiningEngine(data_graph)
        service = MiningService(data_graph)
        via_query = engine.run(SKINNY)
        via_request = service.mine(MineRequest(length=5, delta=1, min_support=2))
        assert {p.canonical_form() for p in via_query.patterns} == {
            p.canonical_form() for p in via_request.patterns
        }

    def test_result_cache(self, data_graph):
        engine = MiningEngine(data_graph)
        engine.run(SKINNY)
        second = engine.run(SKINNY)
        assert second.stats.result_cache_hit
        assert len(engine.stats_log) == 2


class TestNonSkinnyConstraints:
    def test_path_constraint_end_to_end(self):
        engine = MiningEngine(chains_graph())
        result = engine.run(Query("path", {"length": 3}, min_support=2))
        assert result.patterns
        predicate = path_shape_constraint(3)
        for pattern in result.patterns:
            assert predicate(pattern.graph)
            assert pattern.support >= 2

    def test_diam_constraint_end_to_end(self):
        engine = MiningEngine(chains_graph())
        result = engine.run(Query("diam-le", {"k": 2}, min_support=2))
        assert result.patterns
        predicate = bounded_diameter_constraint(2)
        for pattern in result.patterns:
            assert predicate(pattern.graph)
            assert pattern.support >= 2
        # Growth reached beyond the single-edge minimal patterns.
        assert any(p.num_edges >= 2 for p in result.patterns)
        # Overlapping clusters were deduplicated.
        forms = [p.canonical_form() for p in result.patterns]
        assert len(forms) == len(set(forms))

    def test_served_through_service_batch(self):
        service = MiningService(chains_graph())
        responses = service.serve_batch(
            [
                Query("path", {"length": 3}, min_support=2),
                MineRequest(length=3, delta=1, min_support=2),
                Query("diam-le", {"k": 2}, min_support=2),
            ]
        )
        assert len(responses) == 3
        assert all(response.patterns for response in responses)
        assert responses[1].request == MineRequest(length=3, delta=1, min_support=2)
        assert responses[2].query.constraint_id == "diam-le"


class TestStoreIntegration:
    def test_constraints_coexist_in_one_disk_store(self, tmp_path):
        store_root = tmp_path / "idx"
        graph = chains_graph()
        engine = MiningEngine(graph, store=DiskPatternStore(store_root))
        queries = [
            Query("skinny", {"length": 3, "delta": 1}, min_support=2),
            Query("path", {"length": 3}, min_support=2),
            Query("diam-le", {"k": 2}, min_support=2),
        ]
        cold = [engine.run(query) for query in queries]
        assert all(not result.stats.served_from_store for result in cold)
        constraint_ids = {key.constraint_id for key in engine.store.keys()}
        assert constraint_ids == {"skinny", "path", "diam-le"}

        # A fresh engine over the same directory serves every constraint warm.
        warm_engine = MiningEngine(graph, store=DiskPatternStore(store_root))
        for query, cold_result in zip(queries, cold):
            warm = warm_engine.run(query)
            assert warm.stats.served_from_store
            assert {p.canonical_form() for p in warm.patterns} == {
                p.canonical_form() for p in cold_result.patterns
            }

    def test_apply_delta_repairs_path_indexed_and_invalidates_others(self, tmp_path):
        graph = chains_graph()
        engine = MiningEngine(graph, store=DiskPatternStore(tmp_path / "idx"))
        engine.run(Query("skinny", {"length": 3, "delta": 1}, min_support=2))
        engine.run(Query("path", {"length": 3}, min_support=2))
        engine.run(Query("diam-le", {"k": 2}, min_support=2))

        report = engine.apply_delta([EdgeDelta.remove_edge(20, 21)])
        assert report.entries_repaired + report.entries_migrated == 2
        assert report.entries_invalidated == 1  # the diam-le entry
        remaining = {key.constraint_id for key in engine.store.keys()}
        assert "diam-le" not in remaining
        assert {"skinny", "path"} <= remaining
        # Both repaired entries serve the new fingerprint from the store.
        for query in (
            Query("skinny", {"length": 3, "delta": 1}, min_support=2),
            Query("path", {"length": 3}, min_support=2),
        ):
            assert engine.run(query).stats.served_from_store
        # The invalidated constraint recomputes and still answers correctly.
        result = engine.run(Query("diam-le", {"k": 2}, min_support=2))
        assert not result.stats.served_from_store
        assert all(
            bounded_diameter_constraint(2)(p.graph) for p in result.patterns
        )

    def test_apply_delta_repairs_identically_on_sqlite(self, tmp_path):
        # Incremental repair must behave the same over the relational
        # backend — same repaired/invalidated counts, warm serves after.
        from repro.index.sqlite_store import SqlitePatternStore

        graph = chains_graph()
        engine = MiningEngine(graph, store=SqlitePatternStore(tmp_path / "idx"))
        engine.run(Query("skinny", {"length": 3, "delta": 1}, min_support=2))
        engine.run(Query("path", {"length": 3}, min_support=2))
        engine.run(Query("diam-le", {"k": 2}, min_support=2))

        report = engine.apply_delta([EdgeDelta.remove_edge(20, 21)])
        assert report.entries_repaired + report.entries_migrated == 2
        assert report.entries_invalidated == 1
        remaining = {key.constraint_id for key in engine.store.keys()}
        assert "diam-le" not in remaining
        assert {"skinny", "path"} <= remaining
        for query in (
            Query("skinny", {"length": 3, "delta": 1}, min_support=2),
            Query("path", {"length": 3}, min_support=2),
        ):
            assert engine.run(query).stats.served_from_store

    def test_query_corpus_defaults_to_engine_fingerprint(self, tmp_path):
        from repro.index import IndexEntry, StoreKey
        from repro.index.sqlite_store import SqlitePatternStore

        graph = chains_graph()
        store = SqlitePatternStore(tmp_path / "idx")
        engine = MiningEngine(graph, store=store)
        engine.run(Query("path", {"length": 3}, min_support=2))
        # Plant an entry under a foreign fingerprint: the default corpus
        # view must not include it, fingerprint=None must.
        foreign = engine.store.get(engine.store.keys()[0])
        store.put(
            IndexEntry(
                key=StoreKey("other-data", "path", foreign.key.parameter),
                patterns=list(foreign.patterns),
            )
        )
        own = engine.query_corpus(order_by="-support")
        assert own and all(m.key.fingerprint == engine.fingerprint for m in own)
        everything = engine.query_corpus(fingerprint=None)
        assert {m.key.fingerprint for m in everything} == {
            engine.fingerprint,
            "other-data",
        }
        # The abcd chain appears twice; its labels must be queryable.
        chained = engine.query_corpus(labels_contain=["a", "d"], min_support=2)
        assert chained and all({"a", "d"} <= set(m.labels) for m in chained)

    def test_capped_stage_one_not_served_to_uncapped_engine(self, tmp_path):
        graph = chains_graph()
        store_root = tmp_path / "idx"
        capped = MiningEngine(
            graph, store=DiskPatternStore(store_root), max_paths_per_length=1
        )
        capped.run(Query("path", {"length": 3}, min_support=2))
        uncapped = MiningEngine(graph, store=DiskPatternStore(store_root))
        result = uncapped.run(Query("path", {"length": 3}, min_support=2))
        assert not result.stats.served_from_store


class TestPrecomputeQueries:
    def test_serial_and_parallel_agree_across_constraints(self):
        graph = chains_graph()
        queries = [
            Query("skinny", {"length": 3, "delta": 0}, min_support=2),
            Query("path", {"length": 3}, min_support=2),
            Query("path", {"length": 2}, min_support=2),
            Query("diam-le", {"k": 2}, min_support=2),
        ]
        serial = MiningEngine(graph).precompute_queries(queries)
        parallel = MiningEngine(graph).precompute_queries(queries, processes=2)
        assert [s["num_patterns"] for s in serial] == [
            s["num_patterns"] for s in parallel
        ]
        assert all(not s["served_from_store"] for s in parallel)

    def test_duplicate_stage_one_keys_mined_once(self):
        engine = MiningEngine(chains_graph())
        queries = [
            # Same Stage-1 key (δ does not participate), two queries.
            Query("skinny", {"length": 3, "delta": 0}, min_support=2),
            Query("skinny", {"length": 3, "delta": 2}, min_support=2),
        ]
        summaries = engine.precompute_queries(queries, processes=2)
        assert len(engine.store.keys()) == 1
        assert summaries[0]["num_patterns"] == summaries[1]["num_patterns"]

    def test_warm_entries_not_recomputed(self, tmp_path):
        graph = chains_graph()
        store = DiskPatternStore(tmp_path)
        query = Query("path", {"length": 3}, min_support=2)
        MiningEngine(graph, store=store).precompute_queries([query])
        created = store.get(store.keys()[0]).created_at
        (summary,) = MiningEngine(
            graph, store=DiskPatternStore(tmp_path)
        ).precompute_queries([query], processes=2)
        assert summary["served_from_store"]
        assert store.get(store.keys()[0]).created_at == created


class TestCustomConstraintThroughEngine:
    def test_registered_constraint_serves_end_to_end(self):
        """register_constraint(id, driver_factory) is all a new constraint needs."""
        from repro.core.framework import BoundedDiameterDriver

        try:
            register_constraint(
                "diam-loose",
                lambda params, caps, include_minimal: BoundedDiameterDriver(
                    max_edges=3, include_minimal=include_minimal
                ),
                params=(ParamSpec("k", int, required=True, minimum=1),),
                description="diam-le with a tighter growth cap",
                deduplicate=True,
            )
            engine = MiningEngine(chains_graph())
            result = engine.run(Query("diam-loose", {"k": 2}, min_support=2))
            assert result.patterns
            assert all(p.num_edges <= 3 for p in result.patterns)
        finally:
            unregister_constraint("diam-loose")
