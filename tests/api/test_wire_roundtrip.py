"""Wire-format exactness: Result/QueryStats serialisation is lossless.

The serving tier ships :class:`Result` objects over TCP, including error
results (``stats`` may be ``None``) and cache-hit results (``stats`` with
``None`` optional fields).  These properties pin the contract the server
relies on: ``from_dict(to_dict())`` reproduces the object exactly, and
``to_dict(from_dict(payload))`` reproduces the payload exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import Query, QueryStats, Result, ResultError, error_code
from repro.api.errors import (
    MalformedQueryError,
    MissingParameterError,
    ParameterTypeError,
    QueryError,
    UnknownConstraintError,
)

# A pool of well-formed queries whose cache keys seed the stats' request
# envelope (QueryStats.request_key must be a canonical Query encoding).
QUERIES = [
    Query("skinny", {"length": 4, "delta": 1}, min_support=2),
    Query("skinny", {"length": 5, "delta": 0}, min_support=3, top_k=7),
    Query("path", {"length": 3}, min_support=2, support_measure="transactions"),
    Query("diam-le", {"k": 2}, min_support=2, include_minimal=False),
]

finite_seconds = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

level_statistics = st.none() | st.dictionaries(
    st.sampled_from(
        [
            "candidates_generated",
            "canonical_incremental_hits",
            "invariant_cache_hits",
            "probes_batched",
            "canonical_seconds",
        ]
    ),
    st.integers(min_value=0, max_value=10**6) | finite_seconds,
    max_size=5,
)

traces = st.none() | st.fixed_dictionaries(
    {
        "name": st.just("query"),
        "span_id": st.just("s1"),
        "parent_id": st.none(),
        "start_seconds": finite_seconds,
        "seconds": finite_seconds,
        "attrs": st.dictionaries(st.sampled_from(["constraint", "hit"]), st.booleans()),
        "children": st.just([]),
    }
)


@st.composite
def query_stats(draw) -> QueryStats:
    return QueryStats(
        request_key=draw(st.sampled_from(QUERIES)).cache_key(),
        stage_one_seconds=draw(finite_seconds),
        stage_two_seconds=draw(finite_seconds),
        total_seconds=draw(finite_seconds),
        overhead_seconds=draw(finite_seconds),
        served_from_store=draw(st.booleans()),
        result_cache_hit=draw(st.booleans()),
        num_minimal_patterns=draw(st.integers(min_value=0, max_value=10**6)),
        num_patterns=draw(st.integers(min_value=0, max_value=10**6)),
        level_statistics=draw(level_statistics),
        trace=draw(traces),
        budget_ms=draw(st.none() | st.integers(min_value=0, max_value=10**7)),
        queue_seconds=draw(finite_seconds),
        snapshot_generation=draw(st.none() | st.integers(min_value=0, max_value=10**6)),
    )


result_errors = st.builds(
    ResultError,
    code=st.sampled_from(
        ["service_unavailable", "deadline_exceeded", "internal_error", "invalid_query"]
    ),
    message=st.text(max_size=80),
    retriable=st.booleans(),
    partial=st.just(False),
)


@st.composite
def results(draw) -> Result:
    """Pattern-free results as the server ships them: ok, error, or both-ish."""
    stats = draw(st.none() | query_stats())
    error = draw(st.none() | result_errors) if stats is not None else draw(result_errors)
    query = Query.from_dict(json.loads(stats.request_key)) if stats is not None else None
    return Result(query=query, patterns=[], stats=stats, error=error)


class TestQueryStatsRoundTrip:
    @given(stats=query_stats())
    def test_object_round_trip_is_exact(self, stats):
        assert QueryStats.from_dict(stats.to_dict()) == stats

    @given(stats=query_stats())
    def test_json_round_trip_is_exact(self, stats):
        # The wire actually serialises: through json and back, still exact.
        payload = json.loads(json.dumps(stats.to_dict()))
        assert QueryStats.from_dict(payload) == stats

    def test_cache_hit_stats_none_fields_survive(self):
        stats = QueryStats(
            request_key=QUERIES[0].cache_key(),
            total_seconds=0.001,
            overhead_seconds=0.001,
            result_cache_hit=True,
            num_patterns=3,
            level_statistics=None,
            trace=None,
            budget_ms=None,
            snapshot_generation=None,
        )
        rebuilt = QueryStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats
        assert rebuilt.level_statistics is None
        assert rebuilt.budget_ms is None
        assert rebuilt.snapshot_generation is None


class TestResultRoundTrip:
    @given(result=results())
    def test_object_round_trip_is_exact(self, result):
        assert Result.from_dict(result.to_dict()) == result

    @given(result=results())
    def test_payload_round_trip_is_exact(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert Result.from_dict(payload).to_dict() == payload

    def test_error_result_without_stats(self):
        result = Result.failed(
            ResultError("service_unavailable", "queue full", retriable=True)
        )
        payload = result.to_dict()
        assert payload["stats"] is None
        assert payload["error"]["retriable"] is True
        assert payload["error"]["partial"] is False
        assert Result.from_dict(payload) == result

    def test_ok_result_payload_has_no_error_key(self):
        stats = QueryStats(request_key=QUERIES[0].cache_key(), num_patterns=1)
        result = Result(query=QUERIES[0], patterns=[], stats=stats)
        assert "error" not in result.to_dict()
        assert Result.from_dict(result.to_dict()) == result

    def test_malformed_payloads_raise_typed_errors(self):
        with pytest.raises(MalformedQueryError):
            Result.from_dict({"num_patterns": 0})
        with pytest.raises(MalformedQueryError):
            ResultError.from_dict({"message": "code missing"})


class TestErrorCodes:
    def test_codes_are_most_derived_first(self):
        assert error_code(MissingParameterError("skinny", "length missing")) == (
            "missing_parameter"
        )
        assert error_code(ParameterTypeError("skinny", "bad type")) == "parameter_type"
        assert error_code(UnknownConstraintError("nope")) == "unknown_constraint"
        assert error_code(MalformedQueryError("not a query")) == "malformed_query"
        assert error_code(QueryError("generic")) == "invalid_query"
        assert error_code(RuntimeError("boom")) == "internal_error"
