"""Tests for the Query/Result wire format and its typed validation errors."""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    MalformedQueryError,
    MissingParameterError,
    ParameterError,
    ParameterTypeError,
    ParameterValueError,
    Query,
    QueryError,
    UnexpectedParameterError,
    UnknownConstraintError,
    query_from_payload,
)


class TestQueryValidation:
    def test_valid_query_normalises_params(self):
        query = Query("diam-le", {"k": 2}, min_support=2)
        assert query.params == {"k": 2, "max_edges": 6}  # default filled in
        assert query.support_measure == "embeddings"

    def test_unknown_constraint(self):
        with pytest.raises(UnknownConstraintError) as excinfo:
            Query("no-such-constraint", {})
        assert "no-such-constraint" in str(excinfo.value)
        assert "skinny" in str(excinfo.value)  # names the registered ids

    def test_missing_parameter(self):
        with pytest.raises(MissingParameterError) as excinfo:
            Query("skinny", {"length": 3})
        assert excinfo.value.parameter == "delta"

    def test_unexpected_parameter(self):
        with pytest.raises(UnexpectedParameterError) as excinfo:
            Query("path", {"length": 3, "delta": 1})
        assert excinfo.value.parameter == "delta"

    def test_wrong_parameter_type(self):
        with pytest.raises(ParameterTypeError):
            Query("skinny", {"length": "3", "delta": 1})
        with pytest.raises(ParameterTypeError):
            Query("skinny", {"length": True, "delta": 1})  # bool is not a length

    def test_out_of_range_parameter(self):
        with pytest.raises(ParameterValueError):
            Query("skinny", {"length": 0, "delta": 1})
        with pytest.raises(ParameterValueError):
            Query("skinny", {"length": 3, "delta": -1})

    def test_envelope_validation(self):
        with pytest.raises(QueryError):
            Query("skinny", {"length": 3, "delta": 1}, min_support=0)
        with pytest.raises(QueryError):
            Query("skinny", {"length": 3, "delta": 1}, top_k=0)
        with pytest.raises(QueryError):
            Query("skinny", {"length": 3, "delta": 1}, support_measure="bogus")

    def test_all_errors_are_value_errors(self):
        # The CLI and legacy callers catch ValueError; the typed hierarchy
        # must stay inside it.
        for exc in (
            QueryError,
            MalformedQueryError,
            UnknownConstraintError,
            ParameterError,
            MissingParameterError,
            UnexpectedParameterError,
            ParameterTypeError,
            ParameterValueError,
        ):
            assert issubclass(exc, ValueError)

    def test_query_is_hashable_and_immutable(self):
        # MineRequest was a hashable frozen value object; Query must be too.
        a = Query("skinny", {"length": 5, "delta": 1}, min_support=2)
        b = Query("skinny", {"delta": 1, "length": 5}, min_support=2)
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"
        with pytest.raises(TypeError):
            a.params["length"] = 99  # read-only view over validated params

    def test_nullable_parameter_accepts_null(self):
        query = Query("diam-le", {"k": 2, "max_edges": None}, min_support=2)
        assert query.params["max_edges"] is None  # cap disabled
        round_tripped = Query.from_dict(query.to_dict())
        assert round_tripped == query
        with pytest.raises(ParameterTypeError):
            Query("diam-le", {"k": None})  # k is not nullable

    def test_cache_key_is_canonical(self):
        a = Query("skinny", {"length": 5, "delta": 1}, min_support=2)
        b = Query("skinny", {"delta": 1, "length": 5}, min_support=2)
        assert a == b
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != Query(
            "skinny", {"length": 5, "delta": 2}, min_support=2
        ).cache_key()
        # Different constraints never share a cache entry.
        assert (
            Query("path", {"length": 5}, min_support=2).cache_key()
            != Query("skinny", {"length": 5, "delta": 0}, min_support=2).cache_key()
        )


class TestQuerySerialization:
    def test_round_trip(self):
        query = Query(
            "diam-le", {"k": 3, "max_edges": 4}, min_support=2, top_k=7,
            support_measure="transactions", include_minimal=False,
        )
        assert Query.from_dict(query.to_dict()) == query

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(MalformedQueryError):
            Query.from_dict(["not", "an", "object"])

    def test_from_dict_requires_constraint_field(self):
        with pytest.raises(MalformedQueryError) as excinfo:
            Query.from_dict({"params": {"length": 3}})
        assert "constraint" in str(excinfo.value)

    def test_from_dict_rejects_stray_fields(self):
        with pytest.raises(MalformedQueryError) as excinfo:
            Query.from_dict({"constraint": "skinny", "length": 3, "delta": 1})
        assert "params" in str(excinfo.value)

    def test_from_dict_rejects_wrong_min_support_type(self):
        with pytest.raises(MalformedQueryError):
            Query.from_dict(
                {"constraint": "path", "params": {"length": 3}, "min_support": "2"}
            )

    def test_from_dict_accepts_sigma_alias(self):
        query = Query.from_dict(
            {"constraint": "path", "params": {"length": 3}, "sigma": 4}
        )
        assert query.min_support == 4


class TestQueryFromPayload:
    def test_new_format_passes_through(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # must not warn
            query = query_from_payload(
                {"constraint": "skinny", "params": {"length": 4, "delta": 1}}
            )
        assert query.constraint_id == "skinny"

    def test_legacy_format_converts_with_deprecation(self):
        with pytest.deprecated_call():
            query = query_from_payload({"length": 4, "delta": 1, "min_support": 3})
        assert query == Query("skinny", {"length": 4, "delta": 1}, min_support=3)

    def test_legacy_sigma_alias(self):
        with pytest.deprecated_call():
            query = query_from_payload({"length": 4, "delta": 1, "sigma": 3})
        assert query.min_support == 3

    def test_unrecognisable_payload(self):
        with pytest.raises(MalformedQueryError):
            query_from_payload({"lengths": [4]})
        with pytest.raises(MalformedQueryError):
            query_from_payload("not an object")
