"""Tests for the constraint registry and parameter schemas."""

from __future__ import annotations

import pytest

from repro.api import (
    ConstraintSpec,
    ParamSpec,
    Query,
    available_constraints,
    constraint_specs,
    get_constraint,
    register_constraint,
    unregister_constraint,
)
from repro.api.errors import UnknownConstraintError


class TestBuiltins:
    def test_builtins_registered(self):
        assert {"skinny", "path", "diam-le"} <= set(available_constraints())

    def test_get_unknown_raises_typed_error(self):
        with pytest.raises(UnknownConstraintError):
            get_constraint("nope")

    def test_specs_sorted_and_described(self):
        specs = constraint_specs()
        assert [spec.constraint_id for spec in specs] == sorted(
            spec.constraint_id for spec in specs
        )
        described = get_constraint("skinny").describe()
        assert described["constraint_id"] == "skinny"
        assert [p["name"] for p in described["params"]] == ["length", "delta"]

    def test_skinny_stage_one_parameter_scheme(self):
        # The engine always engages the stage1_mode cap, so the exactness
        # contract is part of every path-indexed key; legacy entries (no
        # stage1_mode — built with heuristic pruning) deliberately go cold.
        spec = get_constraint("skinny")
        parameter = spec.stage_one_parameter(
            {"length": 5, "delta": 1}, 2, "embeddings", {"stage1_mode": "exact"}
        )
        assert parameter == {
            "length": 5,
            "min_support": 2,
            "support_measure": "embeddings",
            "stage1_mode": "exact",
        }

    def test_skinny_stage_one_parameter_keys_engaged_caps(self):
        spec = get_constraint("skinny")
        parameter = spec.stage_one_parameter(
            {"length": 5, "delta": 1}, 2, "embeddings", {"max_paths_per_length": 9}
        )
        assert parameter["max_paths_per_length"] == 9


class TestCustomRegistration:
    def test_register_and_serve_shorthand(self):
        calls = []

        class EchoDriver:
            def mine_minimal(self, context, parameter):
                calls.append(("minimal", parameter))
                return []

            def grow(self, context, minimal, parameter):
                return []

        try:
            spec = register_constraint(
                "echo",
                lambda params, caps, include_minimal: EchoDriver(),
                params=(ParamSpec("n", int, required=True, minimum=1),),
                description="test constraint",
            )
            assert spec.constraint_id == "echo"
            assert "echo" in available_constraints()
            query = Query("echo", {"n": 3})
            assert query.params == {"n": 3}
            # The default driver_parameter unwraps a single declared param.
            assert spec.driver_parameter(query.params) == 3
        finally:
            assert unregister_constraint("echo")
        with pytest.raises(UnknownConstraintError):
            get_constraint("echo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_constraint(
                "skinny", lambda params, caps, include_minimal: None
            )

    def test_replace_allows_override(self):
        original = get_constraint("skinny")
        try:
            replacement = ConstraintSpec(
                constraint_id="skinny",
                description="override",
                params=original.params,
                make_driver=original.make_driver,
                driver_parameter=original.driver_parameter,
                path_indexed=True,
            )
            register_constraint(replacement, replace=True)
            assert get_constraint("skinny").description == "override"
        finally:
            register_constraint(original, replace=True)

    def test_shorthand_requires_driver_factory(self):
        with pytest.raises(ValueError):
            register_constraint("needs-factory")


class TestConcurrentFirstLookup:
    def test_builtin_import_race_never_yields_empty_registry(self):
        """Regression: the lazy builtin import must not publish early.

        The serving tier triggers the first ``get_constraint`` from several
        threads at once (event loop, workers, the apply_delta executor).  If
        the loaded flag were set before the builtin module finished
        importing, a racing thread would look up against a partial registry
        and report ``unknown_constraint`` for a perfectly valid query.
        """
        import sys
        import threading

        from repro.api import registry as registry_module

        saved_registry = dict(registry_module._REGISTRY)
        saved_module = sys.modules.pop("repro.api.builtin_constraints", None)
        registry_module._REGISTRY.clear()
        registry_module._BUILTINS_LOADED = False
        try:
            errors = []
            barrier = threading.Barrier(8)

            def lookup():
                barrier.wait()
                try:
                    get_constraint("skinny")
                except Exception as error:  # noqa: BLE001 - collected below
                    errors.append(error)

            threads = [threading.Thread(target=lookup) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert errors == []
        finally:
            registry_module._REGISTRY.clear()
            registry_module._REGISTRY.update(saved_registry)
            registry_module._BUILTINS_LOADED = True
            if saved_module is not None:
                sys.modules["repro.api.builtin_constraints"] = saved_module
