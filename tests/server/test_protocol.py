"""Wire protocol: request parsing, response framing, delta decoding."""

import json

import pytest

from repro.api.errors import MalformedQueryError
from repro.core.database import EdgeDelta
from repro.server.protocol import (
    encode_response,
    parse_budget_ms,
    parse_delta,
    parse_request,
)


class TestParseRequest:
    def test_defaults_to_query_op(self):
        payload = parse_request(b'{"query": {"constraint": "skinny"}}')
        assert payload.get("op", "query") == "query"

    def test_known_ops_pass_through(self):
        for op in ("query", "apply_delta", "stats", "ping", "shutdown"):
            assert parse_request(json.dumps({"op": op}).encode())["op"] == op

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"\xff\xfe",
            b"[1, 2, 3]",
            b'"just a string"',
            b'{"op": "mine_all_the_things"}',
        ],
    )
    def test_junk_raises_malformed(self, line):
        with pytest.raises(MalformedQueryError):
            parse_request(line)


class TestEncodeResponse:
    def test_one_line_compact_json(self):
        encoded = encode_response({"ok": True, "id": 7})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1
        assert json.loads(encoded) == {"ok": True, "id": 7}
        # Compact separators and sorted keys: deterministic framing.
        assert encoded == b'{"id":7,"ok":true}\n'


class TestParseBudget:
    def test_absent_means_no_limit(self):
        assert parse_budget_ms({}) is None
        assert parse_budget_ms({"budget_ms": None}) is None

    def test_valid_budget(self):
        assert parse_budget_ms({"budget_ms": 250}) == 250

    @pytest.mark.parametrize("bad", [0, -5, 1.5, "250", True])
    def test_invalid_budget_raises(self, bad):
        with pytest.raises(MalformedQueryError):
            parse_budget_ms({"budget_ms": bad})


class TestParseDelta:
    def test_full_operation(self):
        deltas = parse_delta(
            [
                {
                    "op": "add",
                    "u": 1,
                    "v": 2,
                    "graph_index": 3,
                    "label_u": "a",
                    "label_v": "b",
                    "edge_label": "e",
                }
            ]
        )
        assert deltas == [
            EdgeDelta(
                op="add",
                u=1,
                v=2,
                graph_index=3,
                label_u="a",
                label_v="b",
                edge_label="e",
            )
        ]

    def test_defaults(self):
        (delta,) = parse_delta([{"op": "remove", "u": 0, "v": 4}])
        assert delta.graph_index == 0
        assert delta.label_u is None and delta.label_v is None

    @pytest.mark.parametrize(
        "operations",
        [
            "not a list",
            {"op": "add"},
            [["op", "add"]],
            [{"op": "upsert", "u": 0, "v": 1}],
            [{"op": "add", "u": 0}],
            [{"op": "add", "u": "zero", "v": 1}],
        ],
    )
    def test_invalid_delta_raises(self, operations):
        with pytest.raises(MalformedQueryError):
            parse_delta(operations)
