"""SnapshotManager: atomic generation publish, copy-on-write isolation."""

import pytest

from repro.api import MiningEngine, Query
from repro.core.database import EdgeDelta
from repro.graph.labeled_graph import graph_from_paths
from repro.index.store import MemoryPatternStore
from repro.obs.metrics import MetricsRegistry
from repro.server.snapshots import SnapshotManager

QUERY = Query("skinny", {"length": 3, "delta": 1}, min_support=2)


def make_manager():
    graphs = graph_from_paths([list("abcde"), list("abcde"), list("abcde")])
    store = MemoryPatternStore()
    return SnapshotManager(
        graphs,
        store,
        lambda g, s: MiningEngine(g, store=s, metrics=MetricsRegistry()),
    )


class TestGenerationZero:
    def test_initial_snapshot(self):
        manager = make_manager()
        snapshot = manager.current
        assert snapshot.generation == 0
        assert manager.generation == 0
        assert snapshot.engine.store is snapshot.store
        assert snapshot.repair_report is None


class TestApplyDelta:
    def test_publishes_next_generation(self):
        manager = make_manager()
        before = manager.current.fingerprint
        snapshot, report = manager.apply_delta([EdgeDelta.remove_edge(0, 1)])
        assert snapshot.generation == 1
        assert manager.current is snapshot
        assert report.operations == 1
        assert snapshot.repair_report is report
        assert snapshot.fingerprint != before

    def test_old_generation_is_untouched(self):
        manager = make_manager()
        old = manager.current
        old.engine.run(QUERY)  # populate the generation-0 store
        old_keys = set(old.store.keys())
        assert old_keys

        new, _ = manager.apply_delta([EdgeDelta.remove_edge(0, 1)])
        # The old generation's graphs still carry the removed edge; the new
        # generation's copies do not.
        assert old.graphs[0].has_edge(0, 1)
        assert not new.graphs[0].has_edge(0, 1)
        assert old.graphs[0] is not new.graphs[0]
        # The repair wrote only into the new generation's overlay view: the
        # base store still holds exactly the generation-0 entries.
        assert set(old.store.keys()) == old_keys
        assert all(key.fingerprint == old.fingerprint for key in old.store.keys())
        assert new.store.base is old.store
        # The repaired/migrated entries in the view carry the new fingerprint.
        new_keys = set(new.store.keys()) - old_keys
        assert new_keys
        assert all(key.fingerprint == new.fingerprint for key in new_keys)

    def test_old_and_new_generations_answer_consistently(self):
        manager = make_manager()
        old = manager.current
        before = old.engine.run(QUERY)
        new, _ = manager.apply_delta([EdgeDelta.remove_edge(0, 1)])
        after = new.engine.run(QUERY)
        # Generation 0 still answers exactly as before the delta.
        again = old.engine.fork(metrics=MetricsRegistry()).run(QUERY)
        assert {p.canonical_form() for p in again.patterns} == {
            p.canonical_form() for p in before.patterns
        }
        # The delta removed an edge, so generation 1 lost support.
        assert len(after.patterns) <= len(before.patterns)

    def test_failed_delta_publishes_nothing(self):
        manager = make_manager()
        current = manager.current
        with pytest.raises(KeyError):
            manager.apply_delta([EdgeDelta.remove_edge(998, 999)])
        assert manager.current is current
        assert manager.generation == 0


class TestSqliteBackedGenerations:
    """Snapshot generations behave identically over the relational backend."""

    def make_manager(self, tmp_path):
        from repro.index.sqlite_store import SqlitePatternStore

        graphs = graph_from_paths([list("abcde"), list("abcde"), list("abcde")])
        store = SqlitePatternStore(tmp_path / "idx")
        return SnapshotManager(
            graphs,
            store,
            lambda g, s: MiningEngine(g, store=s, metrics=MetricsRegistry()),
        )

    def test_repair_writes_stay_in_the_overlay(self, tmp_path):
        manager = self.make_manager(tmp_path)
        old = manager.current
        old.engine.run(QUERY)
        old_keys = set(old.store.keys())
        assert old_keys

        new, _ = manager.apply_delta([EdgeDelta.remove_edge(0, 1)])
        # The database itself holds only generation-0 entries; the repair
        # landed in the new generation's copy-on-write view.
        assert set(old.store.keys()) == old_keys
        assert new.store.base is old.store
        new_keys = set(new.store.keys()) - old_keys
        assert new_keys
        assert all(key.fingerprint == new.fingerprint for key in new_keys)

    def test_corpus_queries_follow_the_generation(self, tmp_path):
        manager = self.make_manager(tmp_path)
        old = manager.current
        old.engine.run(QUERY)
        new, _ = manager.apply_delta([EdgeDelta.remove_edge(0, 1)])
        old_matches = old.engine.query_corpus(min_support=2)
        new_matches = new.engine.query_corpus(min_support=2)
        assert old_matches
        assert all(m.key.fingerprint == old.fingerprint for m in old_matches)
        assert all(m.key.fingerprint == new.fingerprint for m in new_matches)


class TestFrozenViewAdoption:
    """Frozen CSR views of untouched transactions carry across generations."""

    def make_multigraph_manager(self):
        graphs = [
            graph_from_paths([list("abcde")]),
            graph_from_paths([list("abcde")]),
        ]
        store = MemoryPatternStore()
        return SnapshotManager(
            graphs,
            store,
            lambda g, s: MiningEngine(g, store=s, metrics=MetricsRegistry()),
        )

    def test_untouched_views_survive_apply_delta(self):
        from repro.core.database import SupportMeasure

        manager = self.make_multigraph_manager()
        old_engine = manager.current.engine
        context = old_engine._context(2, SupportMeasure.TRANSACTIONS)
        kept = context.frozen_graph(0)
        dropped = context.frozen_graph(1)
        snapshot, _ = manager.apply_delta(
            [EdgeDelta.remove_edge(0, 1, graph_index=1)]
        )
        new_engine = snapshot.engine
        assert new_engine is not old_engine
        assert new_engine._frozen_views[0] is kept  # adopted, not re-frozen
        assert 1 not in new_engine._frozen_views  # edited: must re-freeze
        assert new_engine._frozen_palette is old_engine._frozen_palette
        refrozen = new_engine._context(
            2, SupportMeasure.TRANSACTIONS
        ).frozen_graph(1)
        assert refrozen is not dropped
        assert not refrozen.has_edge(0, 1)
        # The old generation still answers from its own intact views.
        assert context.frozen_graph(1) is dropped
        assert dropped.has_edge(0, 1)

    def test_adoption_is_refused_once_views_exist(self):
        from repro.core.database import SupportMeasure

        manager = self.make_multigraph_manager()
        old_engine = manager.current.engine
        old_engine._context(2, SupportMeasure.TRANSACTIONS).frozen_graph(0)
        fresh = MiningEngine(
            [graph.copy() for graph in manager.current.graphs],
            metrics=MetricsRegistry(),
        )
        fresh._context(2, SupportMeasure.TRANSACTIONS).frozen_graph(0)
        adopted = fresh.adopt_frozen_views(old_engine, [])
        assert adopted == 0  # pool already populated: palettes must not mix
