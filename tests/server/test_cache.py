"""TTLResultCache: generation keying, TTL expiry, LRU bound, purge."""

import pytest

from repro.server.cache import TTLResultCache


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestBasics:
    def test_miss_then_hit(self, clock):
        cache = TTLResultCache(time_fn=clock)
        assert cache.get(0, "k") is None
        cache.put(0, "k", {"num_patterns": 3})
        assert cache.get(0, "k") == {"num_patterns": 3}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_generations_do_not_alias(self, clock):
        cache = TTLResultCache(time_fn=clock)
        cache.put(0, "k", "old answer")
        # A delta publishes generation 1: the same query key misses.
        assert cache.get(1, "k") is None
        assert cache.get(0, "k") == "old answer"

    def test_put_overwrites(self, clock):
        cache = TTLResultCache(time_fn=clock)
        cache.put(0, "k", "first")
        cache.put(0, "k", "second")
        assert cache.get(0, "k") == "second"
        assert len(cache) == 1


class TestTTL:
    def test_entry_expires(self, clock):
        cache = TTLResultCache(ttl_seconds=10.0, time_fn=clock)
        cache.put(0, "k", "payload")
        clock.advance(9.999)
        assert cache.get(0, "k") == "payload"
        clock.advance(0.001)
        assert cache.get(0, "k") is None
        assert len(cache) == 0

    def test_put_refreshes_ttl(self, clock):
        cache = TTLResultCache(ttl_seconds=10.0, time_fn=clock)
        cache.put(0, "k", "payload")
        clock.advance(8.0)
        cache.put(0, "k", "payload")
        clock.advance(8.0)
        assert cache.get(0, "k") == "payload"


class TestLRU:
    def test_eviction_drops_least_recently_used(self, clock):
        cache = TTLResultCache(max_entries=2, time_fn=clock)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        assert cache.get(0, "a") == 1  # bump a ahead of b
        cache.put(0, "c", 3)
        assert cache.get(0, "b") is None
        assert cache.get(0, "a") == 1
        assert cache.get(0, "c") == 3


class TestPurge:
    def test_purge_generations_before(self, clock):
        cache = TTLResultCache(time_fn=clock)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.put(1, "a", 3)
        assert cache.purge_generations_before(1) == 2
        assert len(cache) == 1
        assert cache.get(1, "a") == 3

    def test_purge_is_idempotent(self, clock):
        cache = TTLResultCache(time_fn=clock)
        cache.put(2, "a", 1)
        assert cache.purge_generations_before(2) == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs", [{"max_entries": 0}, {"ttl_seconds": 0.0}, {"ttl_seconds": -1.0}]
    )
    def test_bad_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TTLResultCache(**kwargs)
