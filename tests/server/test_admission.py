"""AdmissionController: bounded queue, fairness, FIFO-with-skips, accounting."""

import pytest

from repro.server.admission import AdmissionController
from repro.server.protocol import ServiceUnavailable


class FakeTask:
    def __init__(self, constraint_id):
        self.constraint_id = constraint_id

    def __repr__(self):
        return f"FakeTask({self.constraint_id})"


def drain(controller):
    return list(controller.dispatchable())


class TestOffer:
    def test_sheds_when_queue_full(self):
        controller = AdmissionController(max_queue=2, max_inflight=1)
        controller.offer(FakeTask("skinny"))
        controller.offer(FakeTask("skinny"))
        with pytest.raises(ServiceUnavailable) as excinfo:
            controller.offer(FakeTask("skinny"))
        assert excinfo.value.queue_depth == 2
        assert controller.shed_total == 1

    def test_shed_error_is_retriable_on_the_wire(self):
        error = ServiceUnavailable("full", queue_depth=9).to_result_error()
        assert error.code == "service_unavailable"
        assert error.retriable is True
        assert error.partial is False


class TestDispatch:
    def test_fifo_within_capacity(self):
        controller = AdmissionController(max_queue=10, max_inflight=2)
        first, second, third = (FakeTask("skinny") for _ in range(3))
        for task in (first, second, third):
            controller.offer(task)
        assert drain(controller) == [first, second]
        assert controller.inflight == 2
        assert controller.queue_depth == 1
        # Nothing more until a slot frees.
        assert drain(controller) == []
        controller.finished("skinny")
        assert drain(controller) == [third]

    def test_per_constraint_limit_skips_not_blocks(self):
        controller = AdmissionController(
            max_queue=10, max_inflight=3, per_constraint=1
        )
        skinny_a, skinny_b = FakeTask("skinny"), FakeTask("skinny")
        path_task = FakeTask("path")
        for task in (skinny_a, skinny_b, path_task):
            controller.offer(task)
        # skinny_b is at its constraint limit; path jumps past it without
        # losing skinny_b's queue position.
        assert drain(controller) == [skinny_a, path_task]
        assert controller.inflight_for("skinny") == 1
        assert controller.inflight_for("path") == 1
        controller.finished("skinny")
        assert drain(controller) == [skinny_b]

    def test_skipped_tasks_keep_their_order(self):
        controller = AdmissionController(
            max_queue=10, max_inflight=2, per_constraint=1
        )
        blocked_a, blocked_b = FakeTask("skinny"), FakeTask("skinny")
        controller.offer(blocked_a)
        assert drain(controller) == [blocked_a]
        controller.offer(blocked_b)
        late_path = FakeTask("path")
        controller.offer(late_path)
        assert drain(controller) == [late_path]
        controller.finished("skinny")
        controller.finished("path")
        # blocked_b, offered before late_path, is still ahead of anything new.
        assert drain(controller) == [blocked_b]

    def test_finished_without_dispatch_raises(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.finished("skinny")

    def test_drain_pending_empties_the_queue(self):
        controller = AdmissionController(max_queue=10, max_inflight=1)
        tasks = [FakeTask("skinny") for _ in range(3)]
        for task in tasks:
            controller.offer(task)
        dispatched = drain(controller)
        assert dispatched == tasks[:1]
        assert list(controller.drain_pending()) == tasks[1:]
        assert controller.queue_depth == 0
        # In-flight accounting is untouched by a drain.
        assert controller.inflight == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_inflight": 0},
            {"per_constraint": 0},
        ],
    )
    def test_bad_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)
