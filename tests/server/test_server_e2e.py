"""End-to-end MiningServer tests over real TCP connections.

pytest-asyncio is not a dependency of this repo, so every test is a plain
sync function driving the server with ``asyncio.run``.  Each test stands up
a fresh :class:`MiningServer` on an ephemeral port, talks NDJSON to it
through :class:`Client`, and tears it down.

The ``sleepy`` constraint — registered per-test and always unregistered —
gives deterministic slow queries for the deadline/shed/isolation tests:
its driver sleeps for ``ms`` milliseconds and mines nothing.
"""

import asyncio
import contextlib
import json
import time

from repro.api import MiningEngine, Query
from repro.api.registry import ParamSpec, register_constraint, unregister_constraint
from repro.core.database import EdgeDelta
from repro.graph.labeled_graph import graph_from_paths
from repro.obs.metrics import MetricsRegistry
from repro.server import MiningServer

QUERY = Query("skinny", {"length": 3, "delta": 1}, min_support=2)


def make_graphs():
    return graph_from_paths([list("abcde"), list("abcde"), list("abcde")])


def reference_result(deltas=None):
    """What a direct, single-user engine answers for QUERY."""
    engine = MiningEngine(make_graphs(), metrics=MetricsRegistry())
    if deltas:
        engine.apply_delta(deltas)
    return engine.run(QUERY)


class Client:
    """One NDJSON connection; supports both lockstep and pipelined use."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def send(self, payload):
        self.writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await self.writer.drain()

    async def send_raw(self, line: bytes):
        self.writer.write(line)
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def request(self, payload):
        await self.send(payload)
        return await self.recv()

    async def recv_by_id(self, count):
        """Read ``count`` responses, keyed by their echoed request id."""
        responses = {}
        for _ in range(count):
            response = await self.recv()
            responses[response["id"]] = response
        return responses

    async def close(self):
        self.writer.close()
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await self.writer.wait_closed()


@contextlib.contextmanager
def sleepy_constraint():
    """A registered constraint whose Stage 1 sleeps for ``ms`` milliseconds."""

    class SleepDriver:
        def mine_minimal(self, context, parameter):
            time.sleep(parameter / 1000.0)
            return []

        def grow(self, context, minimal, parameter):
            return []

    register_constraint(
        "sleepy",
        lambda params, caps, include_minimal: SleepDriver(),
        params=(ParamSpec("ms", int, required=True, minimum=1),),
        description="sleeps, mines nothing (test only)",
    )
    try:
        yield
    finally:
        unregister_constraint("sleepy")


def sleepy_query(ms, request_id, budget_ms=None):
    payload = {
        "op": "query",
        "id": request_id,
        "query": {"constraint": "sleepy", "params": {"ms": ms}, "min_support": 2},
    }
    if budget_ms is not None:
        payload["budget_ms"] = budget_ms
    return payload


async def _with_server(body, **server_kwargs):
    server_kwargs.setdefault("workers", 2)
    server = MiningServer(make_graphs(), **server_kwargs)
    await server.start()
    client = await Client.connect(server.port)
    try:
        return await body(server, client)
    finally:
        await client.close()
        await server.stop()


def run_with_server(body, **server_kwargs):
    return asyncio.run(_with_server(body, **server_kwargs))


class TestBasics:
    def test_ping(self):
        async def body(server, client):
            response = await client.request({"op": "ping", "id": "p1"})
            assert response == {
                "id": "p1",
                "ok": True,
                "op": "ping",
                "generation": 0,
            }

        run_with_server(body)

    def test_query_matches_direct_engine(self):
        expected = reference_result()
        expected_patterns = expected.to_dict(include_patterns=True)["patterns"]

        async def body(server, client):
            response = await client.request(
                {"op": "query", "id": 1, "query": QUERY.to_dict()}
            )
            assert response["ok"] is True
            assert response["num_patterns"] == len(expected.patterns)
            assert response["patterns"] == expected_patterns
            stats = response["stats"]
            assert stats["snapshot_generation"] == 0
            assert stats["budget_ms"] is None
            assert stats["queue_seconds"] >= 0.0
            assert "error" not in response

        run_with_server(body)

    def test_include_patterns_false_omits_payload(self):
        async def body(server, client):
            response = await client.request(
                {
                    "op": "query",
                    "id": 1,
                    "query": QUERY.to_dict(),
                    "include_patterns": False,
                }
            )
            assert response["ok"] is True
            assert "patterns" not in response
            assert response["num_patterns"] > 0

        run_with_server(body)

    def test_second_query_is_a_cache_hit(self):
        async def body(server, client):
            first = await client.request(
                {"op": "query", "id": 1, "query": QUERY.to_dict()}
            )
            second = await client.request(
                {"op": "query", "id": 2, "query": QUERY.to_dict()}
            )
            assert first["stats"]["result_cache_hit"] is False
            assert second["stats"]["result_cache_hit"] is True
            assert second["patterns"] == first["patterns"]
            assert second["num_patterns"] == first["num_patterns"]
            assert second["stats"]["snapshot_generation"] == 0

        run_with_server(body)

    def test_pipelined_queries_echo_ids(self):
        async def body(server, client):
            queries = {
                "q-skinny": QUERY.to_dict(),
                "q-path": Query(
                    "path", {"length": 2}, min_support=2
                ).to_dict(),
                "q-diam": Query(
                    "diam-le", {"k": 2}, min_support=3
                ).to_dict(),
            }
            for request_id, query in queries.items():
                await client.send({"op": "query", "id": request_id, "query": query})
            responses = await client.recv_by_id(len(queries))
            assert set(responses) == set(queries)
            assert all(r["ok"] for r in responses.values())

        run_with_server(body)


class TestTypedErrors:
    def test_unknown_constraint(self):
        async def body(server, client):
            response = await client.request(
                {"op": "query", "id": 5, "query": {"constraint": "nope", "params": {}}}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "unknown_constraint"

        run_with_server(body)

    def test_malformed_line(self):
        async def body(server, client):
            await client.send_raw(b"this is not json\n")
            response = await client.recv()
            assert response["ok"] is False
            assert response["error"]["code"] == "malformed_query"
            assert response["id"] is None
            # The connection survives a malformed line.
            assert (await client.request({"op": "ping"}))["ok"] is True

        run_with_server(body)

    def test_unknown_op(self):
        async def body(server, client):
            response = await client.request({"op": "mine_everything"})
            assert response["ok"] is False
            assert response["error"]["code"] == "malformed_query"

        run_with_server(body)

    def test_bad_budget(self):
        async def body(server, client):
            response = await client.request(
                {"op": "query", "id": 9, "query": QUERY.to_dict(), "budget_ms": -1}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "malformed_query"

        run_with_server(body)

    def test_invalid_params(self):
        async def body(server, client):
            response = await client.request(
                {
                    "op": "query",
                    "id": 10,
                    "query": {"constraint": "skinny", "params": {"length": 3}},
                }
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "missing_parameter"

        run_with_server(body)


class TestDeadlines:
    def test_deadline_exceeded_mid_run(self):
        with sleepy_constraint():

            async def body(server, client):
                started = time.monotonic()
                response = await client.request(
                    sleepy_query(2000, "slow", budget_ms=150)
                )
                elapsed = time.monotonic() - started
                assert response["ok"] is False
                assert response["error"]["code"] == "deadline_exceeded"
                assert response["error"]["retriable"] is False
                assert response["error"]["partial"] is False
                # The client got its answer at the budget, not after the
                # worker's 2 s sleep finished.
                assert elapsed < 1.5

            run_with_server(body)

    def test_deadline_exceeded_while_queued(self):
        with sleepy_constraint():

            async def body(server, client):
                # One worker, occupied by a long sleep; the budgeted query
                # behind it times out without ever running.
                await client.send(sleepy_query(600, "occupier"))
                await asyncio.sleep(0.05)  # let the occupier get dispatched
                await client.send(sleepy_query(600, "starved", budget_ms=100))
                responses = await client.recv_by_id(2)
                assert responses["starved"]["error"]["code"] == "deadline_exceeded"
                assert responses["occupier"]["ok"] is True

            run_with_server(body, workers=1)

    def test_default_budget_applies(self):
        with sleepy_constraint():

            async def body(server, client):
                response = await client.request(sleepy_query(2000, "d"))
                assert response["error"]["code"] == "deadline_exceeded"
                assert response["stats"] is None  # no partial stats on the wire

            run_with_server(body, default_budget_ms=150)


class TestAdmission:
    def test_load_shed_returns_retriable_unavailable(self):
        with sleepy_constraint():

            async def body(server, client):
                await client.send(sleepy_query(400, "running"))
                await asyncio.sleep(0.05)  # occupier reaches the worker
                await client.send(sleepy_query(400, "queued"))
                await client.send(sleepy_query(400, "shed"))
                responses = await client.recv_by_id(3)
                shed = responses["shed"]
                assert shed["ok"] is False
                assert shed["error"]["code"] == "service_unavailable"
                assert shed["error"]["retriable"] is True
                assert responses["running"]["ok"] is True
                assert responses["queued"]["ok"] is True

            run_with_server(body, workers=1, max_queue=1)


class TestDeltas:
    def test_apply_delta_advances_generation(self):
        expected_before = reference_result()
        expected_after = reference_result([EdgeDelta.remove_edge(0, 1)])
        before_patterns = expected_before.to_dict(include_patterns=True)["patterns"]
        after_patterns = expected_after.to_dict(include_patterns=True)["patterns"]

        async def body(server, client):
            first = await client.request(
                {"op": "query", "id": 1, "query": QUERY.to_dict()}
            )
            assert first["stats"]["snapshot_generation"] == 0
            assert first["patterns"] == before_patterns

            delta = await client.request(
                {
                    "op": "apply_delta",
                    "id": "d1",
                    "delta": [{"op": "remove", "u": 0, "v": 1}],
                }
            )
            assert delta["ok"] is True
            assert delta["generation"] == 1
            assert delta["report"]["operations"] == 1

            second = await client.request(
                {"op": "query", "id": 2, "query": QUERY.to_dict()}
            )
            assert second["stats"]["snapshot_generation"] == 1
            # Not the stale cached generation-0 answer: the delta-keyed
            # cache made the old entry unaddressable.
            assert second["stats"]["result_cache_hit"] is False
            assert second["patterns"] == after_patterns

        run_with_server(body)

    def test_invalid_delta_is_typed_and_nonfatal(self):
        async def body(server, client):
            response = await client.request(
                {
                    "op": "apply_delta",
                    "id": "bad",
                    "delta": [{"op": "remove", "u": 998, "v": 999}],
                }
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "invalid_delta"
            assert (await client.request({"op": "ping"}))["generation"] == 0

        run_with_server(body)

    def test_delta_does_not_block_inflight_queries(self):
        with sleepy_constraint():

            async def body(server, client):
                # A slow query admitted at generation 0...
                await client.send(sleepy_query(400, "inflight"))
                await asyncio.sleep(0.05)
                # ...keeps running while the delta publishes generation 1.
                started = time.monotonic()
                delta = await client.request(
                    {
                        "op": "apply_delta",
                        "id": "d",
                        "delta": [{"op": "remove", "u": 0, "v": 1}],
                    }
                )
                delta_seconds = time.monotonic() - started
                assert delta["generation"] == 1
                assert delta_seconds < 0.35  # did not wait for the sleeper

                await client.send(
                    {"op": "query", "id": "post", "query": QUERY.to_dict()}
                )
                responses = await client.recv_by_id(2)
                assert responses["inflight"]["ok"] is True
                # The in-flight query was served from the generation it was
                # admitted against; the later one sees the new generation.
                assert responses["inflight"]["stats"]["snapshot_generation"] == 0
                assert responses["post"]["stats"]["snapshot_generation"] == 1

            run_with_server(body, workers=2)


class TestStatsAndShutdown:
    def test_stats_merges_worker_metrics(self):
        async def body(server, client):
            await client.request({"op": "query", "id": 1, "query": QUERY.to_dict()})
            response = await client.request({"op": "stats", "id": "s"})
            assert response["ok"] is True
            counter_names = {
                row["name"] for row in response["metrics"]["counters"]
            }
            # Event-loop-side service metrics...
            assert "repro_service_requests_total" in counter_names
            # ...merged with the worker threads' private engine metrics.
            assert "repro_queries_total" in counter_names
            info = response["server"]
            assert info["generation"] == 0
            assert info["workers"] == 2
            assert info["inflight"] == 0
            assert info["result_cache_misses"] >= 1

        run_with_server(body)

    def test_shutdown_op_stops_serve_forever(self):
        async def body():
            server = MiningServer(make_graphs(), workers=1)
            await server.start()
            forever = asyncio.ensure_future(server.serve_forever())
            client = await Client.connect(server.port)
            try:
                response = await client.request({"op": "shutdown", "id": "bye"})
                assert response == {"id": "bye", "ok": True, "op": "shutdown"}
                await asyncio.wait_for(forever, timeout=5.0)
            finally:
                await client.close()
            # The listener is gone: new connections are refused.
            try:
                await Client.connect(server.port)
            except OSError:
                pass
            else:
                raise AssertionError("server still accepting connections")

        asyncio.run(body())
