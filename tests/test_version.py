"""The package version is single-sourced from pyproject.toml."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.cli import main

PYPROJECT = Path(__file__).resolve().parents[1] / "pyproject.toml"


def test_version_matches_pyproject():
    text = PYPROJECT.read_text(encoding="utf-8")
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
    assert match, "pyproject.toml must declare [project] version"
    assert repro.__version__ == match.group(1)


def test_version_is_pep440_ish():
    assert re.fullmatch(r"\d+\.\d+\.\d+([.+-].*)?", repro.__version__)


def test_cli_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"
