"""Tests for the MiningContext (support measures, label index)."""

from __future__ import annotations

import pytest

from repro.core.database import MiningContext, SupportMeasure
from repro.graph.embeddings import Embedding
from repro.graph.labeled_graph import build_graph


class TestConstruction:
    def test_single_graph_defaults_to_embedding_support(self, triangle_graph):
        context = MiningContext(triangle_graph, 2)
        assert context.is_single_graph
        assert context.support_measure is SupportMeasure.EMBEDDINGS

    def test_database_defaults_to_transaction_support(self, triangle_graph, path_graph):
        context = MiningContext([triangle_graph, path_graph], 2)
        assert not context.is_single_graph
        assert context.support_measure is SupportMeasure.TRANSACTIONS

    def test_explicit_measure_override(self, triangle_graph):
        context = MiningContext(triangle_graph, 1, SupportMeasure.MNI)
        assert context.support_measure is SupportMeasure.MNI

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            MiningContext([], 1)

    def test_invalid_support_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            MiningContext(triangle_graph, 0)

    def test_repr(self, triangle_graph):
        assert "sigma=2" in repr(MiningContext(triangle_graph, 2))


class TestLabelIndex:
    def test_vertices_with_label(self, path_graph):
        context = MiningContext(path_graph, 1)
        assert sorted(context.vertices_with_label(0, "a")) == [0, 4]
        assert sorted(context.vertices_with_label(0, "b")) == [1, 3]
        assert context.vertices_with_label(0, "zzz") == []

    def test_frequent_labels_embeddings(self, path_graph):
        context = MiningContext(path_graph, 2)
        assert context.frequent_labels() == {"a", "b"}

    def test_frequent_labels_transactions(self, triangle_graph, path_graph):
        context = MiningContext([triangle_graph, path_graph], 2)
        # 'a', 'b', 'c' appear in both graphs.
        assert context.frequent_labels() == {"a", "b", "c"}


class TestSupport:
    def test_embedding_support_counts_images(self, path_graph):
        context = MiningContext(path_graph, 1)
        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        embeddings = [
            Embedding.from_dict({0: 0, 1: 1}),
            Embedding.from_dict({0: 4, 1: 3}),
            Embedding.from_dict({0: 4, 1: 3}),
        ]
        assert context.support_of_embeddings(embeddings, pattern) == 2

    def test_transaction_support(self, triangle_graph, path_graph):
        context = MiningContext([triangle_graph, path_graph], 1)
        embeddings = [
            Embedding.from_dict({0: 0}, graph_index=0),
            Embedding.from_dict({0: 1}, graph_index=0),
            Embedding.from_dict({0: 0}, graph_index=1),
        ]
        assert context.support_of_embeddings(embeddings) == 2

    def test_mni_support_requires_pattern(self, triangle_graph):
        context = MiningContext(triangle_graph, 1, SupportMeasure.MNI)
        with pytest.raises(ValueError):
            context.support_of_embeddings([Embedding.from_dict({0: 0})])

    def test_support_of_occurrences(self, triangle_graph, path_graph):
        context = MiningContext([triangle_graph, path_graph], 1)
        occurrences = [
            (0, frozenset({0, 1})),
            (0, frozenset({1, 2})),
            (1, frozenset({0, 1})),
        ]
        assert context.support_of_occurrences(occurrences) == 2
        single = MiningContext(triangle_graph, 1)
        assert single.support_of_occurrences(occurrences) == 3

    def test_support_of_table_matches_support_of_embeddings(
        self, triangle_graph, path_graph
    ):
        """The columnar path must agree with the legacy list path everywhere.

        Covers all three measures on both a single graph and a transaction
        database, including duplicate-image embeddings (same vertex set via
        a flipped mapping) — the case the image-key dedup must collapse.
        """
        from repro.graph.embeddings import EmbeddingTable

        pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
        embeddings = [
            Embedding.from_dict({0: 0, 1: 1}, graph_index=0),
            Embedding.from_dict({0: 1, 1: 0}, graph_index=0),  # duplicate image
            Embedding.from_dict({0: 4, 1: 3}, graph_index=0),
            Embedding.from_dict({0: 0, 1: 1}, graph_index=1),
        ]
        table = EmbeddingTable.from_embeddings(embeddings)
        for graphs in (triangle_graph, [triangle_graph, path_graph]):
            for measure in SupportMeasure:
                context = MiningContext(graphs, 1, measure)
                assert context.support_of_table(table, pattern) == (
                    context.support_of_embeddings(embeddings, pattern)
                ), measure

    def test_is_frequent(self, triangle_graph):
        context = MiningContext(triangle_graph, 3)
        assert context.is_frequent(3)
        assert not context.is_frequent(2)

    def test_totals(self, triangle_graph, path_graph):
        context = MiningContext([triangle_graph, path_graph], 1)
        assert context.total_vertices() == 8
        assert context.total_edges() == 7


class TestFrozenViews:
    """The per-context frozen CSR cache and its delta invalidation."""

    def test_frozen_graph_cached_and_shares_palette(self, triangle_graph, path_graph):
        context = MiningContext([triangle_graph, path_graph], 1)
        first = context.frozen_graph(0)
        second = context.frozen_graph(1)
        assert context.frozen_graph(0) is first  # cached
        assert first.palette is second.palette  # database-wide palette
        assert first.neighbors(0) == tuple(sorted(triangle_graph.neighbors(0)))

    def test_apply_delta_invalidates_only_touched_graphs(
        self, triangle_graph, path_graph
    ):
        from repro.core.database import GraphDelta

        context = MiningContext([triangle_graph.copy(), path_graph.copy()], 1)
        frozen_triangle = context.frozen_graph(0)
        frozen_path = context.frozen_graph(1)
        labels = context.vertices_with_label(1, "a")
        context.apply_delta(GraphDelta().remove_edge(0, 1, graph_index=1))
        # Untouched transaction keeps its view; the edited one re-freezes.
        assert context.frozen_graph(0) is frozen_triangle
        refrozen = context.frozen_graph(1)
        assert refrozen is not frozen_path
        assert not refrozen.has_edge(0, 1)
        assert context.vertices_with_label(1, "a") == labels  # index rebuilt

    def test_rejected_delta_leaves_cache_intact(self, triangle_graph):
        from repro.core.database import EdgeDelta

        context = MiningContext(triangle_graph.copy(), 1)
        frozen = context.frozen_graph(0)
        with pytest.raises(KeyError):
            context.apply_delta(
                [
                    EdgeDelta.remove_edge(0, 1),
                    EdgeDelta.remove_edge(0, 1),  # second removal invalid
                ]
            )
        # Validation rejects the whole batch before any mutation, so the
        # data is untouched and the frozen view is still valid.
        assert context.frozen_graph(0) is frozen
        assert frozen.has_edge(0, 1)

    def test_injected_pool_is_shared_by_reference(self, triangle_graph):
        from repro.graph.csr import LabelPalette

        pool, palette = {}, LabelPalette()
        first = MiningContext(
            triangle_graph, 1, frozen_views=pool, palette=palette
        )
        second = MiningContext(
            triangle_graph, 2, frozen_views=pool, palette=palette
        )
        view = first.frozen_graph(0)
        assert second.frozen_graph(0) is view  # one freeze serves both
        assert view.palette is palette


class TestTouchedGraphIndices:
    def test_graph_delta_and_raw_lists_agree(self):
        from repro.core.database import EdgeDelta, GraphDelta, touched_graph_indices

        delta = GraphDelta()
        delta.add_edge(0, 1, graph_index=3, label_u="a", label_v="b")
        delta.remove_edge(0, 1, graph_index=0)
        assert touched_graph_indices(delta) == {0, 3}
        assert delta.touched_graphs() == {0, 3}
        assert touched_graph_indices(list(delta)) == {0, 3}
        assert touched_graph_indices([]) == set()
