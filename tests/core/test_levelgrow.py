"""Tests for LevelGrow (Stage II growth) and the pattern registry."""

from __future__ import annotations

import pytest

from repro.core.database import MiningContext
from repro.core.diammine import DiamMine
from repro.core.levelgrow import (
    ExistingEdgeExtension,
    LevelGrower,
    NewVertexExtension,
    PatternRegistry,
)
from repro.core.patterns import initial_state_from_path
from repro.graph.labeled_graph import build_graph, graph_from_paths


def star_data_graph():
    """Two copies of a path a-b-c whose middle vertex carries a 'z' twig."""
    graph = graph_from_paths([list("abc"), list("abc")])
    # vertices 0,1,2 and 3,4,5; add twigs on the middle vertices.
    twig_one = 100
    twig_two = 101
    graph.add_vertex(twig_one, "z")
    graph.add_vertex(twig_two, "z")
    graph.add_edge(1, twig_one)
    graph.add_edge(4, twig_two)
    return graph


def backbone_path(context, length=2, labels=("a", "b", "c")):
    """The DiamMine path whose label sequence equals ``labels``."""
    for path in DiamMine(context).mine(length):
        if path.labels == tuple(labels):
            return path
    raise AssertionError(f"no frequent path with labels {labels}")


class TestPatternRegistry:
    def test_detects_isomorphic_duplicates(self):
        registry = PatternRegistry()
        first = build_graph({0: "a", 1: "b"}, [(0, 1)])
        second = build_graph({7: "b", 9: "a"}, [(7, 9)])
        assert registry.add_if_new(first)
        assert not registry.add_if_new(second)
        assert len(registry) == 1

    def test_distinguishes_non_isomorphic(self):
        registry = PatternRegistry()
        assert registry.add_if_new(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        assert registry.add_if_new(build_graph({0: "a", 1: "c"}, [(0, 1)]))
        assert len(registry) == 2


class TestExtensionsOrdering:
    def test_sort_keys(self):
        new = NewVertexExtension(parent=2, label="z")
        edge = ExistingEdgeExtension(u=5, v=3)
        assert new.sort_key()[0] == 0
        assert edge.sort_key() == (1, 3, 5)


class TestLevelGrow:
    def test_grows_frequent_twig(self):
        graph = star_data_graph()
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        assert len(grown) == 1
        result = grown[0]
        assert result.pattern.num_vertices() == 4
        assert result.support == 2
        assert result.levels[result.next_vertex_id() - 1] == 1

    def test_rejects_infrequent_twig(self):
        graph = star_data_graph()
        # Add a unique twig to only one copy: support 1 < 2.
        graph.add_vertex(200, "q")
        graph.add_edge(1, 200)
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        labels_used = {
            str(state.pattern.label_of(v))
            for state in grown
            for v in state.pattern.vertices()
        }
        assert "q" not in labels_used
        assert grower.statistics.candidates_rejected_support >= 1

    def test_constraint_rejections_counted(self):
        # Endpoint twigs must be rejected by Constraint I.
        graph = graph_from_paths([list("abc"), list("abc")])
        graph.add_vertex(100, "z")
        graph.add_vertex(101, "z")
        graph.add_edge(0, 100)  # attach to the head vertex
        graph.add_edge(3, 101)
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        assert grown == []
        assert grower.statistics.candidates_rejected_constraints >= 1

    def test_level_must_be_positive(self):
        graph = star_data_graph()
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        with pytest.raises(ValueError):
            grower.grow_level(root, 0)

    def test_max_patterns_cap(self):
        graph = star_data_graph()
        # Make many distinct frequent twigs by adding several labels to both copies.
        for offset, label in enumerate("defgh"):
            first, second = 300 + 2 * offset, 301 + 2 * offset
            graph.add_vertex(first, label)
            graph.add_vertex(second, label)
            graph.add_edge(1, first)
            graph.add_edge(4, second)
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context, max_patterns=3)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        assert 0 < len(grown) <= 4

    def test_duplicate_statistics(self):
        # Two frequent twigs on the same parent: patterns {x}, {y}, {x,y} are
        # reachable in two orders; the registry must collapse duplicates.
        graph = graph_from_paths([list("abc"), list("abc")])
        for base, label in ((400, "x"), (402, "y")):
            graph.add_vertex(base, label)
            graph.add_vertex(base + 1, label)
            graph.add_edge(1, base)
            graph.add_edge(4, base + 1)
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        # Patterns: +x, +y, +x+y  (and +x twice is impossible: only one x per copy).
        assert len(grown) == 3
        assert grower.statistics.candidates_rejected_duplicate >= 1

    def test_existing_edge_extension_creates_cycle(self):
        # Data: path a-b-c with a twig 'z' on b and an edge from z to... we
        # need an (1,1)-level edge: two twigs z,y on the middle, connected.
        graph = graph_from_paths([list("abc"), list("abc")])
        for base in (0, 3):
            z, y = 500 + base, 520 + base
            graph.add_vertex(z, "z")
            graph.add_vertex(y, "y")
            graph.add_edge(base + 1, z)
            graph.add_edge(base + 1, y)
            graph.add_edge(z, y)
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        # Expect at least one grown pattern containing the z-y edge (a triangle
        # hanging off the backbone).
        has_cycle = any(
            state.pattern.num_edges() > state.pattern.num_vertices() - 1
            for state in grown
        )
        assert has_cycle

    def test_statistics_merge(self):
        from repro.core.levelgrow import LevelGrowStatistics

        one = LevelGrowStatistics(1, 2, 3, 4, candidates_pending=5, patterns_emitted=6)
        two = LevelGrowStatistics(10, 20, 30, 40, candidates_pending=50, patterns_emitted=60)
        one.merge(two)
        assert (
            one.candidates_generated,
            one.candidates_rejected_constraints,
            one.candidates_rejected_support,
            one.candidates_rejected_duplicate,
            one.candidates_pending,
            one.patterns_emitted,
        ) == (11, 22, 33, 44, 55, 66)

    def test_fast_path_statistics_merge(self):
        from repro.core.levelgrow import LevelGrowStatistics

        one = LevelGrowStatistics(
            canonical_incremental_hits=1,
            invariant_cache_hits=2,
            probes_batched=3,
            canonical_seconds=0.25,
            invariant_seconds=0.5,
            probe_seconds=0.75,
        )
        one.merge(
            LevelGrowStatistics(
                canonical_incremental_hits=10,
                invariant_cache_hits=20,
                probes_batched=30,
                canonical_seconds=1.0,
                invariant_seconds=2.0,
                probe_seconds=3.0,
            )
        )
        assert (
            one.canonical_incremental_hits,
            one.invariant_cache_hits,
            one.probes_batched,
            one.canonical_seconds,
            one.invariant_seconds,
            one.probe_seconds,
        ) == (11, 22, 33, 1.25, 2.5, 3.75)
        payload = one.to_dict()
        assert payload["probes_batched"] == 33
        assert payload["canonical_seconds"] == 1.25

    def test_incremental_keys_and_batched_probes_on_growth(self):
        # Two labels hang off the *head* vertex of both copies: each pendant
        # violates Constraint I (distance D(P)+1 from the tail), so both
        # trigger viability probes against the same diameter images — one
        # shared frontier must answer them (probes_batched >= 2) — while the
        # frequent middle twigs exercise the incremental key derivation.
        graph = graph_from_paths([list("abc"), list("abc")])
        for base, labels in ((0, "zy"), (3, "zy")):
            for offset, label in enumerate(labels):
                vertex = 600 + 10 * base + offset
                graph.add_vertex(vertex, label)
                graph.add_edge(base, vertex)
        for base, vertex in ((1, 700), (4, 701)):
            graph.add_vertex(vertex, "w")
            graph.add_edge(base, vertex)
        context = MiningContext(graph, 2)
        root = initial_state_from_path(backbone_path(context))
        grower = LevelGrower(context)
        grower.register(root)
        grown = grower.grow_level(root, 1)
        assert grown  # the frequent 'w' twig
        assert grower.statistics.canonical_incremental_hits >= len(grown)
        assert grower.statistics.probes_batched >= 2
        assert grower.statistics.canonical_seconds >= 0.0
