"""Tests for canonical-diameter maintenance (Constraints I, II, III).

The scenarios mirror Figure 3 of the paper, where three example extensions
each violate exactly one of the three constraints, plus property-based checks
that the local D_H/D_T updates agree with full BFS recomputation.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (
    admissible_existing_edge,
    admissible_new_vertex,
    constraint_one_ok_new_vertex,
    constraint_three_ok_existing_edge,
    constraint_three_ok_new_vertex,
    constraint_two_ok_existing_edge,
    constraint_two_ok_new_vertex,
    distances_after_existing_edge,
    new_vertex_distances,
    relax_distance_map,
)
from repro.core.patterns import GrowthState, PathPattern, initial_state_from_path
from repro.graph.generators import random_labeled_path
from repro.graph.paths import bfs_distances


def make_state_from_labels(labels, embeddings=None) -> GrowthState:
    """Build a growth state whose pattern is a bare path with ``labels``."""
    path = PathPattern(
        labels=tuple(labels),
        embeddings=tuple(embeddings or ((0, tuple(range(100, 100 + len(labels)))),)),
        support=1,
    )
    return initial_state_from_path(path)


def add_twig(state: GrowthState, parent: int, label: str, level: int) -> int:
    """Attach a new twig vertex to the state's pattern (updating the indices)."""
    new_vertex = state.next_vertex_id()
    state.pattern.add_vertex(new_vertex, label)
    state.pattern.add_edge(parent, new_vertex)
    state.dist_head[new_vertex] = state.dist_head[parent] + 1
    state.dist_tail[new_vertex] = state.dist_tail[parent] + 1
    state.levels[new_vertex] = level
    return new_vertex


class TestNewVertexConstraints:
    def test_distances_of_pendant(self):
        state = make_state_from_labels("abcdefg")  # path of length 6
        assert new_vertex_distances(state, 2) == (3, 5)
        assert new_vertex_distances(state, 0) == (1, 7)

    def test_constraint_one_rejects_endpoint_pendant(self):
        # Attaching a twig to the head or tail creates a longer diameter.
        state = make_state_from_labels("abcdefg")
        assert not constraint_one_ok_new_vertex(state, 0)
        assert not constraint_one_ok_new_vertex(state, 6)
        assert constraint_one_ok_new_vertex(state, 1)
        assert constraint_one_ok_new_vertex(state, 3)

    def test_constraint_one_rejects_deep_twigs_near_ends(self):
        state = make_state_from_labels("abcdefg")
        # Level-1 twig on vertex 1: D_H = 2, D_T = 6 -> fine.
        twig = add_twig(state, 1, "z", 1)
        # Level-2 twig on that twig: D_H = 3, D_T = 7 > 6 -> violates I.
        assert not constraint_one_ok_new_vertex(state, twig)

    def test_constraint_two_always_holds_for_pendant(self):
        state = make_state_from_labels("abcdefg")
        for parent in range(7):
            assert constraint_two_ok_new_vertex(state, parent)

    def test_constraint_three_triggers_only_near_ends(self):
        state = make_state_from_labels("abcdefg")
        # Attaching to vertex 1 (D_H=1, D_T=5 = D-1) can create a new diameter
        # ending at the new vertex; a label smaller than 'g' would precede L
        # reversed?  L = a..g.  New path labels: g f e d c b <new>?  The new
        # diameter runs tail->...->1->new, i.e. labels g,f,e,d,c,b,new; its
        # reverse is new,b,c,d,e,f,g.  It precedes L=abcdefg iff new < 'a'.
        assert constraint_three_ok_new_vertex(state, 1, "z")
        assert constraint_three_ok_new_vertex(state, 1, "b")
        assert not constraint_three_ok_new_vertex(state, 1, "A")  # 'A' < 'a'

    def test_constraint_three_not_triggered_in_middle(self):
        state = make_state_from_labels("abcdefg")
        assert constraint_three_ok_new_vertex(state, 3, "A")

    def test_admissible_new_vertex_combines_checks(self):
        state = make_state_from_labels("abcdefg")
        assert admissible_new_vertex(state, 3, "z")
        assert not admissible_new_vertex(state, 0, "z")
        assert not admissible_new_vertex(state, 1, "A")


class TestExistingEdgeConstraints:
    def test_constraint_two_rejects_shortcut(self):
        # Figure 3's Constraint-II example: an edge that shortens the
        # head-tail distance must be rejected.
        state = make_state_from_labels("abcdefg")
        twig = add_twig(state, 1, "z", 1)
        other = add_twig(state, 5, "y", 1)
        # Connecting the two twigs creates a path head-1-twig-other-5-tail of
        # length 2 + 1 + 2 = 5 < 6: violation.
        assert not constraint_two_ok_existing_edge(state, twig, other)

    def test_constraint_two_allows_harmless_edge(self):
        state = make_state_from_labels("abcdefg")
        twig_a = add_twig(state, 2, "z", 1)
        twig_b = add_twig(state, 3, "y", 1)
        # head-2-twig_a-twig_b-3-tail has length 2+1+1+3 = 7 >= 6: fine.
        assert constraint_two_ok_existing_edge(state, twig_a, twig_b)

    def test_constraint_three_existing_edge_smaller_diameter_rejected(self):
        # Build a path with a twig whose connection creates an equal-length
        # but lexicographically smaller diameter.
        state = make_state_from_labels(["b", "c", "d", "e", "f", "g", "h"])
        twig = add_twig(state, 1, "a", 1)  # twig label 'a' attached to vertex 1
        # Connect twig to vertex 0 (the head): creates diameter
        # twig-1-2-...-6 with labels a,c,d,e,f,g,h?  No - the new edge is
        # (twig, 0).  New path: twig,0 has length 1; diameter paths through
        # the new edge: head(0)->twig segment + twig->tail... D_H[twig]=2,
        # D_T[twig]=6: adding edge (twig,0) gives D_H'=1.  Candidate new
        # diameters of length 6 via the new edge: 0-twig requires
        # D_H[0]+1+D_T[twig] = 0+1+6 = 7 != 5, D_H[twig]+1+D_T[0] = 2+1+6=9.
        # So no new diameter is created and the check passes.
        assert constraint_three_ok_existing_edge(state, twig, 0)

    def test_admissible_existing_edge(self):
        state = make_state_from_labels("abcdefg")
        twig_a = add_twig(state, 2, "z", 1)
        twig_b = add_twig(state, 3, "y", 1)
        assert admissible_existing_edge(state, twig_a, twig_b)
        near_head = add_twig(state, 1, "x", 1)
        near_tail = add_twig(state, 5, "w", 1)
        assert not admissible_existing_edge(state, near_head, near_tail)


class TestDistanceMaintenance:
    def test_relax_distance_map_propagates(self):
        state = make_state_from_labels("abcde")
        twig = add_twig(state, 2, "z", 1)
        deep = add_twig(state, twig, "y", 2)
        # Add a shortcut from the deep twig to the head and relax.
        state.pattern.add_edge(deep, 0)
        distances = dict(state.dist_head)
        distances[deep] = 1  # via the new edge
        relaxed = relax_distance_map(state.pattern, distances, [deep])
        true_distances = bfs_distances(state.pattern, 0)
        assert relaxed == true_distances

    def test_distances_after_existing_edge_match_bfs(self):
        state = make_state_from_labels("abcdefg")
        twig_a = add_twig(state, 2, "z", 1)
        twig_b = add_twig(state, 3, "y", 1)
        state.pattern.add_edge(twig_a, twig_b)
        dist_head, dist_tail = distances_after_existing_edge(state, twig_a, twig_b)
        assert dist_head == bfs_distances(state.pattern, state.head)
        assert dist_tail == bfs_distances(state.pattern, state.tail)

    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_incremental_distances_equal_bfs_under_random_growth(
        self, length, seed, growth_seed
    ):
        """D_H / D_T maintained incrementally always equal a fresh BFS."""
        from repro.core.orders import canonical_label_orientation

        rng = random.Random(growth_seed)
        path = random_labeled_path(length, 3, seed=seed)
        labels = canonical_label_orientation(
            tuple(str(path.label_of(v)) for v in sorted(path.vertices()))
        )
        state = make_state_from_labels(labels)
        # Random admissible growth: a few pendant twigs plus a few edges.
        for _ in range(6):
            parents = list(state.pattern.vertices())
            parent = rng.choice(parents)
            if constraint_one_ok_new_vertex(state, parent):
                add_twig(
                    state,
                    parent,
                    rng.choice("xyz"),
                    state.levels[parent] + 1,
                )
        vertices = list(state.pattern.vertices())
        for _ in range(3):
            u, v = rng.sample(vertices, 2)
            if state.pattern.has_edge(u, v):
                continue
            if not constraint_two_ok_existing_edge(state, u, v):
                continue
            state.pattern.add_edge(u, v)
            state.dist_head, state.dist_tail = distances_after_existing_edge(
                state, u, v
            )
        assert state.dist_head == bfs_distances(state.pattern, state.head)
        assert state.dist_tail == bfs_distances(state.pattern, state.tail)
