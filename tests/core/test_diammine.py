"""Tests for DiamMine (Stage I: frequent simple path mining)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diammine import DiamMine, brute_force_frequent_paths, mine_frequent_paths
from repro.core.orders import canonical_label_orientation
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_labeled_path,
    random_transaction_database,
)
from repro.graph.labeled_graph import graph_from_paths
from repro.graph.paths import is_simple_path


class TestFrequentEdges:
    def test_single_edge_paths(self):
        graph = graph_from_paths([["a", "b"], ["a", "b"], ["a", "c"]])
        context = MiningContext(graph, 2)
        paths = DiamMine(context).mine(1)
        assert len(paths) == 1
        assert paths[0].labels == ("a", "b")
        assert paths[0].support == 2

    def test_threshold_filters(self):
        graph = graph_from_paths([["a", "b"], ["a", "c"]])
        context = MiningContext(graph, 2)
        assert DiamMine(context).mine(1) == []

    def test_invalid_length(self, triangle_graph):
        with pytest.raises(ValueError):
            DiamMine(MiningContext(triangle_graph, 1)).mine(0)


class TestPowersOfTwo:
    def test_length_two_paths(self):
        graph = graph_from_paths([["a", "b", "c"], ["a", "b", "c"]])
        context = MiningContext(graph, 2)
        paths = DiamMine(context).mine(2)
        assert len(paths) == 1
        assert paths[0].labels == ("a", "b", "c")
        assert paths[0].support == 2

    def test_length_four_paths(self):
        graph = graph_from_paths([list("abcde"), list("abcde"), list("vwxyz")])
        context = MiningContext(graph, 2)
        paths = DiamMine(context).mine(4)
        assert [p.labels for p in paths] == [("a", "b", "c", "d", "e")]

    def test_embeddings_are_simple_paths(self):
        graph = erdos_renyi_graph(50, 2.5, 3, seed=11)
        context = MiningContext(graph, 2)
        for path in DiamMine(context).mine(4):
            for graph_index, vertices in path.embeddings:
                assert graph_index == 0
                assert is_simple_path(graph, list(vertices))
                labels = tuple(str(graph.label_of(v)) for v in vertices)
                assert labels == path.labels


class TestMerging:
    def test_length_three_by_merging(self):
        graph = graph_from_paths([list("abcd"), list("abcd")])
        context = MiningContext(graph, 2)
        paths = DiamMine(context).mine(3)
        assert [p.labels for p in paths] == [("a", "b", "c", "d")]

    def test_odd_lengths_match_bruteforce(self):
        graph = erdos_renyi_graph(35, 2.2, 3, seed=3)
        context = MiningContext(graph, 2)
        for length in (3, 5, 6, 7):
            mined = DiamMine(context, prune_intermediate=False).mine(length)
            brute = brute_force_frequent_paths(context, length)
            assert sorted(p.labels for p in mined) == sorted(p.labels for p in brute)
            mined_support = {p.labels: p.support for p in mined}
            brute_support = {p.labels: p.support for p in brute}
            assert mined_support == brute_support


class TestCanonicalisation:
    def test_labels_are_canonical_orientation(self):
        graph = graph_from_paths([["c", "b", "a"], ["c", "b", "a"]])
        context = MiningContext(graph, 2)
        paths = DiamMine(context).mine(2)
        assert paths[0].labels == ("a", "b", "c")
        for _, vertices in paths[0].embeddings:
            labels = tuple(str(graph.label_of(v)) for v in vertices)
            assert labels == ("a", "b", "c")

    def test_palindromic_path_counted_once(self):
        graph = graph_from_paths([["a", "b", "a"], ["a", "b", "a"]])
        context = MiningContext(graph, 2)
        paths = DiamMine(context).mine(2)
        assert len(paths) == 1
        assert paths[0].support == 2

    def test_path_pattern_to_graph(self):
        graph = graph_from_paths([list("abc"), list("abc")])
        context = MiningContext(graph, 2)
        path = DiamMine(context).mine(2)[0]
        materialised = path.to_graph()
        assert materialised.num_vertices() == 3
        assert materialised.num_edges() == 2
        assert [materialised.label_of(v) for v in (0, 1, 2)] == ["a", "b", "c"]

    def test_path_pattern_embedding_objects(self):
        graph = graph_from_paths([list("abc"), list("abc")])
        context = MiningContext(graph, 2)
        path = DiamMine(context).mine(2)[0]
        embeddings = path.to_embedding_objects()
        assert len(embeddings) == 2
        for embedding in embeddings:
            assert set(embedding.as_dict().keys()) == {0, 1, 2}


class TestTransactionSetting:
    def test_transaction_support(self):
        database = [
            graph_from_paths([list("abc")]),
            graph_from_paths([list("abc"), list("abc")]),
            graph_from_paths([list("xyz")]),
        ]
        context = MiningContext(database, 2)
        paths = DiamMine(context).mine(2)
        assert len(paths) == 1
        # Transaction support counts graphs, not embeddings.
        assert paths[0].support == 2

    def test_injected_paths_found_across_transactions(self):
        database = random_transaction_database(4, 40, 1.5, 6, seed=1)
        planted = random_labeled_path(5, 6, seed=9)
        for index, graph in enumerate(database):
            inject_pattern(graph, planted, copies=1, seed=100 + index)
        context = MiningContext(database, 4)
        paths = DiamMine(context).mine(5)
        planted_labels = canonical_label_orientation(
            tuple(str(planted.label_of(v)) for v in sorted(planted.vertices()))
        )
        assert planted_labels in {p.labels for p in paths}


class TestConvenienceAPIs:
    def test_mine_lengths_shares_ladder(self):
        graph = erdos_renyi_graph(40, 2, 3, seed=7)
        context = MiningContext(graph, 2)
        miner = DiamMine(context)
        by_length = miner.mine_lengths([2, 4, 3])
        assert set(by_length) == {2, 3, 4}
        assert by_length[2] == miner.mine(2)

    def test_mine_at_least_stops_when_empty(self):
        graph = graph_from_paths([list("abc"), list("abc")])
        context = MiningContext(graph, 2)
        results = DiamMine(context).mine_at_least(1, 10)
        assert set(results) == {1, 2}

    def test_functional_facade(self):
        graph = graph_from_paths([list("abc"), list("abc")])
        assert len(mine_frequent_paths(MiningContext(graph, 2), 2)) == 1

    def test_max_paths_per_length_caps_output(self):
        graph = erdos_renyi_graph(60, 3, 2, seed=13)
        context = MiningContext(graph, 2)
        capped = DiamMine(context, max_paths_per_length=3).mine(2)
        uncapped = DiamMine(context).mine(2)
        assert len(capped) <= len(uncapped)
        assert len(capped) <= 4  # cap counts undirected sequences


class TestAgainstBruteForce:
    @given(
        st.integers(min_value=20, max_value=45),
        st.floats(min_value=1.0, max_value=2.5),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_bruteforce_on_random_graphs(
        self, vertices, degree, labels, seed, length
    ):
        graph = erdos_renyi_graph(vertices, degree, labels, seed=seed)
        context = MiningContext(graph, 2)
        mined = DiamMine(context, prune_intermediate=False).mine(length)
        brute = brute_force_frequent_paths(context, length)
        assert sorted(p.labels for p in mined) == sorted(p.labels for p in brute)

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_transaction_setting_matches_bruteforce(self, seed):
        database = random_transaction_database(3, 25, 2.0, 3, seed=seed)
        context = MiningContext(database, 2)
        mined = DiamMine(context).mine(3)
        brute = brute_force_frequent_paths(context, 3)
        assert sorted(p.labels for p in mined) == sorted(p.labels for p in brute)
