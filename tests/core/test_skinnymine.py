"""End-to-end tests for SkinnyMine (Algorithm 1) and its direct-mining index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SkinnyMine, SupportMeasure, mine_skinny_patterns
from repro.core.diameter import is_l_long_delta_skinny
from repro.core.reference import enumerate_and_check_spm
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
    random_transaction_database,
)
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import graph_from_paths


def injected_background(seed: int = 1, copies: int = 3):
    """ER background with three injected copies of a known skinny pattern.

    Tests that mine this at σ = 2 exercise the exact Stage-1 default on the
    cross-copy path family too (pairs of copies share background structure,
    so many support-2 diameters exist); the heavier tests mine at σ = 3,
    which keeps only the within-copy (planted) family and stays fast.
    """
    background = erdos_renyi_graph(140, 1.5, 25, seed=seed)
    pattern = random_skinny_pattern(6, 1, 9, 25, seed=seed + 1)
    inject_pattern(background, pattern, copies=copies, seed=seed + 2)
    return background, pattern


class TestBasicMining:
    def test_recovers_injected_pattern(self):
        background, pattern = injected_background()
        miner = SkinnyMine(background, min_support=3)
        results = miner.mine(length=6, delta=1, validate=True)
        assert any(are_isomorphic(p.graph, pattern) for p in results)

    def test_all_outputs_satisfy_constraint(self):
        background, _ = injected_background(seed=7)
        results = SkinnyMine(background, min_support=2).mine(6, 1)
        for pattern in results:
            assert is_l_long_delta_skinny(pattern.graph, 6, 1)
            assert pattern.support >= 2

    def test_unique_generation(self):
        background, _ = injected_background(seed=9)
        results = SkinnyMine(background, min_support=2).mine(6, 1)
        keys = [p.canonical_form() for p in results]
        assert len(keys) == len(set(keys))

    def test_include_minimal_toggle(self):
        graph = graph_from_paths([list("abcd"), list("abcd")])
        with_minimal = SkinnyMine(graph, min_support=2).mine(3, 1)
        without_minimal = SkinnyMine(graph, min_support=2).mine(
            3, 1, include_minimal=False
        )
        assert len(with_minimal) == 1  # the bare path, nothing to grow
        assert without_minimal == []

    def test_delta_zero_returns_paths_only(self):
        background, _ = injected_background(seed=11)
        results = SkinnyMine(background, min_support=2).mine(6, 0)
        assert all(p.num_edges == 6 and p.num_vertices == 7 for p in results)

    def test_invalid_parameters(self):
        graph = graph_from_paths([list("ab")])
        miner = SkinnyMine(graph, min_support=1)
        with pytest.raises(ValueError):
            miner.mine(0, 1)
        with pytest.raises(ValueError):
            miner.mine(1, -1)

    def test_functional_facade(self):
        graph = graph_from_paths([list("abcd"), list("abcd")])
        assert len(mine_skinny_patterns(graph, 3, 1, 2)) == 1

    def test_report_populated(self):
        background, _ = injected_background(seed=13)
        miner = SkinnyMine(background, min_support=3)
        miner.mine(6, 1)
        report = miner.last_report
        assert report is not None
        assert report.num_diameters >= 1
        assert report.num_patterns >= 1
        assert report.total_seconds >= 0
        assert report.diammine_seconds >= 0
        assert report.levelgrow_seconds >= 0


class TestDirectMiningIndex:
    def test_precompute_serves_later_requests(self):
        background, _ = injected_background(seed=17)
        miner = SkinnyMine(background, min_support=3)
        counts = miner.precompute([4, 5, 6])
        assert set(counts) == {4, 5, 6}
        assert miner.indexed_lengths() == [4, 5, 6]
        # Serving a request for an indexed length must not re-run Stage I:
        results = miner.mine(6, 1)
        assert miner.last_report.num_diameters == counts[6]
        assert len(results) >= counts[6]

    def test_mine_range(self):
        background, _ = injected_background(seed=19)
        miner = SkinnyMine(background, min_support=3)
        by_length = miner.mine_range(5, 6, delta=1)
        assert set(by_length) == {5, 6}
        for length, patterns in by_length.items():
            assert all(p.diameter_length == length for p in patterns)

    def test_mine_range_invalid(self):
        graph = graph_from_paths([list("ab")])
        with pytest.raises(ValueError):
            SkinnyMine(graph, min_support=1).mine_range(3, 2, 1)


class TestTransactionSetting:
    def test_transaction_mining_finds_planted_pattern(self):
        database = random_transaction_database(6, 60, 1.5, 20, seed=23)
        planted = random_skinny_pattern(5, 1, 8, 20, seed=29)
        for index, graph in enumerate(database):
            inject_pattern(graph, planted, copies=1, seed=300 + index)
        miner = SkinnyMine(database, min_support=5)
        results = miner.mine(5, 1)
        assert any(are_isomorphic(p.graph, planted) for p in results)
        assert miner.context.support_measure is SupportMeasure.TRANSACTIONS

    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=4, deadline=None)
    def test_matches_reference_under_transaction_support(self, seed):
        """Completeness + soundness against enumerate-and-check (anti-monotone support)."""
        database = random_transaction_database(3, 12, 1.4, 4, seed=seed)
        mined = SkinnyMine(database, min_support=2).mine(2, 1)
        reference = enumerate_and_check_spm(database, 2, 1, 2, max_edges=8)
        mined_keys = {p.canonical_form() for p in mined if p.num_edges <= 8}
        reference_keys = {p.canonical_form() for p in reference}
        assert mined_keys == reference_keys


class TestSingleGraphReferenceComparison:
    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=4, deadline=None)
    def test_soundness_under_embedding_support(self, seed):
        """Under |E[P]| support every output is independently verifiable: the
        l-long δ-skinny predicate holds (``validate=True``) and the reported
        support matches a from-scratch embedding count.

        No completeness assertion is made under this measure: embedding-count
        support is not anti-monotone, so Stage-2 growth pruning infrequent
        intermediates can miss a pattern whose sub-patterns collapse below
        the threshold (documented in docs/CORRECTNESS.md).  Completeness is
        asserted under the anti-monotone measures in
        ``test_matches_reference_under_transaction_support`` and the
        completeness matrix.
        """
        from repro.graph.isomorphism import find_subgraph_embeddings

        graph = erdos_renyi_graph(14, 1.5, 3, seed=seed)
        miner = SkinnyMine(graph, min_support=2)
        mined = miner.mine(2, 1, validate=True)
        for pattern in mined:
            recounted = len(find_subgraph_embeddings(pattern.graph, graph))
            assert recounted == pattern.support
            assert recounted >= 2
        # Unique generation: no pattern is reported twice.
        keys = [p.canonical_form() for p in mined]
        assert len(keys) == len(set(keys))

    def test_support_values_match_reference(self):
        graph = erdos_renyi_graph(14, 1.5, 3, seed=77)
        mined = SkinnyMine(graph, min_support=2, prune_intermediate=False).mine(2, 1)
        reference = {
            p.canonical_form(): p.support
            for p in enumerate_and_check_spm(graph, 2, 1, 2, max_edges=8)
        }
        overlap = 0
        for pattern in mined:
            key = pattern.canonical_form()
            if key in reference:
                overlap += 1
                assert reference[key] == pattern.support
        assert overlap >= 1
