"""Emission-fast-path parity and regression pins (ISSUE 5).

The Stage-2 fast path — incremental AHU keys carried on growth states,
memoised Loop-Invariant descriptors, the pendant incremental verification,
and batched viability probes — must be *observably invisible*: every scenario
must mine the same pattern set, supports and embeddings as the reference
semantics (batch canonical keys, per-emission descriptor recomputation, solo
probe walks).  This file pins that contract:

* a scenario matrix (single graphs and transaction databases across lengths,
  deltas, thresholds and support measures) mined twice — fast path on vs
  monkeypatched off — and compared by full raw serialisation;
* the PR-4 soundness/completeness pins re-asserted *through the memoised
  engine*: the seed-85 transaction 4-cycle must still be found and the
  seed-80 twig-twig canonical-diameter violation must still be rejected —
  memoisation must never revive a closed gap;
* cross-request behaviour of the shared descriptor cache (hits accumulate,
  per-request counters reset).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import levelgrow as levelgrow_module
from repro.core import patterns as patterns_module
from repro.core.database import SupportMeasure
from repro.core.levelgrow import DiameterDescriptorCache, diameter_descriptor
from repro.core.reference import enumerate_and_check_spm
from repro.core.skinnymine import SkinnyMine
from repro.graph.canonical import canonical_key
from repro.graph.embeddings import set_row_storage
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
    random_transaction_database,
)
from repro.graph.labeled_graph import LabeledGraph


def serialised(patterns):
    """Order-independent full serialisation (graphs, supports, embeddings)."""
    return sorted(
        json.dumps(
            {
                "labels": sorted(
                    (v, str(p.graph.label_of(v))) for v in p.graph.vertices()
                ),
                "edges": sorted(
                    (*e.endpoints(), str(e.label)) for e in p.graph.edges()
                ),
                "diameter": list(p.diameter),
                "support": p.support,
                "embeddings": sorted(
                    (e.graph_index, e.mapping) for e in p.embeddings
                ),
            },
            sort_keys=True,
            default=list,
        )
        for p in patterns
    )


def disable_fast_path(monkeypatch):
    """Monkeypatch the growth engine back to its reference semantics."""
    # No carried encodings: every registry key is batch-recomputed.
    monkeypatch.setattr(patterns_module, "tree_encodings", lambda graph: None)

    # No descriptor memoisation, no pendant incremental verification: every
    # emission recomputes the exact descriptor from scratch, unseeded.
    def reference_invariant(
        self, state, exact_key=None, signature=None, parent_state=None, extension=None
    ):
        return diameter_descriptor(state.pattern) == (
            state.diameter_len,
            state.diameter_label_sequence(),
        )

    monkeypatch.setattr(
        levelgrow_module.LevelGrower, "_holds_loop_invariant", reference_invariant
    )

    # No shared probe frontiers: every probe walks its own BFS.
    monkeypatch.setattr(
        levelgrow_module.LevelGrower,
        "_batch_pendant_probes",
        lambda self, state, extensions, level, max_level, deficient=None: None,
    )


SCENARIOS = [
    # (kind, seed, graph params, length, delta, sigma, measure)
    ("single", 7, (24, 1.6, 3), 2, 1, 2, SupportMeasure.EMBEDDINGS),
    ("single", 23, (24, 1.6, 3), 2, 2, 2, SupportMeasure.EMBEDDINGS),
    ("single", 80, (12, 1.5, 3), 2, 1, 2, SupportMeasure.EMBEDDINGS),
    ("single", 85, (12, 1.5, 3), 2, 1, 2, SupportMeasure.MNI),
    ("single", 3, (30, 1.8, 4), 3, 1, 2, SupportMeasure.EMBEDDINGS),
    ("single", 11, (30, 1.8, 4), 3, 2, 2, SupportMeasure.MNI),
    ("single", 5, (40, 1.7, 5), 4, 1, 3, SupportMeasure.EMBEDDINGS),
    ("planted", 1, (60, 1.5, 6), 4, 1, 3, SupportMeasure.EMBEDDINGS),
    ("planted", 2, (60, 1.5, 6), 5, 1, 2, SupportMeasure.MNI),
    ("transactions", 85, (3, 12, 1.4, 4), 2, 1, 2, SupportMeasure.TRANSACTIONS),
    ("transactions", 42, (3, 12, 1.4, 4), 2, 2, 2, SupportMeasure.TRANSACTIONS),
    ("transactions", 199, (4, 14, 1.5, 4), 3, 1, 2, SupportMeasure.MNI),
    # ISSUE-9: edge labels flow through the interned-row join and the
    # canonical keys (tree / unicyclic / bicyclic all encode edge labels).
    ("transactions-elabel", 57, (3, 12, 1.4, 3), 2, 1, 2, SupportMeasure.TRANSACTIONS),
]


def _with_edge_labels(database, seed):
    """Clone a transaction DB, stamping a deterministic label on every edge."""
    rng = random.Random(seed)
    labelled = []
    for graph in database:
        clone = LabeledGraph(name=graph.name)
        for vertex in graph.vertices():
            clone.add_vertex(vertex, graph.label_of(vertex))
        for edge in graph.edges():
            u, v = edge.endpoints()
            clone.add_edge(u, v, rng.choice("xy"))
        labelled.append(clone)
    return labelled


def build_scenario(kind, seed, params):
    if kind == "single":
        return erdos_renyi_graph(*params, seed=seed)
    if kind == "planted":
        graph = erdos_renyi_graph(*params, seed=seed)
        planted = random_skinny_pattern(5, 1, 8, params[2], seed=seed + 1)
        inject_pattern(graph, planted, copies=3, seed=seed + 2)
        return graph
    if kind == "transactions":
        return random_transaction_database(*params, seed=seed)
    if kind == "transactions-elabel":
        return _with_edge_labels(
            random_transaction_database(*params, seed=seed), seed + 1
        )
    raise AssertionError(kind)


class TestFastPathParity:
    @pytest.mark.parametrize(
        "kind, seed, params, length, delta, sigma, measure", SCENARIOS
    )
    def test_output_identical_with_fast_path_disabled(
        self, monkeypatch, kind, seed, params, length, delta, sigma, measure
    ):
        graphs = build_scenario(kind, seed, params)
        fast = SkinnyMine(graphs, min_support=sigma, support_measure=measure).mine(
            length, delta
        )
        with monkeypatch.context() as context:
            disable_fast_path(context)
            reference = SkinnyMine(
                graphs, min_support=sigma, support_measure=measure
            ).mine(length, delta)
        assert serialised(fast) == serialised(reference)


class TestRowStorageParity:
    """ISSUE-9: interned (arena) rows must be observably identical to tuples.

    Every scenario is mined under both :func:`set_row_storage` modes and
    compared by full raw serialisation — the flat-arena join, subset
    slicing and merge-scan support counting must never change a pattern,
    support value or embedding.
    """

    @pytest.mark.parametrize(
        "kind, seed, params, length, delta, sigma, measure", SCENARIOS
    )
    def test_array_and_tuple_storage_mine_identically(
        self, kind, seed, params, length, delta, sigma, measure
    ):
        graphs = build_scenario(kind, seed, params)
        previous = set_row_storage("array")
        try:
            interned = SkinnyMine(
                graphs, min_support=sigma, support_measure=measure
            ).mine(length, delta)
            set_row_storage("tuple")
            tupled = SkinnyMine(
                graphs, min_support=sigma, support_measure=measure
            ).mine(length, delta)
        finally:
            set_row_storage(previous)
        assert serialised(interned) == serialised(tupled)


class TestMemoisationSoundness:
    """Memoised verdicts must not revive the PR-4 soundness/completeness gaps."""

    def test_seed_85_transaction_four_cycle_still_found(self):
        # ROADMAP's historical completeness gap: a frequent 4-cycle reachable
        # only through constraint-pending intermediates.  The memoised
        # invariant path must keep emitting it.
        database = random_transaction_database(3, 12, 1.4, 4, seed=85)
        miner = SkinnyMine(
            database, min_support=2, support_measure=SupportMeasure.TRANSACTIONS
        )
        mined = miner.mine(2, 1, validate=True)
        oracle = enumerate_and_check_spm(
            database, 2, 1, 2, max_edges=6,
            support_measure=SupportMeasure.TRANSACTIONS,
        )
        mined_keys = {canonical_key(p.graph.compact()[0]) for p in mined}
        oracle_keys = {canonical_key(p.graph.compact()[0]) for p in oracle}
        assert oracle_keys <= mined_keys
        assert any(
            p.graph.num_edges() == 4 and p.graph.num_vertices() == 4 for p in mined
        ), "the pending-repair 4-cycle disappeared"

    def test_seed_80_twig_twig_soundness_hole_stays_closed(self):
        # PR 4's second gap: a twig-to-twig diameter path with a smaller
        # label sequence, invisible to the per-edge Constraint III.  Every
        # emission must still verify the exact invariant (validate=True
        # re-checks the l-long δ-skinny predicate on each output).
        graph = erdos_renyi_graph(12, 1.5, 3, seed=80)
        miner = SkinnyMine(graph, min_support=2)
        mined = miner.mine(2, 1, validate=True)
        oracle = enumerate_and_check_spm(graph, 2, 1, 2, max_edges=6)
        mined_keys = {canonical_key(p.graph.compact()[0]) for p in mined}
        oracle_keys = {canonical_key(p.graph.compact()[0]) for p in oracle}
        unsound = {
            key
            for key, p in (
                (canonical_key(p.graph.compact()[0]), p) for p in mined
            )
            if p.num_edges <= 6
        } - oracle_keys
        assert not unsound, "memoisation revived the seed-80 soundness hole"
        assert mined_keys  # non-degenerate scenario

    def test_descriptor_cache_hits_across_requests_counters_reset(self):
        # The descriptor cache persists on the miner (verdicts are pure
        # functions of the abstract pattern); the per-request counters must
        # not.  A repeated mine() sees cache hits, reported independently.
        graph = erdos_renyi_graph(30, 1.8, 4, seed=3)
        miner = SkinnyMine(graph, min_support=2)
        miner.mine(3, 1)
        first = miner.last_report.level_statistics
        first_snapshot = dict(first.to_dict())
        miner.mine(3, 1)
        second = miner.last_report.level_statistics
        # The persistent cache answers the re-run's verifications.
        assert second.invariant_cache_hits >= second.patterns_emitted > 0
        # Counters are per-request: the second run neither merged into the
        # first report (the PR-3 SkinnyMine statistics bug class) nor
        # accumulated on top of it.
        assert second is not first
        assert first.to_dict() == first_snapshot
        assert (
            second.candidates_generated == first.candidates_generated
        ), "re-mining the same request must generate the same candidates"

    def test_descriptor_cache_is_exact_across_shapes(self):
        cache = DiameterDescriptorCache()
        from repro.graph.labeled_graph import build_graph

        path = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        descriptor = diameter_descriptor(path)
        assert descriptor == (2, ("a", "b", "c"))
        cache.store(path, ("t", "key"), None, descriptor)
        assert cache.lookup(path, ("t", "key"), None) == descriptor
        assert cache.lookup(path, ("t", "other"), None) is None
