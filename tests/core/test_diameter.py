"""Tests for canonical diameters, vertex levels and skinny predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diameter import (
    canonical_diameter,
    diameter_length,
    is_delta_skinny,
    is_l_long_delta_skinny,
    skinniness,
    vertex_levels,
)
from repro.graph.generators import random_labeled_path, random_skinny_pattern
from repro.graph.labeled_graph import LabeledGraph, build_graph


class TestCanonicalDiameter:
    def test_path_graph_diameter_is_itself(self, path_graph):
        assert canonical_diameter(path_graph) == [0, 1, 2, 3, 4]
        assert diameter_length(path_graph) == 4

    def test_figure3_canonical_diameter(self, figure3_graph):
        # Labels along 1..7 are a..g; the competing path ending at vertex 11
        # (label k) is lexicographically larger, so the backbone wins.
        assert canonical_diameter(figure3_graph) == [1, 2, 3, 4, 5, 6, 7]

    def test_lexicographically_smaller_branch_wins(self):
        # Y-shaped graph: two diameter paths with different end labels.
        graph = build_graph(
            {0: "m", 1: "m", 2: "m", 3: "a", 4: "z"},
            [(0, 1), (1, 2), (2, 3), (2, 4)],
        )
        # Diameter = 3; candidate endpoints: 0..3 (labels m,m,m,a) and 0..4
        # (labels m,m,m,z).  The 'a' ending is smaller once oriented.
        result = canonical_diameter(graph)
        labels = [graph.label_of(v) for v in result]
        assert labels == ["a", "m", "m", "m"]

    def test_id_tiebreak_on_equal_labels(self):
        graph = build_graph(
            {0: "a", 1: "b", 2: "a", 3: "b", 4: "a"},
            [(0, 1), (1, 2), (2, 3), (3, 4)],
        )
        # Palindromic labels: both orientations label-equal; ids break the tie.
        assert canonical_diameter(graph) == [0, 1, 2, 3, 4]

    def test_unique_for_any_connected_graph(self, triangle_graph):
        assert canonical_diameter(triangle_graph) in ([0, 1], [0, 2], [1, 2])
        assert len(canonical_diameter(triangle_graph)) == 2

    def test_disconnected_raises(self, two_triangles_graph):
        with pytest.raises(ValueError):
            canonical_diameter(two_triangles_graph)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            canonical_diameter(LabeledGraph())

    def test_single_vertex(self):
        graph = build_graph({0: "a"}, [])
        assert canonical_diameter(graph) == [0]
        assert diameter_length(graph) == 0

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=30, deadline=None)
    def test_canonical_diameter_invariant_under_relabeling(self, length, seed):
        path = random_labeled_path(length, 3, seed=seed)
        mapping = {vertex: vertex + 50 for vertex in path.vertices()}
        renamed = path.relabel_vertices(mapping)
        original = [path.label_of(v) for v in canonical_diameter(path)]
        relabeled = [renamed.label_of(v) for v in canonical_diameter(renamed)]
        assert original == relabeled


class TestVertexLevels:
    def test_figure3_levels(self, figure3_graph):
        levels = vertex_levels(figure3_graph, [1, 2, 3, 4, 5, 6, 7])
        assert levels[8] == 1
        assert levels[9] == 2
        assert levels[10] == 1
        assert levels[11] == 1
        assert all(levels[v] == 0 for v in range(1, 8))

    def test_levels_of_path_are_zero(self, path_graph):
        levels = vertex_levels(path_graph, [0, 1, 2, 3, 4])
        assert set(levels.values()) == {0}


class TestSkinnyPredicates:
    def test_figure3_is_6_long_2_skinny(self, figure3_graph):
        assert is_l_long_delta_skinny(figure3_graph, 6, 2)
        assert not is_l_long_delta_skinny(figure3_graph, 6, 1)
        assert not is_l_long_delta_skinny(figure3_graph, 5, 2)

    def test_path_is_zero_skinny(self, path_graph):
        assert is_delta_skinny(path_graph, 0)
        assert is_l_long_delta_skinny(path_graph, 4, 0)

    def test_skinniness_value(self, figure3_graph, path_graph):
        assert skinniness(figure3_graph) == 2
        assert skinniness(path_graph) == 0

    def test_disconnected_graph_is_not_skinny(self, two_triangles_graph):
        assert not is_delta_skinny(two_triangles_graph, 3)
        assert not is_l_long_delta_skinny(two_triangles_graph, 1, 3)

    def test_empty_graph(self):
        assert is_delta_skinny(LabeledGraph(), 0)
        assert not is_l_long_delta_skinny(LabeledGraph(), 0, 0)

    def test_invalid_parameters(self, path_graph):
        with pytest.raises(ValueError):
            is_delta_skinny(path_graph, -1)
        with pytest.raises(ValueError):
            is_l_long_delta_skinny(path_graph, -1, 0)
        with pytest.raises(ValueError):
            is_l_long_delta_skinny(path_graph, 1, -1)

    def test_skinniness_disconnected_raises(self, two_triangles_graph):
        with pytest.raises(ValueError):
            skinniness(two_triangles_graph)

    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_skinny_patterns_satisfy_predicate(self, backbone, delta, seed):
        if 2 * delta > backbone:
            return
        extra = 0 if delta == 0 else 2 * delta
        pattern = random_skinny_pattern(backbone, delta, backbone + 1 + extra, 3, seed=seed)
        assert is_l_long_delta_skinny(pattern, backbone, delta)
        assert skinniness(pattern) <= delta
