"""Tests for the generic direct-mining framework (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.framework import (
    DirectMiner,
    SkinnyConstraintDriver,
    check_continuity,
    check_reducibility,
    max_degree_constraint,
    min_size_constraint,
    skinny_constraint,
    uniform_degree_constraint,
)
from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern
from repro.graph.labeled_graph import build_graph, graph_from_paths


def pattern_universe():
    """A small explicit pattern universe used for property checks.

    Contains paths of several lengths, a star, a triangle, a square and a
    skinny Y shape — enough to exercise both positive and negative cases of
    the reducibility / continuity definitions.
    """
    universe = []
    for length in range(1, 5):
        labels = {i: "a" for i in range(length + 1)}
        edges = [(i, i + 1) for i in range(length)]
        universe.append(build_graph(labels, edges))
    universe.append(  # star
        build_graph({0: "a", 1: "a", 2: "a", 3: "a"}, [(0, 1), (0, 2), (0, 3)])
    )
    universe.append(  # triangle
        build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
    )
    universe.append(  # square (2-regular, all degrees equal)
        build_graph({0: "a", 1: "a", 2: "a", 3: "a"}, [(0, 1), (1, 2), (2, 3), (3, 0)])
    )
    universe.append(  # Y with a longer arm (3-long 1-skinny)
        build_graph(
            {0: "a", 1: "a", 2: "a", 3: "a", 4: "a"},
            [(0, 1), (1, 2), (2, 3), (2, 4)],
        )
    )
    return universe


class TestReducibility:
    def test_skinny_constraint_is_reducible(self):
        report = check_reducibility(skinny_constraint(3, 1), pattern_universe(), min_size=3)
        assert report.reducible
        # The minimal patterns are the bare length-3 paths.
        assert any(
            pattern.num_edges() == 3 and pattern.num_vertices() == 4
            for pattern in report.minimal_patterns
        )
        assert report.threshold_size == 3

    def test_max_degree_constraint_not_reducible(self):
        # Paper Section 5.2: MaxDegree < K admits only trivial minimal patterns.
        report = check_reducibility(
            max_degree_constraint(3), pattern_universe(), min_size=2
        )
        assert not report.reducible

    def test_min_size_constraint_reducible(self):
        report = check_reducibility(min_size_constraint(3), pattern_universe(), min_size=3)
        assert report.reducible
        assert all(p.num_edges() == 3 for p in report.minimal_patterns)

    def test_empty_universe(self):
        report = check_reducibility(min_size_constraint(1), [])
        assert not report.reducible
        assert report.minimal_patterns == []


class TestContinuity:
    def test_skinny_constraint_is_continuous_on_universe(self):
        predicate = skinny_constraint(3, 1)
        universe = pattern_universe()
        minimal = check_reducibility(predicate, universe, min_size=3).minimal_patterns
        report = check_continuity(predicate, universe, minimal)
        assert report.continuous

    def test_uniform_degree_constraint_not_continuous(self):
        # Paper Section 5.3: "all vertices have equal degree" is not continuous.
        predicate = uniform_degree_constraint()
        universe = pattern_universe()
        single_edge = [p for p in universe if p.num_edges() == 1]
        report = check_continuity(predicate, universe, minimal_patterns=single_edge)
        assert not report.continuous
        # The square (2-regular) is satisfying but removing any edge breaks it.
        assert any(p.num_edges() == 4 and p.degree(0) == 2 for p in report.violating_patterns)

    def test_min_size_constraint_continuous(self):
        predicate = min_size_constraint(2)
        universe = pattern_universe()
        minimal = check_reducibility(predicate, universe, min_size=2).minimal_patterns
        assert check_continuity(predicate, universe, minimal).continuous


class TestDirectMiner:
    def build_data(self):
        background = erdos_renyi_graph(120, 1.4, 25, seed=41)
        pattern = random_skinny_pattern(5, 1, 8, 25, seed=43)
        inject_pattern(background, pattern, copies=3, seed=47)
        return background, pattern

    def test_skinny_driver_equivalent_to_skinnymine(self):
        from repro.core import SkinnyMine

        background, _ = self.build_data()
        driver_results = DirectMiner(
            background, min_support=2, driver=SkinnyConstraintDriver()
        ).mine((5, 1))
        skinnymine_results = SkinnyMine(background, min_support=2).mine(5, 1)
        assert {p.canonical_form() for p in driver_results} == {
            p.canonical_form() for p in skinnymine_results
        }

    def test_precompute_and_index_reuse(self):
        background, _ = self.build_data()
        miner = DirectMiner(background, min_support=2, driver=SkinnyConstraintDriver())
        miner.precompute([(5, 1), (4, 1)])
        assert len(miner.index) == 2
        results = miner.mine((5, 1))
        assert miner.last_report is not None
        assert miner.last_report.served_from_index
        assert miner.last_report.num_patterns == len(results)

    def test_report_when_not_precomputed(self):
        background, _ = self.build_data()
        miner = DirectMiner(background, min_support=2, driver=SkinnyConstraintDriver())
        miner.mine((5, 1))
        assert not miner.last_report.served_from_index
        assert miner.last_report.num_minimal_patterns >= 1

    def test_minimal_pattern_index_api(self):
        from repro.core.framework import MinimalPatternIndex

        index = MinimalPatternIndex()
        index.store("k", ["x"], 0.5)
        assert index.get("k") == ["x"]
        assert index.get("missing") is None
        assert index.parameters() == ["k"]
        assert len(index) == 1

    def test_minimal_pattern_index_accepts_any_hashable_parameter(self):
        # The historical API keyed entries by arbitrary Hashable values; the
        # store-backed index must keep that working for in-process backends.
        from repro.core.framework import MinimalPatternIndex

        index = MinimalPatternIndex()
        parameter = frozenset({1, 2})
        index.store(parameter, ["y"], 0.25)
        assert index.get(parameter) == ["y"]
        assert index.build_seconds_for(parameter) == 0.25
        assert index.parameters() == [parameter]
        assert index.entries == {parameter: ["y"]}

    def test_unportable_parameters_match_by_equality_not_repr(self):
        # Equal-but-distinct instances whose reprs differ (default object
        # repr embeds id()) must resolve to the same index entry, as the old
        # dict-backed index guaranteed.
        from repro.core.framework import MinimalPatternIndex

        class Param:
            def __init__(self, value):
                self.value = value

            def __eq__(self, other):
                return isinstance(other, Param) and other.value == self.value

            def __hash__(self):
                return hash(("Param", self.value))

        index = MinimalPatternIndex()
        index.store(Param(1), ["entry"], 0.1)
        assert index.get(Param(1)) == ["entry"]
        assert index.get(Param(2)) is None
        index.store(Param(2), ["other"], 0.2)
        assert len(index) == 2

    def test_unportable_parameter_readable_from_second_instance(self, tmp_path):
        # Another process/instance reading the same store can't rebuild the
        # original object; it must see a hashable repr stand-in, not crash.
        from repro.core.framework import MinimalPatternIndex
        from repro.index.store import DiskPatternStore

        writer = MinimalPatternIndex(backend=DiskPatternStore(tmp_path), fingerprint="f")
        writer.store(frozenset({1, 2}), [], 0.1)
        reader = MinimalPatternIndex(backend=DiskPatternStore(tmp_path), fingerprint="f")
        assert reader.parameters() == [repr(frozenset({1, 2}))]
        assert reader.entries == {repr(frozenset({1, 2})): []}

    def test_direct_miner_with_disk_store(self, tmp_path):
        from repro.index.store import DiskPatternStore

        background, _ = self.build_data()
        store = DiskPatternStore(tmp_path)
        first = DirectMiner(
            background, min_support=2, driver=SkinnyConstraintDriver(), store=store
        )
        first.precompute([(5, 1)])
        # A second miner over the same directory sees the Stage-1 entry.
        second = DirectMiner(
            background,
            min_support=2,
            driver=SkinnyConstraintDriver(),
            store=DiskPatternStore(tmp_path),
        )
        second.mine((5, 1))
        assert second.last_report.served_from_index
