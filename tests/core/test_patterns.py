"""Tests for PathPattern, SkinnyPattern and GrowthState."""

from __future__ import annotations

import pytest

from repro.core.patterns import (
    GrowthState,
    PathPattern,
    SkinnyPattern,
    initial_state_from_path,
)
from repro.graph.embeddings import Embedding
from repro.graph.labeled_graph import build_graph


def simple_path_pattern() -> PathPattern:
    return PathPattern(
        labels=("a", "b", "c"),
        embeddings=((0, (10, 11, 12)), (0, (20, 21, 22))),
        support=2,
    )


class TestPathPattern:
    def test_length_and_graph(self):
        path = simple_path_pattern()
        assert path.length == 2
        graph = path.to_graph()
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 2
        assert [graph.label_of(v) for v in (0, 1, 2)] == ["a", "b", "c"]

    def test_embedding_objects(self):
        embeddings = simple_path_pattern().to_embedding_objects()
        assert len(embeddings) == 2
        assert embeddings[0].as_dict() == {0: 10, 1: 11, 2: 12}


class TestInitialState:
    def test_initial_state_shape(self):
        state = initial_state_from_path(simple_path_pattern())
        assert state.diameter_len == 2
        assert state.head == 0 and state.tail == 2
        assert state.diameter_vertices == [0, 1, 2]
        assert state.levels == {0: 0, 1: 0, 2: 0}
        assert state.dist_head == {0: 0, 1: 1, 2: 2}
        assert state.dist_tail == {0: 2, 1: 1, 2: 0}
        assert state.support == 2
        assert len(state.embeddings) == 2

    def test_non_canonical_orientation_rejected(self):
        path = PathPattern(labels=("c", "b", "a"), embeddings=(), support=0)
        with pytest.raises(ValueError):
            initial_state_from_path(path)

    def test_state_copy_is_independent(self):
        state = initial_state_from_path(simple_path_pattern())
        clone = state.copy()
        clone.pattern.add_vertex(99, "z")
        clone.levels[99] = 1
        assert 99 not in state.pattern
        assert 99 not in state.levels

    def test_next_vertex_id_and_levels(self):
        state = initial_state_from_path(simple_path_pattern())
        assert state.next_vertex_id() == 3
        assert state.vertices_at_level(0) == [0, 1, 2]
        assert state.vertices_at_level(1) == []
        assert state.max_level() == 0

    def test_diameter_label_sequence(self):
        state = initial_state_from_path(simple_path_pattern())
        assert state.diameter_label_sequence() == ("a", "b", "c")

    def test_to_pattern(self):
        state = initial_state_from_path(simple_path_pattern())
        pattern = state.to_pattern()
        assert isinstance(pattern, SkinnyPattern)
        assert pattern.diameter == [0, 1, 2]
        assert pattern.support == 2
        assert pattern.diameter_length == 2
        assert pattern.num_vertices == 3
        assert pattern.num_edges == 2

    def test_repr(self):
        state = initial_state_from_path(simple_path_pattern())
        assert "GrowthState" in repr(state)
        assert "SkinnyPattern" in repr(state.to_pattern())


class TestSkinnyPattern:
    def test_skinniness_and_labels(self):
        graph = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "z"}, [(0, 1), (1, 2), (1, 3)]
        )
        pattern = SkinnyPattern(
            graph=graph,
            diameter=[0, 1, 2],
            embeddings=[Embedding.from_dict({0: 0, 1: 1, 2: 2, 3: 3})],
            support=1,
        )
        assert pattern.skinniness == 1
        assert pattern.diameter_labels() == ("a", "b", "c")

    def test_canonical_form_matches_isomorphic_pattern(self):
        graph_a = build_graph({0: "a", 1: "b"}, [(0, 1)])
        graph_b = build_graph({5: "b", 7: "a"}, [(5, 7)])
        one = SkinnyPattern(graph_a, [0, 1], [], 0)
        two = SkinnyPattern(graph_b, [7, 5], [], 0)
        assert one.canonical_form() == two.canonical_form()
