"""Tests for the path orders (Definitions 2 and 3)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orders import (
    canonical_label_orientation,
    canonical_orientation,
    compare_lexicographic,
    compare_total,
    label_key,
    path_label_sequence,
    path_sort_key,
    smallest_path,
)
from repro.graph.labeled_graph import build_graph


class TestLexicographicOrder:
    def test_shorter_path_is_smaller(self):
        assert compare_lexicographic(("a",), ("a", "b")) == -1
        assert compare_lexicographic(("a", "b"), ("a",)) == 1

    def test_equal_length_compares_labels(self):
        assert compare_lexicographic(("a", "b"), ("a", "c")) == -1
        assert compare_lexicographic(("a", "c"), ("a", "b")) == 1

    def test_equal_sequences(self):
        assert compare_lexicographic(("a", "b"), ("a", "b")) == 0

    def test_first_difference_decides(self):
        assert compare_lexicographic(("a", "z", "a"), ("b", "a", "a")) == -1


class TestTotalOrder:
    def test_label_order_dominates(self):
        assert compare_total(("a", "b"), (5, 6), ("a", "c"), (0, 1)) == -1

    def test_id_tiebreak(self):
        assert compare_total(("a", "b"), (0, 1), ("a", "b"), (0, 2)) == -1
        assert compare_total(("a", "b"), (3, 1), ("a", "b"), (0, 2)) == 1

    def test_identical_paths(self):
        assert compare_total(("a",), (1,), ("a",), (1,)) == 0

    @given(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=5),
        st.lists(st.sampled_from("abc"), min_size=1, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_antisymmetry_of_lexicographic(self, left, right):
        forward = compare_lexicographic(tuple(left), tuple(right))
        backward = compare_lexicographic(tuple(right), tuple(left))
        assert forward == -backward


class TestCanonicalOrientation:
    def test_label_orientation_picks_smaller(self):
        assert canonical_label_orientation(("b", "a")) == ("a", "b")
        assert canonical_label_orientation(("a", "b")) == ("a", "b")

    def test_palindrome_keeps_forward(self):
        assert canonical_label_orientation(("a", "b", "a")) == ("a", "b", "a")

    def test_orientation_on_graph_path(self, path_graph):
        # path_graph labels: a-b-c-b-a; ids 0..4.  Palindromic labels, so the
        # id tie-break decides: forward [0..4] starts with 0 < 4.
        assert canonical_orientation(path_graph, [4, 3, 2, 1, 0]) == [0, 1, 2, 3, 4]
        assert canonical_orientation(path_graph, [0, 1, 2, 3, 4]) == [0, 1, 2, 3, 4]

    def test_orientation_prefers_smaller_labels(self):
        graph = build_graph({0: "z", 1: "m", 2: "a"}, [(0, 1), (1, 2)])
        assert canonical_orientation(graph, [0, 1, 2]) == [2, 1, 0]

    def test_smallest_path(self, path_graph):
        paths = [[2, 3, 4], [0, 1, 2]]
        assert smallest_path(path_graph, paths) == [0, 1, 2]

    def test_smallest_path_empty_raises(self, path_graph):
        import pytest

        with pytest.raises(ValueError):
            smallest_path(path_graph, [])

    def test_path_sort_key_orders_by_length_first(self, path_graph):
        short = path_sort_key(path_graph, [0, 1])
        long = path_sort_key(path_graph, [0, 1, 2])
        assert short < long

    def test_label_sequence(self, path_graph):
        assert path_label_sequence(path_graph, [0, 1, 2]) == ("a", "b", "c")

    def test_label_key_stringifies(self):
        assert label_key(3) == "3"
        assert label_key("x") == "x"

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_canonical_label_orientation_idempotent(self, labels):
        once = canonical_label_orientation(tuple(labels))
        assert canonical_label_orientation(once) == once
        assert once <= tuple(reversed(once))
