"""Cross-checked completeness matrix: SkinnyMine vs the reference enumerator.

The matrix spans the three axes the exactness work (ISSUE 4) had to close:

* **databases** — seeded single graphs and graph-transaction databases;
* **constraints** — all three built-ins (``skinny``, ``path``, ``diam-le``);
* **support measures** — embedding count, MNI and per-graph (transaction)
  support.

Under the anti-monotone measures (MNI, transactions) the miners must match
the exhaustive oracle *exactly* — set equality and support equality.  Under
raw embedding count (not anti-monotone: growing a pattern can split one
image into many) Stage 2 still prunes infrequent intermediates, so only
soundness is guaranteed there: everything reported is correct, frequent and
exactly counted.  ``docs/CORRECTNESS.md`` spells out the contract; this file
is its executable citation.

The structural regression pins live here too: the ROADMAP's missing 4-cycle
(seed 85), the mutual-repair theta graph, the cross-level 8-cycle, and the
twig-to-twig canonical-diameter violation (seed 80) that the per-edge
constraint checks cannot see.
"""

from __future__ import annotations

import pytest

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diammine import DiamMine, brute_force_frequent_paths
from repro.core.framework import (
    BoundedDiameterDriver,
    bounded_diameter_constraint,
)
from repro.core.reference import (
    enumerate_and_check_spm,
    enumerate_frequent_connected_subgraphs,
)
from repro.core.skinnymine import SkinnyMine
from repro.graph.canonical import canonical_key
from repro.graph.generators import (
    erdos_renyi_graph,
    random_transaction_database,
)
from repro.graph.labeled_graph import build_graph

MAX_EDGES = 6

SINGLE_GRAPH_SEEDS = (7, 23, 80, 85)
TRANSACTION_SEEDS = (11, 42, 85, 199)

SINGLE_MEASURES = (SupportMeasure.EMBEDDINGS, SupportMeasure.MNI)
TRANSACTION_MEASURES = (SupportMeasure.TRANSACTIONS, SupportMeasure.MNI)


def single_graph(seed):
    return erdos_renyi_graph(12, 1.5, 3, seed=seed)


def transaction_db(seed):
    return random_transaction_database(3, 12, 1.4, 4, seed=seed)


def keyed(patterns):
    return {canonical_key(p.graph.compact()[0]): p.support for p in patterns}


def assert_matches_oracle(mined, oracle, *, complete):
    mined_map = {k: s for k, s in keyed(mined).items()}
    oracle_map = keyed(oracle)
    extra = set(mined_map) - set(oracle_map)
    assert not extra, f"unsound: {len(extra)} pattern(s) not in the oracle"
    for key, support in mined_map.items():
        assert oracle_map[key] == support, "support mismatch vs oracle"
    if complete:
        missing = set(oracle_map) - set(mined_map)
        assert not missing, f"incomplete: {len(missing)} oracle pattern(s) missed"


# --------------------------------------------------------------------- #
# skinny
# --------------------------------------------------------------------- #
class TestSkinnyMatrix:
    @pytest.mark.parametrize("seed", SINGLE_GRAPH_SEEDS)
    @pytest.mark.parametrize("measure", SINGLE_MEASURES)
    def test_single_graph(self, seed, measure):
        graph = single_graph(seed)
        mined = SkinnyMine(graph, min_support=2, support_measure=measure).mine(
            2, 1, validate=True
        )
        oracle = enumerate_and_check_spm(
            graph, 2, 1, 2, max_edges=MAX_EDGES, support_measure=measure
        )
        assert_matches_oracle(
            [p for p in mined if p.num_edges <= MAX_EDGES],
            oracle,
            complete=measure.anti_monotone,
        )

    @pytest.mark.parametrize("seed", TRANSACTION_SEEDS)
    @pytest.mark.parametrize("measure", TRANSACTION_MEASURES)
    def test_transaction_database(self, seed, measure):
        database = transaction_db(seed)
        mined = SkinnyMine(database, min_support=2, support_measure=measure).mine(
            2, 1, validate=True
        )
        oracle = enumerate_and_check_spm(
            database, 2, 1, 2, max_edges=MAX_EDGES, support_measure=measure
        )
        assert_matches_oracle(
            [p for p in mined if p.num_edges <= MAX_EDGES],
            oracle,
            complete=True,
        )


# --------------------------------------------------------------------- #
# path (Stage 1 alone: DiamMine vs brute force, exact under EVERY measure)
# --------------------------------------------------------------------- #
class TestPathMatrix:
    @pytest.mark.parametrize("seed", SINGLE_GRAPH_SEEDS)
    @pytest.mark.parametrize(
        "measure", (SupportMeasure.EMBEDDINGS, SupportMeasure.MNI)
    )
    @pytest.mark.parametrize("length", (2, 3))
    def test_single_graph(self, seed, measure, length):
        context = MiningContext(single_graph(seed), 2, measure)
        mined = DiamMine(context).mine(length)
        brute = brute_force_frequent_paths(context, length)
        assert sorted(p.labels for p in mined) == sorted(p.labels for p in brute)
        assert {p.labels: p.support for p in mined} == {
            p.labels: p.support for p in brute
        }

    @pytest.mark.parametrize("seed", TRANSACTION_SEEDS)
    @pytest.mark.parametrize("measure", TRANSACTION_MEASURES)
    def test_transaction_database(self, seed, measure):
        context = MiningContext(transaction_db(seed), 2, measure)
        mined = DiamMine(context).mine(3)
        brute = brute_force_frequent_paths(context, 3)
        assert sorted(p.labels for p in mined) == sorted(p.labels for p in brute)
        assert {p.labels: p.support for p in mined} == {
            p.labels: p.support for p in brute
        }


# --------------------------------------------------------------------- #
# diam-le (bounded diameter, grown via pending intermediates)
# --------------------------------------------------------------------- #
def mine_bounded_diameter(graphs, bound, min_support, measure):
    context = MiningContext(graphs, min_support, measure)
    driver = BoundedDiameterDriver(max_edges=MAX_EDGES)
    results = []
    seen = set()
    for minimal in driver.mine_minimal(context, bound):
        for pattern in driver.grow(context, minimal, bound):
            key = canonical_key(pattern.graph.compact()[0])
            if key not in seen:
                seen.add(key)
                results.append(pattern)
    return results


def bounded_diameter_oracle(graphs, bound, min_support, measure):
    context = MiningContext(graphs, min_support, measure)
    predicate = bounded_diameter_constraint(bound)
    return [
        (pattern, support)
        for pattern, _, support in enumerate_frequent_connected_subgraphs(
            context, MAX_EDGES
        )
        if predicate(pattern)
    ]


class TestBoundedDiameterMatrix:
    @pytest.mark.parametrize("seed", SINGLE_GRAPH_SEEDS)
    @pytest.mark.parametrize("measure", SINGLE_MEASURES)
    def test_single_graph(self, seed, measure):
        graph = single_graph(seed)
        mined = mine_bounded_diameter(graph, 2, 2, measure)
        oracle = bounded_diameter_oracle(graph, 2, 2, measure)
        mined_map = keyed(mined)
        oracle_map = {
            canonical_key(pattern.compact()[0]): support
            for pattern, support in oracle
        }
        assert set(mined_map) <= set(oracle_map)
        for key, support in mined_map.items():
            assert oracle_map[key] == support
        if measure.anti_monotone:
            assert set(mined_map) == set(oracle_map)

    @pytest.mark.parametrize("seed", TRANSACTION_SEEDS[:2])
    def test_transaction_database(self, seed):
        database = transaction_db(seed)
        measure = SupportMeasure.TRANSACTIONS
        mined = mine_bounded_diameter(database, 2, 2, measure)
        oracle = bounded_diameter_oracle(database, 2, 2, measure)
        mined_map = keyed(mined)
        oracle_map = {
            canonical_key(pattern.compact()[0]): support
            for pattern, support in oracle
        }
        assert mined_map == oracle_map


# --------------------------------------------------------------------- #
# structural regression pins
# --------------------------------------------------------------------- #
class TestStructuralRegressions:
    def test_roadmap_missing_four_cycle(self):
        """The ROADMAP repro: seed 85's frequent 4-cycle is found and the
        full result matches enumerate_and_check_spm.
        """
        database = transaction_db(85)
        mined = SkinnyMine(database, min_support=2).mine(2, 1)
        oracle = enumerate_and_check_spm(database, 2, 1, 2)
        assert keyed(mined) == keyed(oracle)
        assert any(
            p.num_edges == 4 and p.num_vertices == 4 for p in mined
        ), "the frequent 4-cycle must be in the result"

    def test_mutual_repair_theta(self):
        """Two pendants that only become valid through each other (C5)."""
        graph = build_graph(
            {0: "a", 1: "b", 2: "c", 3: "d", 4: "e"},
            [(0, 1), (1, 2), (0, 3), (2, 4), (3, 4)],
        )
        database = [graph, graph.copy()]
        mined = SkinnyMine(database, min_support=2).mine(2, 1)
        oracle = enumerate_and_check_spm(database, 2, 1, 2)
        assert keyed(mined) == keyed(oracle)

    def test_cross_level_repair_eight_cycle(self):
        """An 8-cycle's far arm repairs across two growth levels."""
        cycle = build_graph(
            {i: label for i, label in enumerate("abcdefgh")},
            [(i, (i + 1) % 8) for i in range(8)],
        )
        database = [cycle, cycle.copy()]
        mined = SkinnyMine(database, min_support=2).mine(4, 2)
        oracle = enumerate_and_check_spm(database, 4, 2, 2)
        assert keyed(mined) == keyed(oracle)

    def test_closed_and_maximal_filters_see_through_pending_repairs(self):
        """A pattern emitted out of a pending excursion is a super-pattern of
        the excursion's reportable origin: the closed/maximal accounting
        must credit that origin, or the origin is wrongly reported as
        closed/maximal.

        The filters are cluster-local by contract (see SkinnyMine.mine), so
        on a-b-a-b cycle data only the (a,b,a)-cluster path — whose cluster
        emits the 4-cycle — is filtered; the (b,a,b) path's cluster does not
        report the cycle (its canonical diameter is (a,b,a)) and that path
        legitimately survives.
        """
        cycle = build_graph(
            {0: "a", 1: "b", 2: "a", 3: "b"},
            [(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        database = [cycle, cycle.copy()]
        for kwargs in ({"maximal_only": True}, {"closed_only": True}):
            result = SkinnyMine(database, min_support=2).mine(2, 1, **kwargs)
            shapes = sorted((p.num_vertices, p.num_edges) for p in result)
            assert shapes == [(3, 2), (4, 4)], (kwargs, result)
            surviving_paths = [p for p in result if p.num_edges == 2]
            assert [p.diameter_labels() for p in surviving_paths] == [
                ("b", "a", "b")
            ], surviving_paths

    def test_twig_to_twig_canonical_diameter_guard(self):
        """Seed 80: a twig–twig diameter path with smaller labels must keep
        the pattern out of this cluster (the per-edge Constraint III checks
        cannot see it; the emission-time Loop-Invariant check can).
        """
        graph = single_graph(80)
        mined = SkinnyMine(graph, min_support=2).mine(2, 1, validate=True)
        oracle = enumerate_and_check_spm(graph, 2, 1, 2, max_edges=MAX_EDGES)
        assert set(keyed(p for p in mined if p.num_edges <= MAX_EDGES)) <= set(
            keyed(oracle)
        )
