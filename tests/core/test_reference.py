"""Tests for the enumerate-and-check reference miner."""

from __future__ import annotations

import pytest

from repro.core.database import MiningContext
from repro.core.diameter import is_l_long_delta_skinny
from repro.core.reference import (
    enumerate_and_check_spm,
    enumerate_frequent_connected_subgraphs,
)
from repro.graph.labeled_graph import graph_from_paths


class TestEnumeration:
    def test_frequent_single_edges(self):
        graph = graph_from_paths([list("ab"), list("ab"), list("cd")])
        context = MiningContext(graph, 2)
        frequent = enumerate_frequent_connected_subgraphs(context, max_edges=1)
        assert len(frequent) == 1
        pattern, occurrences, support = frequent[0]
        assert support == 2
        assert sorted(str(pattern.label_of(v)) for v in pattern.vertices()) == ["a", "b"]

    def test_larger_patterns_enumerated(self):
        graph = graph_from_paths([list("abc"), list("abc")])
        context = MiningContext(graph, 2)
        frequent = enumerate_frequent_connected_subgraphs(context, max_edges=2)
        sizes = sorted(p.num_edges() for p, _, _ in frequent)
        assert sizes == [1, 1, 2]

    def test_max_edges_validation(self):
        graph = graph_from_paths([list("ab")])
        with pytest.raises(ValueError):
            enumerate_frequent_connected_subgraphs(MiningContext(graph, 1), 0)

    def test_max_patterns_cap(self):
        graph = graph_from_paths([list("abcdef"), list("abcdef")])
        context = MiningContext(graph, 2)
        capped = enumerate_frequent_connected_subgraphs(context, max_edges=4, max_patterns=2)
        assert len(capped) == 2


class TestEnumerateAndCheck:
    def test_finds_skinny_patterns(self):
        graph = graph_from_paths([list("abcd"), list("abcd")])
        results = enumerate_and_check_spm(graph, 3, 1, 2)
        assert len(results) == 1
        assert results[0].support == 2
        assert is_l_long_delta_skinny(results[0].graph, 3, 1)

    def test_respects_delta(self):
        # Star with center b: path a-b-a plus a twig c on the center.
        graph = graph_from_paths([list("aba"), list("aba")])
        graph.add_vertex(50, "c")
        graph.add_vertex(51, "c")
        graph.add_edge(1, 50)
        graph.add_edge(4, 51)
        zero_skinny = enumerate_and_check_spm(graph, 2, 0, 2)
        one_skinny = enumerate_and_check_spm(graph, 2, 1, 2)
        assert all(p.num_vertices == 3 for p in zero_skinny)
        assert any(p.num_vertices == 4 for p in one_skinny)

    def test_empty_result_when_threshold_high(self):
        graph = graph_from_paths([list("abc")])
        assert enumerate_and_check_spm(graph, 2, 1, 5) == []
