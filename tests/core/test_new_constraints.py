"""Tests for the path and bounded-diameter constraints and their drivers."""

from __future__ import annotations

from repro.core.database import MiningContext
from repro.core.framework import (
    BoundedDiameterDriver,
    PathConstraintDriver,
    bounded_diameter_constraint,
    check_continuity,
    check_reducibility,
    path_shape_constraint,
)
from repro.graph.labeled_graph import build_graph
from repro.graph.paths import diameter as graph_diameter


def pattern_universe():
    """Paths, a star, a triangle, a square and a Y — the property-check arena."""
    universe = []
    for length in range(1, 5):
        labels = {i: "a" for i in range(length + 1)}
        edges = [(i, i + 1) for i in range(length)]
        universe.append(build_graph(labels, edges))
    universe.append(  # star
        build_graph({0: "a", 1: "a", 2: "a", 3: "a"}, [(0, 1), (0, 2), (0, 3)])
    )
    universe.append(  # triangle
        build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
    )
    universe.append(  # square
        build_graph({0: "a", 1: "a", 2: "a", 3: "a"}, [(0, 1), (1, 2), (2, 3), (3, 0)])
    )
    universe.append(  # Y with a longer arm
        build_graph(
            {0: "a", 1: "a", 2: "a", 3: "a", 4: "a"},
            [(0, 1), (1, 2), (2, 3), (2, 4)],
        )
    )
    return universe


def data_graph():
    """Two a-b-c-d chains sharing a tail decoration (support-2 structures)."""
    return build_graph(
        {
            0: "a", 1: "b", 2: "c", 3: "d",
            10: "a", 11: "b", 12: "c", 13: "d",
            20: "x", 21: "y",
        },
        [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (12, 13), (20, 21), (3, 20)],
    )


class TestPathShapeConstraint:
    def test_predicate(self):
        predicate = path_shape_constraint(2)
        assert predicate(build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)]))
        # Wrong length, branching, and cycles all fail.
        assert not predicate(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        assert not predicate(
            build_graph({0: "a", 1: "a", 2: "a", 3: "a"}, [(0, 1), (0, 2), (0, 3)])
        )
        assert not predicate(
            build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        )

    def test_reducible_and_continuous_on_universe(self):
        predicate = path_shape_constraint(3)
        reducibility = check_reducibility(predicate, pattern_universe(), min_size=3)
        assert reducibility.reducible
        assert all(p.num_edges() == 3 for p in reducibility.minimal_patterns)
        continuity = check_continuity(
            predicate, pattern_universe(), reducibility.minimal_patterns
        )
        assert continuity.continuous

    def test_driver_returns_paths_only(self):
        context = MiningContext(data_graph(), min_support=2)
        driver = PathConstraintDriver()
        minimal = driver.mine_minimal(context, 3)
        assert minimal, "the a-b-c-d chain occurs twice"
        predicate = path_shape_constraint(3)
        for path in minimal:
            grown = driver.grow(context, path, 3)
            assert len(grown) == 1
            assert predicate(grown[0].graph)
            assert grown[0].support >= 2

    def test_driver_include_minimal_false_is_empty(self):
        context = MiningContext(data_graph(), min_support=2)
        driver = PathConstraintDriver(include_minimal=False)
        (path, *_) = driver.mine_minimal(context, 3)
        assert driver.grow(context, path, 3) == []


class TestBoundedDiameterConstraint:
    def test_predicate(self):
        predicate = bounded_diameter_constraint(1)
        assert predicate(build_graph({0: "a", 1: "b"}, [(0, 1)]))
        assert predicate(  # triangle: diameter 1
            build_graph({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        )
        assert not predicate(build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)]))
        assert not predicate(build_graph({0: "a"}, []))  # no edge

    def test_reducible_and_continuous_on_universe(self):
        predicate = bounded_diameter_constraint(1)
        reducibility = check_reducibility(predicate, pattern_universe(), min_size=1)
        assert reducibility.reducible
        # Single edges are minimal; so is the triangle (its strict
        # subpatterns are 2-paths with diameter 2 > 1).
        sizes = {p.num_edges() for p in reducibility.minimal_patterns}
        assert 1 in sizes and 3 in sizes
        continuity = check_continuity(
            predicate, pattern_universe(), reducibility.minimal_patterns
        )
        assert continuity.continuous

    def test_minimal_patterns_are_frequent_edges(self):
        context = MiningContext(data_graph(), min_support=2)
        driver = BoundedDiameterDriver()
        minimal = driver.mine_minimal(context, 2)
        shapes = {tuple(sorted(p.diameter_labels())) for p in minimal}
        assert shapes == {("a", "b"), ("b", "c"), ("c", "d")}
        assert all(p.num_edges == 1 and p.support >= 2 for p in minimal)

    def test_growth_preserves_constraint_and_support(self):
        context = MiningContext(data_graph(), min_support=2)
        driver = BoundedDiameterDriver()
        predicate = bounded_diameter_constraint(2)
        grown = []
        for minimal in driver.mine_minimal(context, 2):
            grown.extend(driver.grow(context, minimal, 2))
        assert any(p.num_edges == 2 for p in grown), "a-b-c / b-c-d should grow"
        for pattern in grown:
            assert predicate(pattern.graph)
            assert graph_diameter(pattern.graph) <= 2
            assert pattern.support >= 2
            # Embeddings really are occurrences of the pattern.
            for embedding in pattern.embeddings:
                data = context.graph(embedding.graph_index)
                mapping = embedding.as_dict()
                for edge in pattern.graph.edges():
                    assert data.has_edge(mapping[edge.u], mapping[edge.v])
                for vertex, target in mapping.items():
                    assert str(data.label_of(target)) == str(
                        pattern.graph.label_of(vertex)
                    )

    def test_max_edges_cap(self):
        context = MiningContext(data_graph(), min_support=2)
        driver = BoundedDiameterDriver(max_edges=1)
        for minimal in driver.mine_minimal(context, 2):
            assert driver.grow(context, minimal, 2) == [minimal]

    def test_max_patterns_cap(self):
        context = MiningContext(data_graph(), min_support=2)
        driver = BoundedDiameterDriver(max_patterns=1)
        (minimal, *_) = driver.mine_minimal(context, 2)
        assert len(driver.grow(context, minimal, 2)) <= 1
