"""Temporal collaboration analysis on DBLP-style author timelines.

Reproduces the workflow of the paper's DBLP case study (Section 6.3,
Figures 21-22) on the synthetic stand-in dataset: each author is a timeline
graph of year nodes with collaboration-strength labels attached
(P/S/J/B × levels 1-3).  Skinny patterns whose backbone spans most of the
timeline are temporal collaboration patterns; the example classifies them
into "rising-star" trajectories (early junior collaborations followed by
prolific ones) and "early-senior" trajectories (strong collaborators from
the start).

Run with::

    python examples/dblp_collaboration.py
"""

from __future__ import annotations

from repro import SkinnyMine
from repro.datasets.dblp import DBLPConfig, generate_dblp_dataset


def collaboration_labels(pattern) -> list[str]:
    """Collaboration labels of a mined pattern (everything but the year nodes)."""
    return sorted(
        str(pattern.graph.label_of(v))
        for v in pattern.graph.vertices()
        if str(pattern.graph.label_of(v)) != "Y"
    )


def main() -> None:
    config = DBLPConfig(
        num_authors=24,
        career_length=12,
        authors_per_archetype=3,
        noise_probability=0.1,
        seed=5,
    )
    dataset = generate_dblp_dataset(config)
    print(f"{len(dataset.graphs)} author timelines of {config.career_length} years "
          f"({config.authors_per_archetype} authors per planted archetype)")

    target_length = config.career_length - 1
    miner = SkinnyMine(dataset.graphs, min_support=3)
    patterns = miner.mine(length=target_length, delta=1, closed_only=True)
    print(f"\nSkinnyMine found {len(patterns)} closed {target_length}-long "
          f"1-skinny temporal patterns (support >= 3 authors)")

    rising, early_senior, other = [], [], []
    for pattern in patterns:
        labels = collaboration_labels(pattern)
        if not labels:
            other.append(pattern)
        elif all(label[0] in "SP" for label in labels):
            early_senior.append(pattern)
        elif any(label[0] in "BJ" for label in labels) and any(
            label.startswith("P") for label in labels
        ):
            rising.append(pattern)
        else:
            other.append(pattern)

    print(f"  rising-star trajectories (junior -> prolific):   {len(rising)}")
    print(f"  early-senior trajectories (senior/prolific only): {len(early_senior)}")
    print(f"  other timeline patterns:                          {len(other)}")

    def show(title, group):
        if not group:
            return
        sample = max(group, key=lambda p: p.num_vertices)
        print(f"\n{title} (support {sample.support}, "
              f"{sample.num_vertices} vertices): collaborations "
              f"{collaboration_labels(sample)}")

    show("example rising-star pattern", rising)
    show("example early-senior pattern", early_senior)


if __name__ == "__main__":
    main()
