"""Mobile data mining: popular travel routes with associated context.

The paper's first motivating application (Section 1): in location-based
services, a skinny pattern's long backbone is a popular travel route and its
twigs are the context attached to each stop (check-ins, photos, purchases).

This example generates a synthetic trajectory dataset in which several users
follow the same two popular routes (with personal context), mines the
database for route-length skinny patterns, and prints the recovered routes
with the context most commonly attached to them.

Run with::

    python examples/mobility_trajectories.py
"""

from __future__ import annotations

from collections import Counter

from repro import SkinnyMine
from repro.datasets.trajectories import TrajectoryConfig, generate_trajectory_dataset


def main() -> None:
    config = TrajectoryConfig(
        num_users=24,
        route_length=7,
        num_popular_routes=2,
        users_per_route=6,
        context_probability=0.5,
        seed=11,
    )
    dataset = generate_trajectory_dataset(config)
    print(f"{len(dataset.graphs)} user trajectories, "
          f"{config.num_popular_routes} planted popular routes "
          f"of length {config.route_length}")
    for index, route in enumerate(dataset.popular_routes):
        print(f"  planted route {index}: {' -> '.join(route)}")

    # Mine across users: a pattern must appear in at least 5 users' trajectories.
    miner = SkinnyMine(dataset.graphs, min_support=5)
    patterns = miner.mine(length=config.route_length, delta=1, closed_only=True)
    print(f"\nSkinnyMine found {len(patterns)} closed {config.route_length}-long "
          f"1-skinny patterns (support >= 5 users)")

    # Report each recovered route backbone and its attached context labels.
    context_labels = Counter()
    for pattern in patterns:
        backbone = [str(pattern.graph.label_of(v)) for v in pattern.diameter]
        twigs = [
            str(pattern.graph.label_of(v))
            for v in pattern.graph.vertices()
            if v not in set(pattern.diameter)
        ]
        context_labels.update(twigs)
        print(f"  route: {' -> '.join(backbone)}  "
              f"(support {pattern.support}, context: {sorted(twigs) or 'none'})")

    recovered_backbones = {
        tuple(str(p.graph.label_of(v)) for v in p.diameter) for p in patterns
    }
    recovered = sum(
        1
        for route in dataset.popular_routes
        if tuple(route) in recovered_backbones or tuple(reversed(route)) in recovered_backbones
    )
    print(f"\nplanted routes recovered: {recovered}/{len(dataset.popular_routes)}")
    if context_labels:
        print(f"most common context on popular routes: "
              f"{context_labels.most_common(3)}")


if __name__ == "__main__":
    main()
