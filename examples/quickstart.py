"""Quickstart: mine l-long δ-skinny patterns from a synthetic graph.

This example walks through the full public API in a few lines:

1. generate an Erdős–Rényi background graph;
2. inject a known skinny pattern several times (our ground truth);
3. run SkinnyMine with a diameter-length constraint and a skinniness bound;
4. inspect the result: supports, diameters, and whether the injected pattern
   was recovered;
5. see the Stage-1 exactness mode at work: the default ``exact`` mode finds
   every frequent diameter, the opt-in ``pruned`` mode (the paper's literal
   Algorithm 2) can miss some under embedding-count support.

The printed pattern counts are asserted, so this example doubles as a smoke
test (CI runs it in the docs job).  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SkinnyMine
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
)
from repro.graph.isomorphism import are_isomorphic


def main() -> None:
    # 1. A labeled background graph: 140 vertices, average degree 1.5,
    #    25 distinct vertex labels.
    background = erdos_renyi_graph(140, 1.5, 25, seed=1)

    # 2. The pattern we plant: backbone of length 7, twigs within distance 1,
    #    11 vertices total.  Three copies give it support 3.
    planted = random_skinny_pattern(
        backbone_length=7, skinniness=1, num_vertices=11, num_labels=25, seed=2
    )
    inject_pattern(background, planted, copies=3, seed=3)
    print(f"data graph: {background.num_vertices()} vertices, "
          f"{background.num_edges()} edges")
    print(f"planted pattern: {planted.num_vertices()} vertices, "
          f"{planted.num_edges()} edges, diameter 7")

    # 3. Mine every 7-long 1-skinny pattern with at least 3 embeddings.
    #    Stage 1 runs in the default exact mode: every frequent diameter is
    #    found, whatever the support measure.
    miner = SkinnyMine(background, min_support=3)
    patterns = miner.mine(length=7, delta=1)
    report = miner.last_report
    print(f"\nSkinnyMine found {len(patterns)} patterns "
          f"({report.num_diameters} canonical diameters, "
          f"stage-1 mode '{miner.stage1_mode.value}') in "
          f"{report.total_seconds:.2f}s "
          f"(Stage I {report.diammine_seconds:.2f}s, "
          f"Stage II {report.levelgrow_seconds:.2f}s)")
    assert len(patterns) == 14, len(patterns)
    assert report.num_diameters == 3, report.num_diameters

    # 4. Inspect the results.
    largest = max(patterns, key=lambda p: p.num_edges)
    print(f"largest pattern: {largest.num_vertices} vertices, "
          f"{largest.num_edges} edges, support {largest.support}")
    recovered = any(are_isomorphic(p.graph, planted) for p in patterns)
    print(f"planted pattern recovered: {recovered}")
    assert recovered

    # Closed patterns only (Algorithm 3's output filter) — a much smaller set.
    closed = miner.mine(length=7, delta=1, closed_only=True)
    print(f"closed patterns only: {len(closed)}")
    assert len(closed) == 3, len(closed)

    # 5. The exactness mode, demonstrated.  At σ=2 this data holds frequent
    #    diameters whose sub-paths collapse to a single image (two injected
    #    copies sharing background structure): the exact default keeps them,
    #    the opt-in pruned mode — exact only under anti-monotone measures —
    #    loses them.  The engaged mode is recorded in every index-store key,
    #    so entries built under different modes never alias.
    exact_diameters = SkinnyMine(background, min_support=2).diameters_for(7)
    pruned_diameters = SkinnyMine(
        background, min_support=2, stage1_mode="pruned"
    ).diameters_for(7)
    print(f"\nfrequent 7-diameters at sigma=2: exact mode {len(exact_diameters)}, "
          f"pruned mode {len(pruned_diameters)}")
    assert len(pruned_diameters) < len(exact_diameters), (
        len(pruned_diameters), len(exact_diameters),
    )

    # Direct-mining style usage: pre-compute canonical diameters for several
    # length constraints, then answer requests from the index.
    counts = miner.precompute([6, 7])
    print(f"\npre-computed diameter index: {counts}")
    by_length = miner.mine_range(6, 7, delta=1)
    for length, result in sorted(by_length.items()):
        print(f"  l={length}: {len(result)} patterns")
    assert {length: len(result) for length, result in by_length.items()} == {
        6: 21, 7: 14,
    }, by_length


if __name__ == "__main__":
    main()
