"""Persistent index + mining service: build once, serve many, update in place.

This example exercises the new serving subsystem end to end:

1. build a synthetic data graph with injected skinny patterns;
2. precompute Stage 1 for several diameter lengths into a **disk store**
   (parallel across lengths);
3. answer batched :class:`MineRequest` objects — the second pass is served
   entirely from the warm store and result cache;
4. edit the graph through an edge delta and watch the index get **repaired**,
   not rebuilt.

Run with::

    python examples/index_service.py

The equivalent CLI session::

    repro index build --data demo --store /tmp/repro-index --lengths 4-6 --min-support 2
    repro mine --data demo --store /tmp/repro-index -l 6 -d 1 --min-support 2 --top-k 5
"""

from __future__ import annotations

import tempfile

from repro import EdgeDelta, MineRequest, MiningService, Query
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
)
from repro.index import DiskPatternStore


def main() -> None:
    background = erdos_renyi_graph(150, 1.5, 25, seed=1)
    planted = random_skinny_pattern(6, 1, 9, 25, seed=2)
    inject_pattern(background, planted, copies=3, seed=3)

    store_root = tempfile.mkdtemp(prefix="repro-index-")
    service = MiningService(background, store=DiskPatternStore(store_root))

    # 1. Offline: Stage 1 for several lengths, in parallel, persisted to disk.
    counts = service.precompute([4, 5, 6], min_support=2, processes=2)
    print(f"index store at {store_root}")
    for length, count in sorted(counts.items()):
        print(f"  l={length}: {count} minimal pattern(s)")

    # 2. Online: batched requests; repeats hit the result cache.  Generic
    #    Query objects and legacy MineRequest shims mix freely in one batch
    #    (MineRequest is the deprecated spelling of the skinny Query).
    requests = [
        Query("skinny", {"length": 6, "delta": 1}, min_support=2, top_k=5),
        MineRequest(length=5, delta=1, min_support=2),
        Query("skinny", {"length": 6, "delta": 1}, min_support=2, top_k=5),  # duplicate
    ]
    for response in service.serve_batch(requests):
        stats = response.stats
        source = (
            "result cache"
            if stats.result_cache_hit
            else ("warm index" if stats.served_from_store else "cold")
        )
        params = dict(response.query.params)
        print(
            f"l={params['length']} δ={params['delta']}: "
            f"{len(response.patterns)} pattern(s) in {stats.total_seconds:.4f}s [{source}]"
        )

    # 3. The data changes: repair the index instead of rebuilding it.
    victim = next(iter(background.edges()))
    report = service.apply_delta([EdgeDelta.remove_edge(victim.u, victim.v)])
    print(
        f"delta applied: {report.entries_repaired} entr(ies) repaired, "
        f"{report.entries_migrated} migrated untouched, "
        f"{report.patterns_dropped} pattern(s) dropped"
    )
    response = service.mine(MineRequest(length=6, delta=1, min_support=2, top_k=5))
    print(
        f"post-delta l=6 answer: {len(response.patterns)} pattern(s) "
        f"[{'warm index' if response.stats.served_from_store else 'cold'}]"
    )


if __name__ == "__main__":
    main()
