"""Information diffusion analysis in a microblogging network (Weibo-style).

The paper's second motivating application and the Section 6.3 Weibo case
study: skinny patterns mined from retweet conversations reveal long diffusion
chains and the roles users play in them (Figure 24 shows a 13-long 3-skinny
chain where the root author keeps re-engaging with her followers).

This example generates synthetic conversations with a planted
root-re-engagement chain, mines them for long diffusion patterns and reports
how often the root re-appears along the recovered chains.

Run with::

    python examples/information_diffusion.py
"""

from __future__ import annotations

from repro import SkinnyMine
from repro.datasets.weibo import ROOT_LABEL, WeiboConfig, generate_weibo_dataset


def main() -> None:
    config = WeiboConfig(
        num_conversations=16,
        planted_conversations=4,
        chain_length=9,
        background_retweets=14,
        seed=7,
    )
    dataset = generate_weibo_dataset(config)
    print(f"{len(dataset.graphs)} conversations "
          f"({len(dataset.planted_conversation_ids)} carry the planted diffusion chain)")

    miner = SkinnyMine(dataset.graphs, min_support=3)
    patterns = miner.mine(length=config.chain_length, delta=1, closed_only=True)
    report = miner.last_report
    print(f"\nSkinnyMine found {len(patterns)} closed {config.chain_length}-long "
          f"1-skinny diffusion patterns in {report.total_seconds:.2f}s")

    for pattern in sorted(patterns, key=lambda p: -p.support)[:5]:
        backbone = [str(pattern.graph.label_of(v)) for v in pattern.diameter]
        root_mentions = backbone.count(ROOT_LABEL)
        print(f"  chain {' - '.join(backbone)}  "
              f"(support {pattern.support}, root appears {root_mentions}x)")

    re_engagement = [
        p
        for p in patterns
        if [str(p.graph.label_of(v)) for v in p.diameter].count(ROOT_LABEL) >= 2
    ]
    print(f"\npatterns where the root user re-engages along the chain: "
          f"{len(re_engagement)} — the Figure 24 behaviour")


if __name__ == "__main__":
    main()
