"""Two different constraints through one engine: the unified query API.

The paper's Section-5 point is that SkinnyMine is one instance of a generic
two-stage recipe for any reducible + continuous constraint.  This example
makes that concrete at the API level:

1. one :class:`repro.api.MiningEngine` over one data graph and one disk
   store;
2. three :class:`repro.api.Query` objects — the skinny constraint, l-long
   path patterns and bounded-diameter patterns — answered through the same
   ``engine.run`` code path;
3. the store afterwards holds entries for every constraint, keyed by
   ``StoreKey.constraint_id``, so each is served warm on the next run;
4. a custom constraint registered on the fly with
   :func:`repro.api.register_constraint` and served like the built-ins.

Run with::

    python examples/constraints.py

The equivalent CLI session::

    repro mine --data demo --store /tmp/repro-idx -l 6 -d 1 --min-support 2
    repro mine --data demo --store /tmp/repro-idx --constraint path --param length=5 --min-support 2
    repro mine --data demo --store /tmp/repro-idx --constraint diam-le --param k=2 --min-support 3
    repro index info --store /tmp/repro-idx
"""

from __future__ import annotations

import tempfile

from repro.api import MiningEngine, ParamSpec, Query, register_constraint
from repro.core.framework import BoundedDiameterDriver
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
)
from repro.index import DiskPatternStore


def main() -> None:
    background = erdos_renyi_graph(150, 1.5, 25, seed=1)
    planted = random_skinny_pattern(6, 1, 9, 25, seed=2)
    inject_pattern(background, planted, copies=3, seed=3)

    store_root = tempfile.mkdtemp(prefix="repro-constraints-")
    engine = MiningEngine(background, store=DiskPatternStore(store_root))

    # 1. Three constraints, one entry point.
    queries = [
        Query("skinny", {"length": 6, "delta": 1}, min_support=2, top_k=5),
        Query("path", {"length": 5}, min_support=2, top_k=5),
        Query("diam-le", {"k": 2}, min_support=3, top_k=5),
    ]
    for query in queries:
        result = engine.run(query)
        stats = result.stats
        print(
            f"{query.constraint_id:<8s} {dict(query.params)}: "
            f"{len(result.patterns)} pattern(s) "
            f"(stage 1 {stats.stage_one_seconds:.4f}s, "
            f"stage 2 {stats.stage_two_seconds:.4f}s)"
        )
        for pattern in result.patterns[:3]:
            print(
                f"    support={pattern.support:<4d} |V|={pattern.num_vertices:<3d}"
                f" |E|={pattern.num_edges}"
            )

    # 2. Every constraint now owns entries in the same store directory.
    print(f"\nstore at {store_root}:")
    for entry in engine.store.info():
        print(
            f"  [{entry['constraint_id']}] {entry['parameter']} — "
            f"{entry['num_patterns']} minimal pattern(s)"
        )

    # 3. A custom constraint plugs into the same machinery.
    register_constraint(
        "diam-tiny",
        lambda params, caps, include_minimal: BoundedDiameterDriver(
            max_edges=3, include_minimal=include_minimal
        ),
        params=(ParamSpec("k", int, required=True, minimum=1),),
        description="bounded diameter with at most 3 edges",
        deduplicate=True,
        replace=True,
    )
    result = engine.run(Query("diam-tiny", {"k": 2}, min_support=3, top_k=5))
    print(f"\ncustom 'diam-tiny' constraint: {len(result.patterns)} pattern(s)")


if __name__ == "__main__":
    main()
