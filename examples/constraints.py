"""Two different constraints through one engine: the unified query API.

The paper's Section-5 point is that SkinnyMine is one instance of a generic
two-stage recipe for any reducible + continuous constraint.  This example
makes that concrete at the API level:

1. one :class:`repro.api.MiningEngine` over one data graph and one disk
   store;
2. three :class:`repro.api.Query` objects — the skinny constraint, l-long
   path patterns and bounded-diameter patterns — answered through the same
   ``engine.run`` code path;
3. the store afterwards holds entries for every constraint, keyed by
   ``StoreKey.constraint_id`` — with the engine's Stage-1 exactness mode
   (``docs/CORRECTNESS.md``) recorded in every path-indexed parameter, so
   exact and pruned entries never alias;
4. a custom constraint registered on the fly with
   :func:`repro.api.register_constraint` and served like the built-ins.

The printed pattern counts are asserted, so this example doubles as a smoke
test (CI runs it in the docs job).  Run with::

    python examples/constraints.py

The equivalent CLI session::

    repro mine --data demo --store /tmp/repro-idx -l 6 -d 1 --min-support 2
    repro mine --data demo --store /tmp/repro-idx --constraint path --param length=5 --min-support 2
    repro mine --data demo --store /tmp/repro-idx --constraint diam-le --param k=2 --min-support 3
    repro index info --store /tmp/repro-idx
"""

from __future__ import annotations

import tempfile

from repro.api import MiningEngine, ParamSpec, Query, register_constraint
from repro.core.framework import BoundedDiameterDriver
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_skinny_pattern,
)
from repro.index import DiskPatternStore


def main() -> None:
    background = erdos_renyi_graph(150, 1.5, 25, seed=1)
    planted = random_skinny_pattern(6, 1, 9, 25, seed=2)
    inject_pattern(background, planted, copies=3, seed=3)

    store_root = tempfile.mkdtemp(prefix="repro-constraints-")
    engine = MiningEngine(background, store=DiskPatternStore(store_root))
    print(f"engine stage-1 mode: {engine.stage1_mode.value}")

    # 1. Three constraints, one entry point.
    queries = [
        Query("skinny", {"length": 6, "delta": 1}, min_support=2, top_k=5),
        Query("path", {"length": 5}, min_support=2, top_k=5),
        Query("diam-le", {"k": 2}, min_support=3, top_k=5),
    ]
    counts = {}
    for query in queries:
        result = engine.run(query)
        stats = result.stats
        counts[query.constraint_id] = len(result.patterns)
        print(
            f"{query.constraint_id:<8s} {dict(query.params)}: "
            f"{len(result.patterns)} pattern(s) "
            f"(stage 1 {stats.stage_one_seconds:.4f}s, "
            f"stage 2 {stats.stage_two_seconds:.4f}s)"
        )
        for pattern in result.patterns[:3]:
            print(
                f"    support={pattern.support:<4d} |V|={pattern.num_vertices:<3d}"
                f" |E|={pattern.num_edges}"
            )
    assert counts == {"skinny": 5, "path": 5, "diam-le": 5}, counts

    # 2. Every constraint now owns entries in the same store directory; the
    #    path-indexed ones carry the exactness mode in their parameter.
    print(f"\nstore at {store_root}:")
    entries = engine.store.info()
    for entry in entries:
        print(
            f"  [{entry['constraint_id']}] {entry['parameter']} — "
            f"{entry['num_patterns']} minimal pattern(s)"
        )
    assert {entry["constraint_id"] for entry in entries} == {
        "skinny", "path", "diam-le",
    }
    assert all(
        entry["parameter"].get("stage1_mode") == "exact"
        for entry in entries
        if entry["constraint_id"] in ("skinny", "path")
    ), entries

    # 3. A custom constraint plugs into the same machinery.
    register_constraint(
        "diam-tiny",
        lambda params, caps, include_minimal: BoundedDiameterDriver(
            max_edges=3, include_minimal=include_minimal
        ),
        params=(ParamSpec("k", int, required=True, minimum=1),),
        description="bounded diameter with at most 3 edges",
        deduplicate=True,
        replace=True,
    )
    result = engine.run(Query("diam-tiny", {"k": 2}, min_support=3, top_k=5))
    print(f"\ncustom 'diam-tiny' constraint: {len(result.patterns)} pattern(s)")
    assert len(result.patterns) == 5, len(result.patterns)


if __name__ == "__main__":
    main()
