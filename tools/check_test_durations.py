#!/usr/bin/env python
"""Soft per-test duration budget over pytest's ``--durations`` report.

Reads a captured pytest output (or stdin), finds the "slowest durations"
entries, and emits a warning for every *call* phase that exceeds the budget
(default 10s).  The check is advisory by design — it exits 0 either way
unless ``--strict`` is passed — so a slow test shows up as a GitHub
annotation long before anyone is tempted to gate on wall clock.

Usage::

    pytest -q --durations=15 2>&1 | tee out.txt
    python tools/check_test_durations.py out.txt --budget 10
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Tuple

# e.g. "12.34s call     tests/core/test_levelgrow.py::TestX::test_y"
_DURATION_LINE = re.compile(
    r"^\s*(?P<seconds>\d+(?:\.\d+)?)s\s+(?P<phase>call|setup|teardown)\s+(?P<test>\S+)"
)


def parse_durations(lines) -> List[Tuple[float, str, str]]:
    """``(seconds, phase, test id)`` triples from a pytest report."""
    entries = []
    for line in lines:
        match = _DURATION_LINE.match(line)
        if match:
            entries.append(
                (float(match.group("seconds")), match.group("phase"), match.group("test"))
            )
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "report",
        nargs="?",
        help="captured pytest output (defaults to stdin)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="per-test call-phase budget in seconds (default: 10)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any test exceeds the budget",
    )
    args = parser.parse_args(argv)

    if args.report:
        try:
            with open(args.report, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as error:
            print(f"check_test_durations: cannot read report: {error}", file=sys.stderr)
            return 0  # a missing report must not fail a soft check
    else:
        lines = sys.stdin.readlines()

    entries = parse_durations(lines)
    if not entries:
        print(
            "check_test_durations: no duration entries found "
            "(was pytest run with --durations=N?)"
        )
        return 0

    over_budget = [
        (seconds, test)
        for seconds, phase, test in entries
        if phase == "call" and seconds > args.budget
    ]
    slowest = max(seconds for seconds, _, _ in entries)
    print(
        f"check_test_durations: {len(entries)} entries, slowest {slowest:.2f}s, "
        f"budget {args.budget:.0f}s/test"
    )
    for seconds, test in sorted(over_budget, reverse=True):
        # ::warning:: renders as an annotation on GitHub Actions and as a
        # plain line everywhere else.
        print(f"::warning::slow test {test} took {seconds:.2f}s (> {args.budget:.0f}s)")
    if over_budget:
        print(f"check_test_durations: {len(over_budget)} test(s) over budget")
        return 1 if args.strict else 0
    print("check_test_durations: all tests within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
