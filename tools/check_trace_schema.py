"""Validate a ``--trace-out`` JSONL file (used by CI's bench-smoke job).

Checks, per line:

* every row is a JSON object with a ``type`` of ``"span"`` or ``"event"``;
* span rows carry ``trace_id``, ``span_id``, ``parent_id``, ``name``,
  ``start_seconds`` and ``seconds`` with sane types (non-negative numeric
  timings);
* within one trace, span ids are unique and every non-null ``parent_id``
  references a span id seen *earlier in the same trace* (the writer flattens
  depth-first, so parents always precede children);
* event rows carry a non-empty ``event`` string.

``--require-span PREFIX`` (repeatable) additionally asserts that at least one
span whose name equals the prefix or starts with ``PREFIX.`` exists — CI uses
this to pin the instrumentation coverage (``stage1``, ``stage2.level``,
``stage2.phase.canonical``, ``store`` …) so a refactor cannot silently drop a
span family.

Stdlib only.  Exit codes: 0 valid, 1 invalid (violations on stderr), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Set

SPAN_FIELDS = ("trace_id", "span_id", "parent_id", "name", "start_seconds", "seconds")


def check_trace_file(path: Path, required: List[str]) -> List[str]:
    """All schema violations found in ``path`` (empty list = valid)."""
    violations: List[str] = []
    seen_by_trace: Dict[str, Set[str]] = {}
    span_names: List[str] = []
    spans = 0
    events = 0

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        return [f"{path}: unreadable ({error})"]

    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{path}:{number}"
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            violations.append(f"{where}: not valid JSON ({error})")
            continue
        if not isinstance(row, dict):
            violations.append(f"{where}: row is not a JSON object")
            continue
        kind = row.get("type")
        if kind == "event":
            events += 1
            if not isinstance(row.get("event"), str) or not row["event"]:
                violations.append(f"{where}: event row without a non-empty 'event'")
            continue
        if kind != "span":
            violations.append(f"{where}: unknown row type {kind!r}")
            continue

        spans += 1
        missing = [field for field in SPAN_FIELDS if field not in row]
        if missing:
            violations.append(f"{where}: span row missing {', '.join(missing)}")
            continue
        if not isinstance(row["name"], str) or not row["name"]:
            violations.append(f"{where}: span name must be a non-empty string")
            continue
        for field in ("start_seconds", "seconds"):
            value = row[field]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                violations.append(f"{where}: {field} is not numeric ({value!r})")
            elif value < 0:
                violations.append(f"{where}: {field} is negative ({value!r})")
        if "attrs" in row and not isinstance(row["attrs"], dict):
            violations.append(f"{where}: attrs is not an object")

        trace_id = str(row["trace_id"])
        span_id = row["span_id"]
        parent_id = row["parent_id"]
        seen = seen_by_trace.setdefault(trace_id, set())
        if not isinstance(span_id, str) or not span_id:
            violations.append(f"{where}: span_id must be a non-empty string")
            continue
        if span_id in seen:
            violations.append(f"{where}: duplicate span_id {span_id!r} in trace {trace_id!r}")
        if parent_id is not None:
            if not isinstance(parent_id, str):
                violations.append(f"{where}: parent_id must be a string or null")
            elif parent_id not in seen:
                violations.append(
                    f"{where}: parent_id {parent_id!r} not seen earlier in trace "
                    f"{trace_id!r} (depth-first order violated or dangling)"
                )
        seen.add(span_id)
        span_names.append(row["name"])

    if spans == 0 and events == 0 and not violations:
        violations.append(f"{path}: no trace rows at all")
    for prefix in required:
        if not any(
            name == prefix or name.startswith(prefix + ".") for name in span_names
        ):
            violations.append(
                f"{path}: no span named {prefix!r} (or {prefix}.*) — "
                "instrumentation coverage regressed"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace JSONL file to validate")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="PREFIX",
        help="require at least one span named PREFIX or PREFIX.* (repeatable)",
    )
    args = parser.parse_args(argv)
    violations = check_trace_file(args.trace, args.require_span)
    if violations:
        for violation in violations:
            print(violation, file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(violations)} violation(s))", file=sys.stderr)
        return 1
    print(f"{args.trace}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
