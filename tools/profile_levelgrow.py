"""Profile the BENCH_levelgrow scenario under cProfile and dump the evidence.

CI's non-gating ``bench-profile`` job runs this and uploads the results, so
the next perf PR starts from data instead of re-profiling locally:

* ``levelgrow.pstats`` — the raw :mod:`pstats` dump, loadable with
  ``python -m pstats`` or snakeviz;
* ``levelgrow_profile.txt`` — the top-N functions by cumulative and by
  internal time, plus the miner's own phase split
  (canonicalisation / verification / probing seconds and the fast-path
  counters from ``LevelGrowStatistics``).

Stdlib only.  ``--quick`` shrinks the scenario (~1s) for smoke use, and
``--json`` prints the top-N functions by cumulative time as a JSON list
(machine-readable; for dashboards and scripted diffing)::

    PYTHONPATH=src python tools/profile_levelgrow.py --output-dir profile
    PYTHONPATH=src python tools/profile_levelgrow.py --quick --json
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def top_functions(profiler: cProfile.Profile, top: int) -> list:
    """The ``top`` functions by cumulative time as JSON-ready rows."""
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime"], row["function"]))
    return rows[:top]


def run(output_dir: Path, top: int, quick: bool) -> tuple:
    from test_levelgrow_scaling import SCENARIO, build_scenario_graph

    from repro.core.skinnymine import SkinnyMine
    from repro.graph.generators import (
        erdos_renyi_graph,
        inject_pattern,
        random_skinny_pattern,
    )

    if quick:
        graph = erdos_renyi_graph(80, 2.0, 8, seed=3)
        planted = random_skinny_pattern(4, 1, 6, 8, seed=4)
        inject_pattern(graph, planted, copies=3, seed=5)
        length, delta, min_support = 4, 1, 2
    else:
        graph = build_scenario_graph()
        length = SCENARIO["length"]
        delta = SCENARIO["delta"]
        min_support = SCENARIO["min_support"]

    miner = SkinnyMine(graph, min_support=min_support)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    patterns = miner.mine(length, delta)
    profiler.disable()
    wall = time.perf_counter() - started

    output_dir.mkdir(parents=True, exist_ok=True)
    stats = pstats.Stats(profiler)
    stats.dump_stats(output_dir / "levelgrow.pstats")

    report = miner.last_report
    level = report.level_statistics
    header = {
        "scenario": "quick" if quick else "BENCH_levelgrow",
        "wall_seconds": round(wall, 3),
        "levelgrow_seconds": round(report.levelgrow_seconds, 3),
        "num_patterns": len(patterns),
        "phase_seconds": {
            "canonical": round(level.canonical_seconds, 3),
            "invariant": round(level.invariant_seconds, 3),
            "probe": round(level.probe_seconds, 3),
        },
        "fast_path_counters": {
            "canonical_incremental_hits": level.canonical_incremental_hits,
            "invariant_cache_hits": level.invariant_cache_hits,
            "probes_batched": level.probes_batched,
        },
    }

    buffer = io.StringIO()
    buffer.write(json.dumps(header, indent=2, sort_keys=True) + "\n\n")
    for sort_key in ("cumulative", "tottime"):
        buffer.write(f"=== top {top} by {sort_key} ===\n")
        table = pstats.Stats(profiler, stream=buffer)
        table.sort_stats(sort_key).print_stats(top)
        buffer.write("\n")
    (output_dir / "levelgrow_profile.txt").write_text(
        buffer.getvalue(), encoding="utf-8"
    )
    return header, top_functions(profiler, top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=Path("profile-artifacts"))
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="profile the small calibration-sized scenario instead (~1s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the top-N functions by cumulative time as a JSON list",
    )
    args = parser.parse_args(argv)
    header, top_rows = run(args.output_dir, args.top, args.quick)
    if args.json:
        print(json.dumps(top_rows, indent=2, sort_keys=True))
        return 0
    print(json.dumps(header, indent=2, sort_keys=True))
    print(f"wrote {args.output_dir}/levelgrow.pstats and levelgrow_profile.txt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
