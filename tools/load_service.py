#!/usr/bin/env python
"""Concurrent client driver for the ``repro serve`` mining service.

Spawns a ``repro serve`` subprocess, opens many concurrent NDJSON client
connections, drives a mixed skinny/path/diam-le workload (closed loop: each
client waits for its answer before sending the next query), applies an edge
delta through a separate control connection mid-load, and then verifies
every successful answer byte-for-byte against a direct single-user
:class:`repro.api.MiningEngine` run at the generation the service reports
having served it from.

The summary (printed as JSON, optionally written with ``--json-out``)
carries throughput, latency percentiles, per-constraint breakdowns, error
counts by code and the wrong-answer count — the inputs of the
``BENCH_service.json`` gate (see ``benchmarks/test_service_latency.py``).

Stdlib only.  Typical runs::

    python tools/load_service.py                       # 200 clients
    python tools/load_service.py --clients 40 --requests-per-client 3
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: The mixed workload: six distinct queries across all three built-in
#: constraints (distinct cache keys, so the service serves both cold
#: computations and result-cache hits).
WORKLOAD: List[Tuple[str, Dict[str, object]]] = [
    ("skinny", {"constraint": "skinny", "params": {"length": 3, "delta": 1}, "min_support": 2}),
    ("skinny", {"constraint": "skinny", "params": {"length": 3, "delta": 1}, "min_support": 3}),
    ("path", {"constraint": "path", "params": {"length": 2}, "min_support": 2}),
    ("path", {"constraint": "path", "params": {"length": 3}, "min_support": 2}),
    ("diam-le", {"constraint": "diam-le", "params": {"k": 2}, "min_support": 3}),
    ("diam-le", {"constraint": "diam-le", "params": {"k": 2}, "min_support": 4}),
]


def percentile(sorted_values: List[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = int(round(quantile * (len(sorted_values) - 1)))
    return sorted_values[min(rank, len(sorted_values) - 1)]


def delta_operations(data: str) -> List[Dict[str, object]]:
    """A deterministic one-edge delta valid for this dataset."""
    from repro.cli import load_dataset

    graphs = load_dataset(data)
    u, v = min(edge.endpoints() for edge in graphs[0].edges())
    return [{"op": "remove", "u": u, "v": v}]


# --------------------------------------------------------------------- #
# server subprocess
# --------------------------------------------------------------------- #
def spawn_server(args: argparse.Namespace) -> Tuple[subprocess.Popen, Dict[str, object]]:
    """Start ``repro serve`` and scrape its 'listening' event for the port."""
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--data",
        args.data,
        "--port",
        "0",
        "--workers",
        str(args.workers),
        "--max-queue",
        str(args.max_queue),
    ]
    if args.budget_ms is not None:
        command += ["--budget-ms", str(args.budget_ms)]
    if args.stage1_processes:
        command += ["--stage1-processes", str(args.stage1_processes)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=str(REPO_ROOT),
        text=True,
    )
    line = process.stdout.readline()
    if not line:
        stderr = process.stderr.read()
        raise RuntimeError(f"repro serve failed to start:\n{stderr}")
    event = json.loads(line)
    if event.get("event") != "listening":
        raise RuntimeError(f"unexpected first server event: {event!r}")
    return process, event


def stop_server(process: subprocess.Popen, port: int) -> None:
    async def _shutdown() -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b'{"op":"shutdown"}\n')
        await writer.drain()
        await reader.readline()
        writer.close()
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.wait_closed()

    with contextlib.suppress(OSError, asyncio.TimeoutError):
        asyncio.run(asyncio.wait_for(_shutdown(), timeout=5.0))
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.terminate()
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


# --------------------------------------------------------------------- #
# the load itself
# --------------------------------------------------------------------- #
async def _drive(
    port: int, args: argparse.Namespace, delta_ops: List[Dict[str, object]]
) -> Tuple[List[Dict[str, object]], Optional[Dict[str, object]], float]:
    """All client loops plus the mid-load delta controller, concurrently."""
    records: List[Dict[str, object]] = []
    total = args.clients * args.requests_per_client
    threshold = (
        max(1, int(total * args.delta_at)) if 0.0 < args.delta_at <= 1.0 else None
    )
    trigger = asyncio.Event()
    completed = 0

    async def client_loop(client_index: int) -> None:
        nonlocal completed
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            for sequence in range(args.requests_per_client):
                mix_index = (client_index + sequence) % len(WORKLOAD)
                name, query = WORKLOAD[mix_index]
                request = {
                    "op": "query",
                    "id": f"{client_index}-{sequence}",
                    "query": query,
                }
                started = time.monotonic()
                writer.write((json.dumps(request) + "\n").encode("utf-8"))
                await writer.drain()
                line = await reader.readline()
                latency = time.monotonic() - started
                if not line:
                    raise RuntimeError("server closed the connection mid-load")
                records.append(
                    {
                        "constraint": name,
                        "mix_index": mix_index,
                        "latency": latency,
                        "response": json.loads(line),
                    }
                )
                completed += 1
                if threshold is not None and completed >= threshold:
                    trigger.set()
        finally:
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    async def delta_controller() -> Optional[Dict[str, object]]:
        if threshold is None:
            return None
        await trigger.wait()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            started = time.monotonic()
            writer.write(
                (
                    json.dumps({"op": "apply_delta", "id": "delta", "delta": delta_ops})
                    + "\n"
                ).encode("utf-8")
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            return {
                "ok": response.get("ok", False),
                "generation": response.get("generation"),
                "seconds": time.monotonic() - started,
                "applied_after_requests": completed,
            }
        finally:
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    started = time.monotonic()
    results = await asyncio.gather(
        delta_controller(), *(client_loop(index) for index in range(args.clients))
    )
    wall_seconds = time.monotonic() - started
    return records, results[0], wall_seconds


# --------------------------------------------------------------------- #
# correctness verification
# --------------------------------------------------------------------- #
def canonical_patterns(patterns: object) -> str:
    return json.dumps(patterns, sort_keys=True, separators=(",", ":"))


def verify_answers(
    records: List[Dict[str, object]],
    data: str,
    delta_ops: List[Dict[str, object]],
) -> Tuple[int, Dict[str, int]]:
    """Compare every OK answer against a direct engine at its generation.

    Returns ``(wrong_answers, served_by_generation)``.  'Byte-identical'
    means the canonical JSON of the response's pattern summaries equals the
    canonical JSON of ``MiningEngine.run``'s — same patterns, same supports,
    same order.
    """
    from repro.api import MiningEngine, Query
    from repro.cli import load_dataset
    from repro.obs.metrics import MetricsRegistry
    from repro.server.protocol import parse_delta

    ok_records = [r for r in records if r["response"].get("ok")]
    by_generation: Dict[int, List[Dict[str, object]]] = {}
    for record in ok_records:
        generation = record["response"]["stats"]["snapshot_generation"]
        by_generation.setdefault(generation, []).append(record)

    wrong = 0
    served = {}
    for generation, generation_records in sorted(by_generation.items()):
        engine = MiningEngine(load_dataset(data), metrics=MetricsRegistry())
        for _ in range(generation):
            engine.apply_delta(parse_delta(delta_ops))
        references = {}
        for mix_index in sorted({r["mix_index"] for r in generation_records}):
            result = engine.run(Query.from_dict(WORKLOAD[mix_index][1]))
            references[mix_index] = canonical_patterns(
                result.to_dict(include_patterns=True)["patterns"]
            )
        for record in generation_records:
            actual = canonical_patterns(record["response"].get("patterns"))
            if actual != references[record["mix_index"]]:
                wrong += 1
        served[str(generation)] = len(generation_records)
    return wrong, served


# --------------------------------------------------------------------- #
# orchestration
# --------------------------------------------------------------------- #
def summarise(
    args: argparse.Namespace,
    records: List[Dict[str, object]],
    delta_report: Optional[Dict[str, object]],
    wall_seconds: float,
    wrong_answers: int,
    served: Dict[str, int],
) -> Dict[str, object]:
    latencies = sorted(record["latency"] for record in records)
    errors: Dict[str, int] = {}
    cache_hits = 0
    for record in records:
        response = record["response"]
        if response.get("ok"):
            if response["stats"].get("result_cache_hit"):
                cache_hits += 1
        else:
            code = response.get("error", {}).get("code", "unknown")
            errors[code] = errors.get(code, 0) + 1

    per_constraint: Dict[str, Dict[str, object]] = {}
    for name in sorted({record["constraint"] for record in records}):
        subset = sorted(
            record["latency"] for record in records if record["constraint"] == name
        )
        per_constraint[name] = {
            "count": len(subset),
            "p50_ms": round(percentile(subset, 0.50) * 1000.0, 3),
            "p99_ms": round(percentile(subset, 0.99) * 1000.0, 3),
        }

    return {
        "scenario": {
            "data": args.data,
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "workers": args.workers,
            "workload": [query for _name, query in WORKLOAD],
            "delta_at": args.delta_at,
        },
        "requests": len(records),
        "wall_seconds": round(wall_seconds, 4),
        "throughput_rps": round(len(records) / wall_seconds, 2) if wall_seconds else 0.0,
        "latency_ms": {
            "mean": round(sum(latencies) / len(latencies) * 1000.0, 3)
            if latencies
            else 0.0,
            "p50": round(percentile(latencies, 0.50) * 1000.0, 3),
            "p95": round(percentile(latencies, 0.95) * 1000.0, 3),
            "p99": round(percentile(latencies, 0.99) * 1000.0, 3),
            "max": round((latencies[-1] if latencies else 0.0) * 1000.0, 3),
        },
        "per_constraint": per_constraint,
        "errors": errors,
        "error_count": sum(errors.values()),
        "wrong_answers": wrong_answers,
        "served_by_generation": served,
        "result_cache_hits": cache_hits,
        "delta": delta_report,
    }


def run_load(args: argparse.Namespace) -> Dict[str, object]:
    """Spawn the service, drive the load, verify, and summarise."""
    delta_ops = delta_operations(args.data)
    process, event = spawn_server(args)
    port = event["port"]
    try:
        records, delta_report, wall_seconds = asyncio.run(
            _drive(port, args, delta_ops)
        )
    finally:
        stop_server(process, port)
    wrong_answers, served = verify_answers(records, args.data, delta_ops)
    return summarise(args, records, delta_report, wall_seconds, wrong_answers, served)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--data", default="demo", help="dataset spec (see repro --help)")
    parser.add_argument("--clients", type=int, default=200, help="concurrent connections")
    parser.add_argument(
        "--requests-per-client", type=int, default=5, help="queries per connection"
    )
    parser.add_argument("--workers", type=int, default=4, help="server worker threads")
    parser.add_argument(
        "--max-queue", type=int, default=2048, help="server admission queue bound"
    )
    parser.add_argument(
        "--budget-ms", type=int, default=None, help="server default per-query deadline"
    )
    parser.add_argument(
        "--stage1-processes", type=int, default=0, help="server Stage-1 subprocesses"
    )
    parser.add_argument(
        "--delta-at",
        type=float,
        default=0.4,
        help="apply the edge delta after this fraction of requests (0 disables)",
    )
    parser.add_argument("--json-out", type=Path, default=None, help="write summary here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    summary = run_load(args)
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.json_out is not None:
        args.json_out.write_text(text + "\n", encoding="utf-8")
    if summary["wrong_answers"]:
        print(
            f"FAIL: {summary['wrong_answers']} wrong answer(s)", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
