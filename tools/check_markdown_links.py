"""Markdown link checker for the repo's documentation (stdlib only).

Scans the given markdown files (or the repo's default documentation set) for
inline links and validates everything that can be checked offline:

* relative file links must point at an existing file or directory;
* ``#fragment`` anchors — standalone or appended to a relative link — must
  match a heading in the target document (GitHub slug rules, simplified);
* ``http(s)``/``mailto`` links are reported but not fetched (CI has no
  business depending on third-party uptime).

Exit status is non-zero when any broken link is found, so the script can
gate CI directly; ``tests/docs/test_markdown_links.py`` runs the same check
inside the tier-1 suite.

Usage::

    python tools/check_markdown_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation set checked when no arguments are given.
DEFAULT_FILES = ("README.md", "ROADMAP.md", "PAPER.md", "CHANGES.md")
DEFAULT_GLOBS = ("docs/*.md",)

_LINK = re.compile(r"(?<!!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def default_documents() -> List[Path]:
    files = [REPO_ROOT / name for name in DEFAULT_FILES if (REPO_ROOT / name).exists()]
    for pattern in DEFAULT_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def github_slug(title: str) -> str:
    """GitHub's heading-to-anchor slug, close enough for our headings."""
    slug = re.sub(r"[`*_]", "", title.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(markdown: str) -> set:
    slugs = set()
    counts = {}
    for match in _HEADING.finditer(markdown):
        slug = github_slug(match.group("title"))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Return (link, problem) pairs for every broken link in ``path``."""
    markdown = path.read_text(encoding="utf-8")
    scrubbed = _CODE_FENCE.sub("", markdown)
    problems: List[Tuple[str, str]] = []
    for match in _LINK.finditer(scrubbed):
        target = match.group("target")
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in heading_slugs(markdown):
                problems.append((target, "anchor not found in this document"))
            continue
        relative, _, fragment = target.partition("#")
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append((target, f"missing file {resolved}"))
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_slugs(resolved.read_text(encoding="utf-8")):
                problems.append((target, f"anchor #{fragment} not found in {relative}"))
    return problems


def check_documents(paths: Iterable[Path]) -> List[str]:
    """Human-readable problem lines for every broken link across ``paths``."""
    lines: List[str] = []
    for path in paths:
        for target, problem in check_file(path):
            lines.append(f"{path.relative_to(REPO_ROOT)}: [{target}] {problem}")
    return lines


def main(argv: List[str]) -> int:
    paths = [Path(arg).resolve() for arg in argv] if argv else default_documents()
    problems = check_documents(paths)
    for line in problems:
        print(line)
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in paths)
    if problems:
        print(f"FAILED: {len(problems)} broken link(s) across {checked}")
        return 1
    print(f"OK: links valid in {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
