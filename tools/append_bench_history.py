"""Append a fresh bench measurement to a BENCH_* history ledger.

Serves both the Stage-2 LevelGrow ledger (``BENCH_levelgrow.json``, CI job
``bench-smoke``) and the serving-tier latency ledger (``BENCH_service.json``,
CI job ``bench-service``); the record schema is detected from the fields of
the fresh measurement.  On ``main`` only, CI runs:

1. the bench test wrote its fresh measurement to the ``*.latest.json``
   sidecar (always, gating or not);
2. the previous main run's bench artifact — which carries the
   accumulated per-commit ``history`` — was downloaded next to it;
3. this script takes the committed baseline, adopts the longer history of
   (committed, previous artifact), appends a compact record of the fresh
   measurement (commit, normalised Stage-2 time, phase shares, fast-path
   counters — or p99 latency for the service ledger) and rewrites the
   workspace copy of the committed baseline — which the artifact upload
   step then publishes.

Nothing is committed back to the repository: the ledger lives in the
artifact chain, while the committed file keeps only the per-change entries
added explicitly with ``BENCH_UPDATE=1``.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def history_of(record: dict) -> list:
    """The record's history as a list (older files used a notes dict)."""
    history = record.get("history")
    if history is None:
        return []
    if isinstance(history, dict):
        return [{"id": key, "note": note} for key, note in sorted(history.items())]
    return list(history)


def compact_entry(fresh: dict, commit: str) -> dict:
    """A per-commit ledger record; the schema is detected from the fields.

    Two bench families share this ledger tool: the Stage-2 LevelGrow gate
    (``levelgrow_seconds``) and the serving-tier latency gate (``p99_ms``,
    from ``benchmarks/test_service_latency.py``).
    """
    calibration = fresh["calibration_seconds"]
    if "levelgrow_seconds" in fresh:
        return {
            "commit": commit,
            "calibration_seconds": round(calibration, 4),
            "levelgrow_seconds": round(fresh["levelgrow_seconds"], 3),
            "normalised": round(fresh["levelgrow_seconds"] / calibration, 2),
            "phase_shares": {
                phase: round(share, 4)
                for phase, share in sorted(fresh.get("phase_shares", {}).items())
            },
            "fast_path_counters": fresh.get("fast_path_counters", {}),
            "num_patterns": fresh["num_patterns"],
            "pattern_set_sha256": fresh["pattern_set_sha256"],
        }
    if "p99_ms" in fresh:
        return {
            "commit": commit,
            "calibration_seconds": round(calibration, 4),
            "p50_ms": fresh["p50_ms"],
            "p95_ms": fresh["p95_ms"],
            "p99_ms": fresh["p99_ms"],
            "normalised": round(fresh["normalised_p99"], 2),
            "throughput_rps": fresh["throughput_rps"],
            "requests": fresh["requests"],
            "error_count": fresh["error_count"],
            "wrong_answers": fresh["wrong_answers"],
            "served_by_generation": fresh.get("served_by_generation", {}),
        }
    raise ValueError(
        "unrecognised bench schema: expected 'levelgrow_seconds' or 'p99_ms' "
        f"in the fresh measurement, got fields {sorted(fresh)}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        type=Path,
        default=Path("benchmarks/BENCH_levelgrow.json"),
        help="committed baseline; rewritten in place with the merged history",
    )
    parser.add_argument(
        "--latest",
        type=Path,
        default=Path("benchmarks/BENCH_levelgrow.latest.json"),
        help="fresh measurement written by the bench run",
    )
    parser.add_argument(
        "--previous",
        type=Path,
        default=None,
        help="previous main artifact's BENCH_levelgrow.json (optional)",
    )
    parser.add_argument("--commit", required=True, help="commit SHA of this run")
    parser.add_argument(
        "--max-entries",
        type=int,
        default=200,
        help="cap on retained per-commit entries (oldest dropped first)",
    )
    args = parser.parse_args(argv)

    if not args.latest.exists():
        print(f"no fresh measurement at {args.latest}; nothing to append")
        return 1
    bench = load(args.bench)
    fresh = load(args.latest)

    history = history_of(bench)
    if args.previous is not None and args.previous.exists():
        # Merge by identity (note id / commit sha), committed entries first:
        # per-commit records accumulated in the artifact chain survive, and
        # a note newly committed to the repository enters the ledger too —
        # neither side may silently drop the other's entries.
        merged: list = []
        seen = set()
        for item in history + history_of(load(args.previous)):
            key = (
                ("commit", item["commit"])
                if "commit" in item
                else ("id", item.get("id") or json.dumps(item, sort_keys=True))
            )
            if key not in seen:
                seen.add(key)
                merged.append(item)
        history = merged

    entry = compact_entry(fresh, args.commit)
    if any(item.get("commit") == args.commit for item in history):
        print(f"history already has an entry for {args.commit}; not duplicating")
    else:
        history.append(entry)
    notes = [item for item in history if "commit" not in item]
    commits = [item for item in history if "commit" in item]
    bench["history"] = notes + commits[-args.max_entries :]

    args.bench.write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"appended {args.commit[:12]} (normalised {entry['normalised']}×) — "
        f"{len(commits)} per-commit entr{'y' if len(commits) == 1 else 'ies'} in the ledger"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
