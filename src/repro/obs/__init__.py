"""``repro.obs`` — the zero-dependency telemetry subsystem.

Three pieces, all stdlib-only (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` context managers
  with monotonic timing, nested parent ids and a bounded-overhead no-op
  mode (:data:`NULL_TRACER`) for the tracing-disabled hot path;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` holding counters,
  gauges and fixed-bucket latency histograms (p50/p95/p99 summaries,
  Prometheus-style text exposition via
  :meth:`MetricsRegistry.render_text`); :func:`default_registry` is the
  process-wide instance the engine/store/service publish into by default;
* :mod:`repro.obs.export` — the JSONL trace/event sink behind the CLI's
  ``--trace-out`` flag (schema validated by ``tools/check_trace_schema.py``).
"""

from repro.obs.export import TraceJsonlWriter, flatten_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "TraceJsonlWriter",
    "Tracer",
    "default_registry",
    "flatten_trace",
]
