"""Span tracing: nested, monotonic-timed spans with a no-op disabled mode.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("query", constraint="skinny"):
        with tracer.span("stage1"):
            ...

Spans nest through a per-tracer stack: the span open when another starts
becomes its parent, so the ``with`` structure of the instrumented code *is*
the trace tree.  Timing uses ``time.perf_counter()`` (monotonic); each span
records its start offset from the tracer's epoch and its duration, so within
one tracer span starts are comparable and children are always contained in
their parents.

Disabled tracing must cost next to nothing on the mining hot path (the
bench-smoke gate bounds it at ≤3% of Stage-2): a disabled tracer's
:meth:`Tracer.span` returns one shared :data:`_NULL_SPAN` whose
``__enter__``/``__exit__`` do nothing — no allocation, no clock read.
:data:`NULL_TRACER` is the module-wide disabled instance instrumented code
defaults to.

Aggregate phases (LevelGrow's canonicalisation / verification / probing
seconds) are accumulated per candidate inside the miner — far too hot for a
span each — and surfaced as pre-timed spans via :meth:`Tracer.record`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class Span:
    """One timed operation in a trace tree (use via :meth:`Tracer.span`)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "start_seconds",
        "seconds",
        "children",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.start_seconds: float = 0.0
        self.seconds: float = 0.0
        self.children: List["Span"] = []

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.start_seconds = time.perf_counter() - self._tracer._epoch
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.seconds = (time.perf_counter() - self._tracer._epoch) - self.start_seconds
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span opened (e.g. a hit flag)."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """The span subtree as plain JSON-serialisable data."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_seconds": self.start_seconds,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass

    def to_dict(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and collects the finished trace trees.

    ``enabled=False`` is the bounded-overhead no-op mode: every
    :meth:`span` call returns the same shared null span and nothing is
    recorded.  Completed *root* spans (spans with no open parent) accumulate
    until :meth:`drain` hands them over as dicts — the CLI's JSONL export
    path; callers holding a specific span (the engine attaching a per-query
    trace to its stats) read ``span.to_dict()`` directly instead.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._epoch = time.perf_counter()
        self._stack: List[Span] = []
        self._roots: List[Span] = []
        self._next_id = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    def span(self, name: str, **attrs: Any):
        """A context manager timing one operation; nests under the open span."""
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def record(
        self,
        name: str,
        seconds: float,
        children: Optional[List[Dict[str, Any]]] = None,
        **attrs: Any,
    ) -> None:
        """Attach a pre-timed span (an aggregate too hot to trace per call).

        The span lands under the currently open span (or as a root) with the
        given duration and no start offset of its own — it represents time
        accumulated across many non-contiguous slices.

        ``children`` optionally attaches a pre-timed subtree: a list of
        ``{"name": ..., "seconds": ..., "attrs": {...}, "children": [...]}``
        dicts, nested recursively.  The serving tier uses this to emit whole
        ``service.request`` span trees measured off the tracer's thread
        (worker threads cannot share the span stack, so they report timings
        back and the event-loop thread records the finished tree).
        """
        if not self._enabled:
            return
        span = self._recorded(name, seconds, attrs, children)
        if self._stack:
            span.parent_id = self._stack[-1].span_id
            span.start_seconds = self._stack[-1].start_seconds
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)

    def _recorded(
        self,
        name: str,
        seconds: float,
        attrs: Dict[str, Any],
        children: Optional[List[Dict[str, Any]]],
    ) -> Span:
        span = Span(self, name, dict(attrs))
        span.seconds = float(seconds)
        self._assign_id(span)
        for child in children or ():
            child_span = self._recorded(
                child["name"],
                child.get("seconds", 0.0),
                dict(child.get("attrs", ())),
                child.get("children"),
            )
            child_span.parent_id = span.span_id
            child_span.start_seconds = span.start_seconds
            span.children.append(child_span)
        return span

    def drain(self) -> List[Dict[str, Any]]:
        """Completed root-span trees as dicts; clears the collected roots."""
        roots, self._roots = self._roots, []
        return [root.to_dict() for root in roots]

    # ------------------------------------------------------------------ #
    # span lifecycle (called by Span)
    # ------------------------------------------------------------------ #
    def _assign_id(self, span: Span) -> None:
        self._next_id += 1
        span.span_id = "s%d" % self._next_id

    def _open(self, span: Span) -> None:
        self._assign_id(span)
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate exception-driven unwinding: pop back to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if span.parent_id is None:
            self._roots.append(span)
        elif self._stack and self._stack[-1].span_id == span.parent_id:
            self._stack[-1].children.append(span)
        else:
            # The parent closed first (unwinding); keep the subtree as a root.
            self._roots.append(span)


#: The shared disabled tracer instrumented code defaults to.
NULL_TRACER = Tracer(enabled=False)
