"""Process-wide metrics: counters, gauges and fixed-bucket latency histograms.

A :class:`MetricsRegistry` holds named metrics, optionally labelled::

    registry = MetricsRegistry()
    registry.counter("repro_queries_total", labels={"constraint": "skinny"}).inc()
    registry.histogram("repro_query_seconds").observe(0.042)

Histograms use fixed upper-bound buckets (defaulting to
:data:`DEFAULT_LATENCY_BUCKETS`, 1 ms – 60 s) and estimate p50/p95/p99 by
linear interpolation inside the bucket holding the target rank — the same
estimation Prometheus' ``histogram_quantile`` performs server-side, done
here so the CLI can print percentiles without a metrics server.

``snapshot()``/``from_snapshot()`` round-trip the registry through plain
JSON (the CLI's ``--emit-metrics`` / ``repro stats`` pipeline), and
``render_text()`` emits Prometheus text exposition format.

:func:`default_registry` returns the process-wide registry that the engine,
store and service publish into when no explicit registry is injected;
constructing a private :class:`MetricsRegistry` per engine keeps runs
independent (the pattern the telemetry tests pin).
"""

from __future__ import annotations

import bisect
import json
import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 1 ms to 60 s, roughly logarithmic.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, object]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(
        '%s="%s"' % (key, _escape_label_value(value)) for key, value in items
    )
    return "{%s}" % body


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for %r" % self.name)
        self.value += amount


class Gauge:
    """A value that can go up and down (current sizes, last-seen timings)."""

    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` are ascending upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  ``observe`` is O(log buckets); percentiles are
    estimated by linear interpolation within the bucket containing the
    target rank, clamped to the largest observed value so a lone sample in
    a wide bucket is not reported above anything actually seen.
    """

    __slots__ = ("name", "labels", "help", "buckets", "counts", "count", "sum", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value > self._max:
            self._max = value

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` in [0, 1]; 0.0 when empty."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1], got %r" % quantile)
        if self.count == 0:
            return 0.0
        target = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (
                    self.buckets[index] if index < len(self.buckets) else self._max
                )
                if upper <= lower or not math.isfinite(upper):
                    return min(lower, self._max)
                fraction = (target - previous) / bucket_count
                return min(lower + (upper - lower) * fraction, self._max)
        return self._max

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of named (optionally labelled) metrics."""

    def __init__(self) -> None:
        # name -> (kind, help, {label items -> metric}); insertion-ordered.
        self._families: "Dict[str, Tuple[str, str, Dict[LabelItems, object]]]" = {}

    # ------------------------------------------------------------------ #
    # metric accessors
    # ------------------------------------------------------------------ #
    def _family(self, name: str, kind: str, help: str) -> Dict[LabelItems, object]:
        if not _NAME_PATTERN.match(name):
            raise ValueError("invalid metric name %r" % name)
        family = self._families.get(name)
        if family is None:
            family = (kind, help, {})
            self._families[name] = family
        elif family[0] != kind:
            raise ValueError(
                "metric %r already registered as a %s, not a %s"
                % (name, family[0], kind)
            )
        return family[2]

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        items = _label_items(labels)
        series = self._family(name, "counter", help)
        metric = series.get(items)
        if metric is None:
            metric = Counter(name, items, help)
            series[items] = metric
        return metric

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        items = _label_items(labels)
        series = self._family(name, "gauge", help)
        metric = series.get(items)
        if metric is None:
            metric = Gauge(name, items, help)
            series[items] = metric
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        items = _label_items(labels)
        series = self._family(name, "histogram", help)
        metric = series.get(items)
        if metric is None:
            metric = Histogram(name, items, help, buckets=buckets)
            series[items] = metric
        return metric

    def reset(self) -> None:
        self._families.clear()

    def iter_metrics(self) -> Iterable[Tuple[str, object]]:
        """Yield ``(kind, metric)`` pairs in registration order.

        ``kind`` is ``"counter"``/``"gauge"``/``"histogram"``; the metric is
        the live object (so histogram percentiles can be computed by the
        consumer — the ``repro stats`` table uses this).
        """
        for _name, (kind, _help, series) in self._families.items():
            for metric in series.values():
                yield kind, metric

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """Plain-JSON form of every metric (the ``--emit-metrics`` payload)."""
        payload: Dict[str, List[Dict[str, object]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for name, (kind, help, series) in self._families.items():
            for items, metric in series.items():
                row: Dict[str, object] = {
                    "name": name,
                    "help": help,
                    "labels": dict(items),
                }
                if kind == "histogram":
                    row.update(
                        {
                            "buckets": list(metric.buckets),
                            "counts": list(metric.counts),
                            "count": metric.count,
                            "sum": metric.sum,
                            "max": metric._max,
                        }
                    )
                    payload["histograms"].append(row)
                else:
                    row["value"] = metric.value
                    payload["%ss" % kind].append(row)
        return payload

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (exact for all kinds)."""
        if not isinstance(payload, Mapping):
            raise ValueError("metrics snapshot must be an object, got %r" % (payload,))
        registry = cls()
        for row in payload.get("counters", ()):
            metric = registry.counter(row["name"], row.get("help", ""), row.get("labels"))
            metric.value = float(row["value"])
        for row in payload.get("gauges", ()):
            metric = registry.gauge(row["name"], row.get("help", ""), row.get("labels"))
            metric.value = float(row["value"])
        for row in payload.get("histograms", ()):
            metric = registry.histogram(
                row["name"], row.get("help", ""), row.get("labels"), row.get("buckets")
            )
            counts = list(row["counts"])
            if len(counts) != len(metric.counts):
                raise ValueError(
                    "histogram %r snapshot has %d bucket counts for %d buckets"
                    % (row["name"], len(counts), len(metric.counts))
                )
            metric.counts = [int(value) for value in counts]
            metric.count = int(row["count"])
            metric.sum = float(row["sum"])
            metric._max = float(row.get("max", 0.0))
        return registry

    def absorb(self, payload: Mapping[str, object]) -> None:
        """Merge a :meth:`snapshot` payload into this registry.

        Counters and histograms are *added* (values, bucket counts, sums;
        the tracked max is the max of both sides); gauges are overwritten by
        the absorbed value (the payload is assumed newer).  This is how the
        serving tier folds its per-worker-thread registries into one
        combined view for ``repro stats`` without ever sharing a live
        registry across threads.
        """
        if not isinstance(payload, Mapping):
            raise ValueError("metrics snapshot must be an object, got %r" % (payload,))
        for row in payload.get("counters", ()):
            metric = self.counter(row["name"], row.get("help", ""), row.get("labels"))
            metric.value += float(row["value"])
        for row in payload.get("gauges", ()):
            metric = self.gauge(row["name"], row.get("help", ""), row.get("labels"))
            metric.value = float(row["value"])
        for row in payload.get("histograms", ()):
            metric = self.histogram(
                row["name"], row.get("help", ""), row.get("labels"), row.get("buckets")
            )
            counts = list(row["counts"])
            if len(counts) != len(metric.counts):
                raise ValueError(
                    "histogram %r snapshot has %d bucket counts for %d buckets"
                    % (row["name"], len(counts), len(metric.counts))
                )
            metric.counts = [
                have + int(extra) for have, extra in zip(metric.counts, counts)
            ]
            metric.count += int(row["count"])
            metric.sum += float(row["sum"])
            metric._max = max(metric._max, float(row.get("max", 0.0)))

    def render_text(self) -> str:
        """Prometheus text exposition format (content-type ``text/plain``)."""
        lines: List[str] = []
        for name, (kind, help, series) in self._families.items():
            if help:
                lines.append("# HELP %s %s" % (name, help.replace("\n", " ")))
            lines.append("# TYPE %s %s" % (name, kind))
            for items, metric in series.items():
                if kind == "histogram":
                    cumulative = 0
                    for bound, bucket_count in zip(metric.buckets, metric.counts):
                        cumulative += bucket_count
                        bucket_items = items + (("le", _format_value(bound)),)
                        lines.append(
                            "%s_bucket%s %d"
                            % (name, _render_labels(bucket_items), cumulative)
                        )
                    lines.append(
                        "%s_bucket%s %d"
                        % (name, _render_labels(items + (("le", "+Inf"),)), metric.count)
                    )
                    lines.append(
                        "%s_sum%s %s"
                        % (name, _render_labels(items), _format_value(metric.sum))
                    )
                    lines.append(
                        "%s_count%s %d" % (name, _render_labels(items), metric.count)
                    )
                else:
                    lines.append(
                        "%s%s %s"
                        % (name, _render_labels(items), _format_value(metric.value))
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if value == int(value) and math.isfinite(value):
        return str(int(value))
    return repr(float(value))


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry used when no explicit one is injected."""
    return _DEFAULT_REGISTRY


def load_snapshot(path: str) -> MetricsRegistry:
    """Read a ``--emit-metrics`` JSON file back into a registry."""
    with open(path, "r", encoding="utf-8") as handle:
        return MetricsRegistry.from_snapshot(json.load(handle))
