"""Structured telemetry export: the JSONL trace/event sink.

The CLI's ``--trace-out PATH`` writes one JSON object per line:

* ``{"type": "span", "trace_id": ..., "span_id": ..., "parent_id": ...,
  "name": ..., "start_seconds": ..., "seconds": ..., "attrs": {...}}`` —
  one line per span, the tree flattened depth-first (children follow their
  parent, linked by ``parent_id``);
* ``{"type": "event", "event": ..., ...}`` — free-form marker lines (the
  CLI writes one per query with the request envelope).

``tools/check_trace_schema.py`` validates this format in CI.  Span ids are
unique within a trace; ``parent_id`` is ``null`` exactly for root spans.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union


def flatten_trace(root: Mapping[str, Any], trace_id: str) -> List[Dict[str, Any]]:
    """One flat span row per node of a :meth:`Span.to_dict` tree."""
    rows: List[Dict[str, Any]] = []

    def visit(node: Mapping[str, Any]) -> None:
        rows.append(
            {
                "type": "span",
                "trace_id": trace_id,
                "span_id": node["span_id"],
                "parent_id": node.get("parent_id"),
                "name": node["name"],
                "start_seconds": node.get("start_seconds", 0.0),
                "seconds": node["seconds"],
                "attrs": dict(node.get("attrs") or {}),
            }
        )
        for child in node.get("children") or ():
            visit(child)

    visit(root)
    return rows


class TraceJsonlWriter:
    """Append-mode JSONL sink for trace trees and event markers."""

    def __init__(self, path: Union[str, "os.PathLike"]) -> None:
        self._handle = open(path, "a", encoding="utf-8")
        self._next_trace = 0

    def write_trace(
        self, root: Mapping[str, Any], trace_id: Optional[str] = None
    ) -> str:
        """Flatten one span tree to lines; returns the trace id used."""
        if trace_id is None:
            self._next_trace += 1
            trace_id = "t%d" % self._next_trace
        for row in flatten_trace(root, trace_id):
            self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        return trace_id

    def write_event(self, event: str, **payload: Any) -> None:
        row: Dict[str, Any] = {"type": "event", "event": event}
        row.update(payload)
        self._handle.write(json.dumps(row, sort_keys=True, default=str) + "\n")

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "TraceJsonlWriter":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.close()
        return False


def iter_trace_lines(path: Union[str, "os.PathLike"]) -> Iterator[Dict[str, Any]]:
    """Parsed rows of a trace JSONL file (skipping blank lines)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
