"""repro — a reproduction of "A Direct Mining Approach To Efficient
Constrained Graph Pattern Discovery" (Zhu, Zhang, Qu; SIGMOD 2013).

The package provides:

* :mod:`repro.graph` — the labeled-graph substrate (data structures,
  isomorphism, canonical codes, generators, I/O);
* :mod:`repro.core` — the paper's contribution: the SkinnyMine miner for
  l-long δ-skinny patterns and the generic direct-mining framework;
* :mod:`repro.baselines` — reimplementations of the systems the paper
  compares against (gSpan, MoSS, SpiderMine, SUBDUE, SEuS, ORIGAMI);
* :mod:`repro.datasets` — synthetic workloads reproducing the paper's
  evaluation datasets, including DBLP-like and Weibo-like analogues;
* :mod:`repro.analysis` — distribution/recovery metrics and report printers
  used by the benchmark harness.

Quickstart
----------
>>> from repro import SkinnyMine
>>> from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern
>>> background = erdos_renyi_graph(150, 1.5, 25, seed=1)
>>> pattern = random_skinny_pattern(6, 1, 9, 25, seed=2)
>>> _ = inject_pattern(background, pattern, copies=3, seed=3)
>>> results = SkinnyMine(background, min_support=2).mine(length=6, delta=1)
>>> any(p.diameter_length == 6 for p in results)
True
"""

from repro.core import (
    DiamMine,
    DirectMiner,
    MiningContext,
    MiningReport,
    SkinnyConstraintDriver,
    SkinnyMine,
    SkinnyPattern,
    SupportMeasure,
    canonical_diameter,
    is_delta_skinny,
    is_l_long_delta_skinny,
    mine_skinny_patterns,
)
from repro.core.database import EdgeDelta, GraphDelta
from repro.graph import LabeledGraph
from repro.index import DiskPatternStore, IndexMaintainer, MemoryPatternStore, PatternStore
from repro.service import MineRequest, MineResponse, MiningService

__version__ = "1.1.0"

__all__ = [
    "DiamMine",
    "DirectMiner",
    "DiskPatternStore",
    "EdgeDelta",
    "GraphDelta",
    "IndexMaintainer",
    "LabeledGraph",
    "MemoryPatternStore",
    "MineRequest",
    "MineResponse",
    "MiningContext",
    "MiningReport",
    "MiningService",
    "PatternStore",
    "SkinnyConstraintDriver",
    "SkinnyMine",
    "SkinnyPattern",
    "SupportMeasure",
    "canonical_diameter",
    "is_delta_skinny",
    "is_l_long_delta_skinny",
    "mine_skinny_patterns",
    "__version__",
]
