"""repro — a reproduction of "A Direct Mining Approach To Efficient
Constrained Graph Pattern Discovery" (Zhu, Zhang, Qu; SIGMOD 2013).

The package provides:

* :mod:`repro.graph` — the labeled-graph substrate (data structures,
  isomorphism, canonical codes, generators, I/O);
* :mod:`repro.core` — the paper's contribution: the SkinnyMine miner for
  l-long δ-skinny patterns and the generic direct-mining framework;
* :mod:`repro.api` — the unified constraint-plugin query surface: a
  constraint registry and the :class:`MiningEngine` facade serving generic
  :class:`Query` objects for any registered constraint;
* :mod:`repro.baselines` — reimplementations of the systems the paper
  compares against (gSpan, MoSS, SpiderMine, SUBDUE, SEuS, ORIGAMI);
* :mod:`repro.datasets` — synthetic workloads reproducing the paper's
  evaluation datasets, including DBLP-like and Weibo-like analogues;
* :mod:`repro.analysis` — distribution/recovery metrics and report printers
  used by the benchmark harness.

Quickstart
----------
>>> from repro import SkinnyMine
>>> from repro.graph.generators import erdos_renyi_graph, inject_pattern, random_skinny_pattern
>>> background = erdos_renyi_graph(150, 1.5, 25, seed=1)
>>> pattern = random_skinny_pattern(6, 1, 9, 25, seed=2)
>>> _ = inject_pattern(background, pattern, copies=3, seed=3)
>>> results = SkinnyMine(background, min_support=2).mine(length=6, delta=1)
>>> any(p.diameter_length == 6 for p in results)
True
"""

from repro.api import (
    MiningEngine,
    ParameterError,
    Query,
    QueryError,
    Result,
    UnknownConstraintError,
    available_constraints,
    get_constraint,
    register_constraint,
)
from repro.core import (
    DiamMine,
    DirectMiner,
    MiningContext,
    MiningReport,
    SkinnyConstraintDriver,
    SkinnyMine,
    SkinnyPattern,
    SupportMeasure,
    canonical_diameter,
    is_delta_skinny,
    is_l_long_delta_skinny,
    mine_skinny_patterns,
)
from repro.core.database import EdgeDelta, GraphDelta
from repro.graph import LabeledGraph
from repro.index import DiskPatternStore, IndexMaintainer, MemoryPatternStore, PatternStore
from repro.service import MineRequest, MineResponse, MiningService


def _detect_version() -> str:
    """Single-source the package version.

    The source of truth is ``[project] version`` in ``pyproject.toml``.  A
    source-tree checkout reads it directly (guarded by the project name so an
    unrelated pyproject two directories up is never trusted); installed
    copies fall back to the metadata that was generated from the very same
    field at build time.
    """
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    if pyproject.is_file():
        text = pyproject.read_text(encoding="utf-8")
        if re.search(r'^name\s*=\s*"repro-skinnymine"', text, flags=re.MULTILINE):
            match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
            if match:
                return match.group(1)
    try:
        from importlib import metadata

        return metadata.version("repro-skinnymine")
    except Exception:  # pragma: no cover - no metadata, no source tree
        return "0.0.0+unknown"


__version__ = _detect_version()

__all__ = [
    "DiamMine",
    "DirectMiner",
    "DiskPatternStore",
    "EdgeDelta",
    "GraphDelta",
    "IndexMaintainer",
    "LabeledGraph",
    "MemoryPatternStore",
    "MineRequest",
    "MineResponse",
    "MiningContext",
    "MiningEngine",
    "MiningReport",
    "MiningService",
    "ParameterError",
    "PatternStore",
    "Query",
    "QueryError",
    "Result",
    "SkinnyConstraintDriver",
    "SkinnyMine",
    "SkinnyPattern",
    "SupportMeasure",
    "UnknownConstraintError",
    "available_constraints",
    "canonical_diameter",
    "get_constraint",
    "is_delta_skinny",
    "is_l_long_delta_skinny",
    "mine_skinny_patterns",
    "register_constraint",
    "__version__",
]
