"""The service's execution layer: engine-per-thread workers + Stage-1 processes.

Each worker thread owns private forks of the snapshot engines (result and
context caches, stats log and metrics registry are per-thread; the graphs,
store view and descriptor cache are shared read-only), so no engine state
is ever touched from two threads.  A task carries the :class:`Snapshot` it
was admitted against — workers serve it from exactly that generation even
if a newer one has been published since.

Cold Stage-1 work (a query whose minimal-pattern entry is in no store
layer) can optionally be offloaded to a per-generation
``ProcessPoolExecutor`` running the existing
:mod:`repro.api.workers` entry points, keeping the GIL-bound worker
threads responsive for warm traffic; the mined entry lands in the
snapshot's store view, after which the thread serves the query warm.

Deadline semantics: a task whose budget elapsed while queued is answered
with ``deadline_exceeded`` without running; a task abandoned mid-run (the
event loop timed out waiting) finishes its computation but the outcome is
discarded — workers are never killed, they always return to the queue.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api.engine import MiningEngine
from repro.api.errors import QueryError, error_code
from repro.api.query import Query, Result, ResultError
from repro.index.store import IndexEntry
from repro.obs.metrics import MetricsRegistry
from repro.server.protocol import DEADLINE_EXCEEDED, INTERNAL_ERROR
from repro.server.snapshots import Snapshot

_STOP = object()


class WorkerTask:
    """One admitted query travelling from the event loop to a worker."""

    __slots__ = (
        "query",
        "snapshot",
        "future",
        "loop",
        "enqueued_at",
        "deadline",
        "abandoned",
        "on_done",
    )

    def __init__(self, query: Query, snapshot: Snapshot, future, loop, deadline=None):
        self.query = query
        self.snapshot = snapshot
        self.future = future
        self.loop = loop
        self.enqueued_at = time.monotonic()
        self.deadline: Optional[float] = deadline  # time.monotonic() instant
        self.abandoned = False
        # Invoked on the event-loop thread after every dispatched task —
        # delivered or abandoned alike — so admission accounting never leaks.
        self.on_done = None

    @property
    def constraint_id(self) -> str:
        return self.query.constraint_id


@dataclass
class Outcome:
    """What a worker hands back: a result or a typed error, plus timings."""

    result: Optional[Result]
    error: Optional[ResultError]
    queue_seconds: float
    exec_seconds: float
    generation: int

    @property
    def ok(self) -> bool:
        return self.error is None


class Stage1ProcessPool:
    """Per-generation process pool for cold Stage-1 mining (optional)."""

    def __init__(self, processes: int) -> None:
        self._processes = processes
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._generation: Optional[int] = None

    def executor_for(self, snapshot: Snapshot, caps: Dict[str, object]):
        """The executor initialised with this generation's graphs."""
        from repro.api.workers import init_worker

        with self._lock:
            if self._generation != snapshot.generation:
                previous = self._executor
                self._executor = ProcessPoolExecutor(
                    max_workers=self._processes,
                    initializer=init_worker,
                    initargs=(snapshot.graphs, caps),
                )
                self._generation = snapshot.generation
                if previous is not None:
                    previous.shutdown(wait=False)
            return self._executor

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None
                self._generation = None


class WorkerPool:
    """Fixed thread pool executing :class:`WorkerTask` s against snapshots."""

    def __init__(self, size: int = 4, stage1_processes: int = 0) -> None:
        if size < 1:
            raise ValueError("worker pool size must be at least 1")
        self.size = size
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._registries: List[MetricsRegistry] = []
        self._stage1_pool = (
            Stage1ProcessPool(stage1_processes) if stage1_processes > 0 else None
        )
        self.abandoned_total = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        for index in range(self.size):
            registry = MetricsRegistry()
            self._registries.append(registry)
            thread = threading.Thread(
                target=self._worker_main,
                args=(registry,),
                name="repro-serve-worker-%d" % index,
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self._stage1_pool is not None:
            self._stage1_pool.shutdown()

    def submit(self, task: WorkerTask) -> None:
        self._queue.put(task)

    def metrics_snapshots(self) -> List[Dict[str, object]]:
        """Best-effort snapshots of every worker's private registry."""
        return [registry.snapshot() for registry in self._registries]

    # ------------------------------------------------------------------ #
    # worker thread body
    # ------------------------------------------------------------------ #
    def _worker_main(self, registry: MetricsRegistry) -> None:
        engines: Dict[int, MiningEngine] = {}
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            outcome = self._execute(task, registry, engines)
            self._resolve(task, outcome)

    def _engine_for(
        self,
        task: WorkerTask,
        registry: MetricsRegistry,
        engines: Dict[int, MiningEngine],
    ) -> MiningEngine:
        generation = task.snapshot.generation
        engine = engines.get(generation)
        if engine is None:
            engine = task.snapshot.engine.fork(metrics=registry)
            engines[generation] = engine
            # In-flight traffic spans at most the generations around a
            # publish; anything older is unreachable.
            while len(engines) > 2:
                del engines[min(engines)]
        return engine

    def _execute(
        self,
        task: WorkerTask,
        registry: MetricsRegistry,
        engines: Dict[int, MiningEngine],
    ) -> Outcome:
        picked_up = time.monotonic()
        queue_seconds = picked_up - task.enqueued_at
        generation = task.snapshot.generation

        def errored(error: ResultError) -> Outcome:
            return Outcome(
                result=None,
                error=error,
                queue_seconds=queue_seconds,
                exec_seconds=time.monotonic() - picked_up,
                generation=generation,
            )

        if task.abandoned or (task.deadline is not None and picked_up >= task.deadline):
            return errored(
                ResultError(
                    DEADLINE_EXCEEDED,
                    "budget exhausted while queued (%.0f ms in queue)"
                    % (queue_seconds * 1000.0),
                )
            )
        try:
            engine = self._engine_for(task, registry, engines)
            self._offload_cold_stage_one(task, engine)
            result = engine.run(task.query)
        except FutureTimeoutError:
            return errored(
                ResultError(DEADLINE_EXCEEDED, "budget exhausted during Stage-1 mining")
            )
        except QueryError as error:
            return errored(ResultError(error_code(error), str(error)))
        except Exception as error:  # noqa: BLE001 - a worker must never die
            return errored(
                ResultError(INTERNAL_ERROR, "%s: %s" % (type(error).__name__, error))
            )
        return Outcome(
            result=result,
            error=None,
            queue_seconds=queue_seconds,
            exec_seconds=time.monotonic() - picked_up,
            generation=generation,
        )

    def _offload_cold_stage_one(self, task: WorkerTask, engine: MiningEngine) -> None:
        """Mine a missing Stage-1 entry in the process pool, if configured."""
        if self._stage1_pool is None:
            return
        key = engine.stage_one_key(task.query)
        if key in engine.store:
            return
        executor = self._stage1_pool.executor_for(task.snapshot, engine.caps)
        from repro.api.workers import mine_stage_one

        query = task.query
        pending = executor.submit(
            mine_stage_one,
            (
                0,
                query.constraint_id,
                dict(query.params),
                query.min_support,
                query.support_measure,
            ),
        )
        timeout = None
        if task.deadline is not None:
            timeout = max(0.0, task.deadline - time.monotonic())
        _, patterns, seconds = pending.result(timeout=timeout)
        engine.store.put(
            IndexEntry(key=key, patterns=list(patterns), build_seconds=seconds)
        )

    def _resolve(self, task: WorkerTask, outcome: Outcome) -> None:
        if task.abandoned:
            self.abandoned_total += 1

        def deliver() -> None:
            # An abandoned task's future was cancelled by the waiter; the
            # done() guard makes the result drop on the floor while the
            # on_done hook still releases the admission slot.
            if not task.future.done():
                task.future.set_result(outcome)
            if task.on_done is not None:
                task.on_done(task, outcome)

        try:
            task.loop.call_soon_threadsafe(deliver)
        except RuntimeError:
            # The event loop closed mid-shutdown; nothing to deliver to.
            pass
