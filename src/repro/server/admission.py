"""Admission control: a bounded FIFO queue with per-constraint fairness.

The controller is confined to the event-loop thread (no locks): the server
offers every parsed query to :meth:`AdmissionController.offer`, which sheds
with :class:`~repro.server.protocol.ServiceUnavailable` once the queue is
full, then drains :meth:`dispatchable` — FIFO with skips — whenever
capacity frees up.  A task is dispatchable when both the total in-flight
limit and its constraint's per-constraint limit have room; the skip rule
means one expensive constraint saturating its share cannot head-of-line
block cheap queries of another constraint behind it.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Iterator, Optional

from repro.server.protocol import ServiceUnavailable


class AdmissionController:
    """Bounded queue + in-flight accounting (event-loop confined).

    Parameters
    ----------
    max_queue:
        Maximum number of admitted-but-not-yet-dispatched queries; the next
        offer beyond it is shed with a retriable ``service_unavailable``.
    max_inflight:
        Total queries executing at once (normally the worker-pool size).
    per_constraint:
        Per-constraint in-flight ceiling (fairness across constraints);
        ``None`` disables the per-constraint check.
    """

    def __init__(
        self,
        max_queue: int = 256,
        max_inflight: int = 4,
        per_constraint: Optional[int] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if per_constraint is not None and per_constraint < 1:
            raise ValueError("per_constraint must be at least 1 when given")
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self.per_constraint = per_constraint
        self._pending: Deque[object] = deque()
        self._inflight: Counter = Counter()
        self._total_inflight = 0
        self.shed_total = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def inflight(self) -> int:
        return self._total_inflight

    def inflight_for(self, constraint_id: str) -> int:
        return self._inflight[constraint_id]

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def offer(self, task: object) -> None:
        """Admit ``task`` (anything with a ``constraint_id`` attribute) or shed."""
        if len(self._pending) >= self.max_queue:
            self.shed_total += 1
            raise ServiceUnavailable(
                "admission queue full (%d queued, %d in flight); retry later"
                % (len(self._pending), self._total_inflight),
                queue_depth=len(self._pending),
            )
        self._pending.append(task)

    def _admits(self, constraint_id: str) -> bool:
        if self._total_inflight >= self.max_inflight:
            return False
        if (
            self.per_constraint is not None
            and self._inflight[constraint_id] >= self.per_constraint
        ):
            return False
        return True

    def dispatchable(self) -> Iterator[object]:
        """Yield (and account) every task that may start now, FIFO with skips.

        Tasks whose constraint is at its limit are skipped but keep their
        queue position; each yielded task is already counted in flight, so
        the caller must pair every yield with a later :meth:`finished`.
        """
        while self._pending and self._total_inflight < self.max_inflight:
            admitted = None
            skipped: Deque[object] = deque()
            while self._pending:
                task = self._pending.popleft()
                if self._admits(task.constraint_id):
                    admitted = task
                    break
                skipped.append(task)
            # Restore skipped tasks ahead of everything that arrived later.
            while skipped:
                self._pending.appendleft(skipped.pop())
            if admitted is None:
                return
            self._inflight[admitted.constraint_id] += 1
            self._total_inflight += 1
            yield admitted

    def finished(self, constraint_id: str) -> None:
        """Release one in-flight slot for ``constraint_id``."""
        if self._inflight[constraint_id] <= 0 or self._total_inflight <= 0:
            raise RuntimeError(
                "finished(%r) without a matching dispatch" % constraint_id
            )
        self._inflight[constraint_id] -= 1
        self._total_inflight -= 1

    def drain_pending(self) -> Iterator[object]:
        """Remove and yield every queued task (shutdown: answer, don't run)."""
        while self._pending:
            yield self._pending.popleft()
