"""Snapshot isolation: immutable (graphs, store view, engine) generations.

The serving tier never mutates live data structures that workers might be
reading.  Instead, the :class:`SnapshotManager` holds one *current*
:class:`Snapshot` — a generation number, a private deep copy of the graph
database, a copy-on-write :class:`~repro.index.store.SnapshotStoreView`
over the previous generation's store, and a prototype
:class:`~repro.api.MiningEngine` bound to both.  ``apply_delta`` builds the
next generation off the hot path:

1. deep-copy the current generation's graphs (readers keep theirs);
2. layer a fresh store view over the current generation's store;
3. run the engine's incremental repair *into that view* — the base store,
   still serving every in-flight query, is never touched;
4. publish the finished snapshot with a single attribute assignment
   (atomic under the GIL), so readers see either the old generation or the
   complete new one — never a half-repaired index.

Workers resolve ``manager.current`` once per query and keep that reference
for the query's whole execution; generations already picked up keep
working after a publish, so ``apply_delta`` never blocks in-flight queries.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.api.engine import MiningEngine
from repro.core.database import EdgeDelta, GraphDelta
from repro.graph.labeled_graph import LabeledGraph
from repro.index.incremental import RepairReport
from repro.index.store import PatternStore


class Snapshot:
    """One immutable serving generation (graphs + store view + engine)."""

    __slots__ = ("generation", "graphs", "store", "engine", "fingerprint", "repair_report")

    def __init__(
        self,
        generation: int,
        graphs: List[LabeledGraph],
        store: PatternStore,
        engine: MiningEngine,
        repair_report: Optional[RepairReport] = None,
    ) -> None:
        self.generation = generation
        self.graphs = graphs
        self.store = store
        self.engine = engine
        self.fingerprint = engine.fingerprint
        self.repair_report = repair_report


class SnapshotManager:
    """Owns the current :class:`Snapshot` and builds successors from deltas.

    ``engine_factory(graphs, store)`` must return a fresh
    :class:`MiningEngine` over exactly those objects; the factory is where
    the server threads its caps, Stage-1 mode and the shared descriptor
    cache through (descriptors are data-independent, so one cache can span
    every generation).
    """

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        store: PatternStore,
        engine_factory: Callable[[List[LabeledGraph], PatternStore], MiningEngine],
    ) -> None:
        graph_list = [graphs] if isinstance(graphs, LabeledGraph) else list(graphs)
        self._engine_factory = engine_factory
        self._writer_lock = threading.Lock()
        engine = engine_factory(graph_list, store)
        self._current = Snapshot(0, graph_list, store, engine)

    @property
    def current(self) -> Snapshot:
        """The latest published generation (a single attribute read)."""
        return self._current

    @property
    def generation(self) -> int:
        return self._current.generation

    def apply_delta(
        self, delta: Union[GraphDelta, Sequence[EdgeDelta]]
    ) -> Tuple[Snapshot, RepairReport]:
        """Build and publish the next generation; returns it with its report.

        Runs under a writer lock (one delta at a time) but entirely off the
        read path: queries against the current generation proceed
        concurrently and later queries pick up the new generation only once
        it is complete.  A failed repair publishes nothing — the current
        generation stays live and the exception propagates.

        Frozen CSR views (see ``docs/DATA_PLANE.md``) carry over: a graph
        copy the delta does not name is content-identical to the previous
        generation's, and the views are immutable, so the new engine adopts
        them instead of re-freezing the whole database.  Only the edited
        transactions pay the freeze cost again, on their next scan.
        """
        with self._writer_lock:
            current = self._current
            graphs = [graph.copy() for graph in current.graphs]
            view = current.store.snapshot_view()
            engine = self._engine_factory(graphs, view)
            report = engine.apply_delta(delta)
            engine.adopt_frozen_views(current.engine, delta)
            snapshot = Snapshot(
                current.generation + 1, graphs, view, engine, repair_report=report
            )
            self._current = snapshot  # atomic publish
            return snapshot, report
