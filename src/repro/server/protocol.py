"""Wire protocol of the mining service: NDJSON over TCP.

One request per line, one response per line, both JSON objects.  Requests
carry an ``op`` (defaulting to ``"query"``) and an optional client-chosen
``id`` echoed verbatim in the response, so clients may pipeline requests on
one connection and match responses out of band:

``{"op": "query", "id": 7, "query": {<Query envelope>}, "budget_ms": 250,
"include_patterns": true}``
    Serve one mining query.  The response embeds a
    :class:`repro.api.Result` payload — ``stats`` (with the serving-tier
    fields ``budget_ms``/``queue_seconds``/``snapshot_generation`` stamped),
    ``num_patterns``, the pattern summaries when ``include_patterns`` and,
    on failure, a typed ``error`` object (see
    :class:`repro.api.ResultError`).

``{"op": "apply_delta", "delta": [{"op": "add", "u": 1, "v": 2, ...}]}``
    Apply edge edits; publishes a new snapshot generation.  The response
    carries the repair report and the new generation.

``{"op": "stats"}`` / ``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Service health, liveness and orderly shutdown.

Every response has ``"ok"`` (bool) and, on failure, the same typed
``error`` object the query path uses.  The service-level error codes —
``service_unavailable`` (queue full; retriable) and ``deadline_exceeded``
(budget exhausted; ``partial`` is always false — the service never returns
a truncated pattern list) — extend the query-error codes from
:func:`repro.api.errors.error_code`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api.errors import MalformedQueryError
from repro.api.query import ResultError
from repro.core.database import EdgeDelta

#: Hard cap on one request line; longer lines fail the connection cleanly.
MAX_LINE_BYTES = 8 * 1024 * 1024

SERVICE_UNAVAILABLE = "service_unavailable"
DEADLINE_EXCEEDED = "deadline_exceeded"
INTERNAL_ERROR = "internal_error"

KNOWN_OPS = ("query", "apply_delta", "stats", "ping", "shutdown")


class ServiceUnavailable(Exception):
    """The admission queue is full: the request was shed, retry later."""

    def __init__(self, message: str, queue_depth: Optional[int] = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth

    def to_result_error(self) -> ResultError:
        return ResultError(SERVICE_UNAVAILABLE, str(self), retriable=True)


class DeadlineExceeded(Exception):
    """The query's ``budget_ms`` elapsed before its result was ready."""

    def to_result_error(self) -> ResultError:
        # Not flagged retriable: the same query under the same budget will
        # very likely time out again; the client must raise the budget.
        return ResultError(DEADLINE_EXCEEDED, str(self), retriable=False, partial=False)


def parse_request(line: bytes) -> Dict[str, object]:
    """Decode one request line into its payload dict (typed errors on junk)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise MalformedQueryError(f"request line is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise MalformedQueryError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op", "query")
    if op not in KNOWN_OPS:
        raise MalformedQueryError(
            f"unknown op {op!r} (expected one of {', '.join(KNOWN_OPS)})"
        )
    return payload


def encode_response(payload: Mapping[str, object]) -> bytes:
    """One response line (newline-terminated, compact JSON)."""
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def parse_budget_ms(payload: Mapping[str, object]) -> Optional[int]:
    """Validate the optional ``budget_ms`` request field (``None`` = no limit)."""
    budget = payload.get("budget_ms")
    if budget is None:
        return None
    if isinstance(budget, bool) or not isinstance(budget, int):
        raise MalformedQueryError(f"'budget_ms' must be an integer, got {budget!r}")
    if budget < 1:
        raise MalformedQueryError("'budget_ms' must be positive when given")
    return budget


def parse_delta(operations: object) -> List[EdgeDelta]:
    """Decode the ``apply_delta`` operations list into :class:`EdgeDelta` s."""
    if not isinstance(operations, Sequence) or isinstance(operations, (str, bytes)):
        raise MalformedQueryError(
            f"'delta' must be a list of edge operations, got {operations!r}"
        )
    deltas: List[EdgeDelta] = []
    for position, item in enumerate(operations):
        if not isinstance(item, Mapping):
            raise MalformedQueryError(
                f"delta operation {position} must be an object, got {item!r}"
            )
        op = item.get("op")
        if op not in ("add", "remove"):
            raise MalformedQueryError(
                f"delta operation {position}: 'op' must be 'add' or 'remove', got {op!r}"
            )
        try:
            u, v = int(item["u"]), int(item["v"])
        except (KeyError, TypeError, ValueError) as error:
            raise MalformedQueryError(
                f"delta operation {position}: 'u' and 'v' must be integers"
            ) from error
        deltas.append(
            EdgeDelta(
                op=op,
                u=u,
                v=v,
                graph_index=int(item.get("graph_index", 0)),
                label_u=item.get("label_u"),
                label_v=item.get("label_v"),
                edge_label=item.get("edge_label"),
            )
        )
    return deltas
