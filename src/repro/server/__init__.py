"""repro.server — the long-lived concurrent mining service.

The serving tier over :class:`repro.api.MiningEngine`: an asyncio NDJSON
front end (:mod:`~repro.server.app`), admission control with load shedding
(:mod:`~repro.server.admission`), snapshot-isolated data/index generations
(:mod:`~repro.server.snapshots`), an engine-per-thread worker pool with
optional Stage-1 process offload (:mod:`~repro.server.workers`), a
generation-keyed TTL result cache (:mod:`~repro.server.cache`) and the wire
protocol (:mod:`~repro.server.protocol`).  Start one with ``repro serve``
or drive it programmatically::

    server = MiningServer(graphs, workers=4)
    await server.start()          # server.port now holds the bound port
    await server.serve_forever()

See ``docs/ARCHITECTURE.md`` (serving tier) for the snapshot-generation
lifecycle, admission policy and deadline semantics.
"""

from repro.server.admission import AdmissionController
from repro.server.app import MiningServer
from repro.server.cache import TTLResultCache
from repro.server.protocol import (
    DEADLINE_EXCEEDED,
    SERVICE_UNAVAILABLE,
    DeadlineExceeded,
    ServiceUnavailable,
)
from repro.server.snapshots import Snapshot, SnapshotManager
from repro.server.workers import WorkerPool, WorkerTask

__all__ = [
    "AdmissionController",
    "DEADLINE_EXCEEDED",
    "DeadlineExceeded",
    "MiningServer",
    "SERVICE_UNAVAILABLE",
    "ServiceUnavailable",
    "Snapshot",
    "SnapshotManager",
    "TTLResultCache",
    "WorkerPool",
    "WorkerTask",
]
