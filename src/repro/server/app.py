"""The mining service itself: asyncio front end over snapshots and workers.

:class:`MiningServer` ties the serving tier together:

* an asyncio TCP listener speaking the NDJSON protocol of
  :mod:`repro.server.protocol`, with per-connection pipelining (each query
  runs as its own asyncio task; responses carry the request ``id``);
* the :class:`~repro.server.admission.AdmissionController` (bounded queue,
  per-constraint fairness, load shed) feeding the
  :class:`~repro.server.workers.WorkerPool`;
* per-query deadlines (``budget_ms``): the event loop stops waiting when
  the budget elapses and answers with a typed ``deadline_exceeded`` error;
  the worker discards the abandoned computation and moves on;
* the generation-keyed :class:`~repro.server.cache.TTLResultCache`;
* ``apply_delta`` through the :class:`~repro.server.snapshots.SnapshotManager`
  (runs in the default executor; queries keep flowing against the old
  generation until the new one is published whole);
* telemetry through :mod:`repro.obs` — ``service.request`` /
  ``service.queue`` / ``service.worker`` span trees and the
  ``repro_service_*`` metric family (queue depth, in-flight, latency
  histograms, shed/deadline/abandon counters), merged with every worker
  thread's private registry on ``stats``.

Threading contract: everything on ``self`` except the snapshot manager and
worker pool is event-loop confined.  Workers communicate back exclusively
via ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.api.engine import MiningEngine
from repro.api.errors import MalformedQueryError, QueryError, error_code
from repro.api.query import Query, QueryStats, Result, ResultError
from repro.core.levelgrow import DiameterDescriptorCache
from repro.graph.labeled_graph import LabeledGraph
from repro.index.store import MemoryPatternStore, PatternStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.admission import AdmissionController
from repro.server.cache import TTLResultCache
from repro.server.protocol import (
    MAX_LINE_BYTES,
    DeadlineExceeded,
    ServiceUnavailable,
    encode_response,
    parse_budget_ms,
    parse_delta,
    parse_request,
)
from repro.server.snapshots import SnapshotManager
from repro.server.workers import Outcome, WorkerPool, WorkerTask


class MiningServer:
    """A long-lived concurrent mining service over one dataset.

    Parameters
    ----------
    graphs:
        The data graph or graph database to serve (generation 0).
    store:
        Stage-1 index backend for generation 0 (defaults to in-memory).
        Deltas never write to it: each new generation layers a
        copy-on-write view on top.
    host / port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    workers:
        Worker-thread count (also the total in-flight limit).
    max_queue / per_constraint:
        Admission policy (see :class:`AdmissionController`).
    default_budget_ms:
        Deadline applied to queries that do not send ``budget_ms``;
        ``None`` means no default deadline.
    cache_size / cache_ttl_seconds:
        The TTL'd result cache bounds.
    stage1_processes:
        When positive, cold Stage-1 mining is offloaded to that many
        subprocesses (see :class:`~repro.server.workers.Stage1ProcessPool`).
    engine_options:
        Extra keyword arguments for every generation's
        :class:`MiningEngine` (caps, ``stage1_mode``, ...).
    tracer / metrics:
        Event-loop-side telemetry sinks; both default to private no-op /
        fresh instances so a server never contends with other components.
    """

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        store: Optional[PatternStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        max_queue: int = 256,
        per_constraint: Optional[int] = None,
        default_budget_ms: Optional[int] = None,
        cache_size: int = 1024,
        cache_ttl_seconds: float = 30.0,
        stage1_processes: int = 0,
        engine_options: Optional[Dict[str, object]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._default_budget_ms = default_budget_ms
        self._engine_options = dict(engine_options or {})
        self._descriptor_cache = DiameterDescriptorCache()
        self._maintenance_metrics = MetricsRegistry()
        self._snapshots = SnapshotManager(
            graphs, store if store is not None else MemoryPatternStore(), self._make_engine
        )
        self._pool = WorkerPool(workers, stage1_processes=stage1_processes)
        self._admission = AdmissionController(
            max_queue=max_queue, max_inflight=workers, per_constraint=per_constraint
        )
        self._cache = TTLResultCache(
            max_entries=cache_size, ttl_seconds=cache_ttl_seconds
        )
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self.port: Optional[int] = None

    def _make_engine(
        self, graphs: List[LabeledGraph], store: PatternStore
    ) -> MiningEngine:
        return MiningEngine(
            graphs,
            store=store,
            descriptor_cache=self._descriptor_cache,
            metrics=self._maintenance_metrics,
            **self._engine_options,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        return self._snapshots.generation

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    async def start(self) -> None:
        """Bind the listener and start the worker threads."""
        self._pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._gauge("repro_service_snapshot_generation").set(self.generation)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` or a ``shutdown`` op arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self._shutdown_now()

    async def stop(self) -> None:
        """Request an orderly shutdown (idempotent)."""
        self._shutdown.set()
        if self._server is not None:
            await self._shutdown_now()

    async def _shutdown_now(self) -> None:
        server, self._server = self._server, None
        if server is None:
            return
        server.close()
        await server.wait_closed()
        # Queued-but-undispatched tasks get a clean unavailable answer.
        for task in self._admission.drain_pending():
            if not task.future.done():
                task.future.set_result(
                    Outcome(
                        result=None,
                        error=ServiceUnavailable("server shutting down").to_result_error(),
                        queue_seconds=0.0,
                        exec_seconds=0.0,
                        generation=task.snapshot.generation,
                    )
                )
        await asyncio.get_running_loop().run_in_executor(None, self._pool.stop)

    # ------------------------------------------------------------------ #
    # telemetry helpers (event-loop thread only)
    # ------------------------------------------------------------------ #
    _METRIC_HELP = {
        "repro_service_requests_total": "Requests received by the mining service",
        "repro_service_request_seconds": "End-to-end service request latency",
        "repro_service_queue_seconds": "Time queries spent in the admission queue",
        "repro_service_queue_depth": "Queries waiting in the admission queue",
        "repro_service_inflight": "Queries currently executing on workers",
        "repro_service_connections": "Open client connections",
        "repro_service_sheds_total": "Requests shed by admission control",
        "repro_service_deadline_exceeded_total": "Requests past their budget_ms",
        "repro_service_abandoned_total": "Worker computations discarded after a timeout",
        "repro_service_result_cache_hits_total": "Service result-cache hits",
        "repro_service_result_cache_misses_total": "Service result-cache misses",
        "repro_service_deltas_total": "apply_delta operations served",
        "repro_service_snapshot_generation": "Current published snapshot generation",
    }

    def _counter(self, name: str, **labels: object):
        return self._metrics.counter(name, self._METRIC_HELP.get(name, ""), labels or None)

    def _gauge(self, name: str):
        return self._metrics.gauge(name, self._METRIC_HELP.get(name, ""))

    def _histogram(self, name: str, **labels: object):
        return self._metrics.histogram(
            name, self._METRIC_HELP.get(name, ""), labels or None
        )

    def _update_load_gauges(self) -> None:
        self._gauge("repro_service_queue_depth").set(self._admission.queue_depth)
        self._gauge("repro_service_inflight").set(self._admission.inflight)

    def _observe_request(
        self,
        constraint_id: str,
        outcome: str,
        seconds: float,
        queue_seconds: float = 0.0,
        worker_seconds: float = 0.0,
    ) -> None:
        self._counter(
            "repro_service_requests_total", constraint=constraint_id, outcome=outcome
        ).inc()
        self._histogram(
            "repro_service_request_seconds", constraint=constraint_id
        ).observe(seconds)
        if queue_seconds or worker_seconds:
            self._histogram("repro_service_queue_seconds").observe(queue_seconds)
        if self._tracer.enabled:
            children = []
            if queue_seconds:
                children.append({"name": "service.queue", "seconds": queue_seconds})
            if worker_seconds:
                children.append({"name": "service.worker", "seconds": worker_seconds})
            self._tracer.record(
                "service.request",
                seconds,
                children=children,
                constraint=constraint_id,
                outcome=outcome,
            )

    # ------------------------------------------------------------------ #
    # dispatch plumbing (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        for task in self._admission.dispatchable():
            self._pool.submit(task)
        self._update_load_gauges()

    def _task_done(self, task: WorkerTask, outcome: Outcome) -> None:
        self._admission.finished(task.constraint_id)
        if task.abandoned:
            self._counter("repro_service_abandoned_total").inc()
        self._pump()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._gauge("repro_service_connections").inc()
        write_lock = asyncio.Lock()
        inflight_responses: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionResetError):
                    break  # over-long line or peer vanished: drop the connection
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = parse_request(line)
                except MalformedQueryError as error:
                    await self._respond_error(
                        writer, write_lock, None, ResultError(error_code(error), str(error))
                    )
                    continue
                op = payload.get("op", "query")
                if op == "query":
                    # Pipelined: each query is its own task; the response
                    # carries the request id.
                    response_task = asyncio.ensure_future(
                        self._handle_query(payload, writer, write_lock)
                    )
                    inflight_responses.add(response_task)
                    response_task.add_done_callback(inflight_responses.discard)
                elif op == "apply_delta":
                    await self._handle_apply_delta(payload, writer, write_lock)
                elif op == "stats":
                    await self._handle_stats(payload, writer, write_lock)
                elif op == "ping":
                    await self._send(
                        writer,
                        write_lock,
                        {
                            "id": payload.get("id"),
                            "ok": True,
                            "op": "ping",
                            "generation": self.generation,
                        },
                    )
                elif op == "shutdown":
                    await self._send(
                        writer,
                        write_lock,
                        {"id": payload.get("id"), "ok": True, "op": "shutdown"},
                    )
                    self._shutdown.set()
                    break
        finally:
            for response_task in list(inflight_responses):
                response_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._gauge("repro_service_connections").inc(-1.0)

    async def _send(self, writer, write_lock, payload: Dict[str, object]) -> None:
        data = encode_response(payload)
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to deliver

    async def _respond_error(
        self,
        writer,
        write_lock,
        request_id,
        error: ResultError,
        stats: Optional[QueryStats] = None,
    ) -> None:
        body = Result.failed(error, stats=stats).to_dict()
        body.update({"id": request_id, "ok": False})
        await self._send(writer, write_lock, body)

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    async def _handle_query(self, payload, writer, write_lock) -> None:
        request_id = payload.get("id")
        started = time.monotonic()
        try:
            query = Query.from_dict(payload.get("query"))
            budget_ms = parse_budget_ms(payload)
        except QueryError as error:
            self._observe_request("<invalid>", "invalid", time.monotonic() - started)
            await self._respond_error(
                writer, write_lock, request_id, ResultError(error_code(error), str(error))
            )
            return
        if budget_ms is None:
            budget_ms = self._default_budget_ms
        include_patterns = bool(payload.get("include_patterns", True))
        snapshot = self._snapshots.current

        cache_key = query.cache_key()
        cached = self._cache.get(snapshot.generation, cache_key)
        if cached is not None:
            self._counter("repro_service_result_cache_hits_total").inc()
            measured = time.monotonic() - started
            stats = QueryStats(
                request_key=cache_key,
                total_seconds=measured,
                overhead_seconds=measured,
                result_cache_hit=True,
                num_patterns=cached["num_patterns"],
                budget_ms=budget_ms,
                queue_seconds=0.0,
                snapshot_generation=snapshot.generation,
            )
            response: Dict[str, object] = {
                "id": request_id,
                "ok": True,
                "stats": stats.to_dict(),
                "num_patterns": cached["num_patterns"],
            }
            if include_patterns:
                response["patterns"] = cached["patterns"]
            self._observe_request(query.constraint_id, "cache_hit", measured)
            await self._send(writer, write_lock, response)
            return
        self._counter("repro_service_result_cache_misses_total").inc()

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Outcome]" = loop.create_future()
        deadline = (
            started + budget_ms / 1000.0 if budget_ms is not None else None
        )
        task = WorkerTask(query, snapshot, future, loop, deadline=deadline)
        task.on_done = self._task_done
        try:
            self._admission.offer(task)
        except ServiceUnavailable as error:
            self._counter("repro_service_sheds_total").inc()
            self._observe_request(
                query.constraint_id, "shed", time.monotonic() - started
            )
            await self._respond_error(
                writer, write_lock, request_id, error.to_result_error()
            )
            return
        self._pump()

        try:
            if deadline is None:
                outcome = await future
            else:
                outcome = await asyncio.wait_for(
                    future, timeout=max(0.0, deadline - time.monotonic())
                )
        except asyncio.TimeoutError:
            task.abandoned = True
            self._counter("repro_service_deadline_exceeded_total").inc()
            elapsed = time.monotonic() - started
            self._observe_request(query.constraint_id, "deadline", elapsed)
            error = DeadlineExceeded(
                "budget of %d ms exhausted after %.0f ms" % (budget_ms, elapsed * 1000.0)
            ).to_result_error()
            await self._respond_error(writer, write_lock, request_id, error)
            return

        elapsed = time.monotonic() - started
        if not outcome.ok:
            label = (
                "deadline" if outcome.error.code == "deadline_exceeded" else "error"
            )
            self._observe_request(
                query.constraint_id,
                label,
                elapsed,
                queue_seconds=outcome.queue_seconds,
                worker_seconds=outcome.exec_seconds,
            )
            await self._respond_error(
                writer, write_lock, request_id, outcome.error
            )
            return

        result = outcome.result
        stats = result.stats
        stats.budget_ms = budget_ms
        stats.queue_seconds = outcome.queue_seconds
        stats.snapshot_generation = outcome.generation
        patterns_payload = result.to_dict(include_patterns=True).get("patterns", [])
        self._cache.put(
            outcome.generation,
            cache_key,
            {"num_patterns": len(result.patterns), "patterns": patterns_payload},
        )
        response = {
            "id": request_id,
            "ok": True,
            "stats": stats.to_dict(),
            "num_patterns": len(result.patterns),
        }
        if include_patterns:
            response["patterns"] = patterns_payload
        self._observe_request(
            query.constraint_id,
            "ok",
            elapsed,
            queue_seconds=outcome.queue_seconds,
            worker_seconds=outcome.exec_seconds,
        )
        await self._send(writer, write_lock, response)

    async def _handle_apply_delta(self, payload, writer, write_lock) -> None:
        request_id = payload.get("id")
        try:
            deltas = parse_delta(payload.get("delta"))
        except MalformedQueryError as error:
            await self._respond_error(
                writer, write_lock, request_id, ResultError(error_code(error), str(error))
            )
            return
        loop = asyncio.get_running_loop()
        try:
            snapshot, report = await loop.run_in_executor(
                None, self._snapshots.apply_delta, deltas
            )
        except (ValueError, KeyError) as error:
            await self._respond_error(
                writer, write_lock, request_id, ResultError("invalid_delta", str(error))
            )
            return
        self._cache.purge_generations_before(snapshot.generation)
        self._counter("repro_service_deltas_total").inc()
        self._gauge("repro_service_snapshot_generation").set(snapshot.generation)
        await self._send(
            writer,
            write_lock,
            {
                "id": request_id,
                "ok": True,
                "op": "apply_delta",
                "generation": snapshot.generation,
                "fingerprint": snapshot.fingerprint,
                "report": dataclasses.asdict(report),
            },
        )

    async def _handle_stats(self, payload, writer, write_lock) -> None:
        merged = MetricsRegistry()
        merged.absorb(self._metrics.snapshot())
        merged.absorb(self._maintenance_metrics.snapshot())
        for snapshot in self._pool.metrics_snapshots():
            merged.absorb(snapshot)
        await self._send(
            writer,
            write_lock,
            {
                "id": payload.get("id"),
                "ok": True,
                "op": "stats",
                "metrics": merged.snapshot(),
                "server": {
                    "generation": self.generation,
                    "queue_depth": self._admission.queue_depth,
                    "inflight": self._admission.inflight,
                    "workers": self._pool.size,
                    "shed_total": self._admission.shed_total,
                    "result_cache_entries": len(self._cache),
                    "result_cache_hits": self._cache.hits,
                    "result_cache_misses": self._cache.misses,
                },
            },
        )
