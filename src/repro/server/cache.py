"""The serving tier's TTL'd result cache, keyed on snapshot generation.

Entries are keyed ``(generation, query cache key)``: a delta publishes a
new generation, so every cached answer from before the delta simply stops
being addressable — delta-driven invalidation without any scanning or
coordination with workers.  :meth:`purge_generations_before` reclaims the
memory of unreachable generations; the TTL bounds staleness *within* a
generation (irrelevant for correctness — data only changes via deltas —
but it keeps the cache from pinning cold results forever), and an LRU
bound caps the entry count.

Event-loop confined: no locks.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple


class TTLResultCache:
    """LRU + TTL cache of serialised query responses, generation-scoped."""

    def __init__(
        self,
        max_entries: int = 1024,
        ttl_seconds: float = 30.0,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._now = time_fn
        # (generation, cache_key) -> (expires_at, payload)
        self._entries: "OrderedDict[Tuple[int, str], Tuple[float, object]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, generation: int, cache_key: str) -> Optional[object]:
        """The cached payload for this generation's query, or ``None``."""
        slot = (generation, cache_key)
        entry = self._entries.get(slot)
        if entry is None:
            self.misses += 1
            return None
        expires_at, payload = entry
        if self._now() >= expires_at:
            del self._entries[slot]
            self.misses += 1
            return None
        self._entries.move_to_end(slot)
        self.hits += 1
        return payload

    def put(self, generation: int, cache_key: str, payload: object) -> None:
        slot = (generation, cache_key)
        self._entries[slot] = (self._now() + self.ttl_seconds, payload)
        self._entries.move_to_end(slot)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def purge_generations_before(self, generation: int) -> int:
        """Drop entries of superseded generations; returns how many went."""
        stale = [slot for slot in self._entries if slot[0] < generation]
        for slot in stale:
            del self._entries[slot]
        return len(stale)
