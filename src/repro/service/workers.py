"""Multiprocessing workers for parallel Stage-1 precompute.

``multiprocessing`` needs picklable module-level callables; the data graphs
are shipped once per worker through the pool initializer (not once per task),
so precomputing many parameters amortises the transfer.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.database import MiningContext, SupportMeasure
from repro.core.diammine import DiamMine
from repro.core.patterns import PathPattern
from repro.graph.labeled_graph import LabeledGraph

_WORKER_STATE: Dict[str, object] = {}


def init_worker(
    graphs: Sequence[LabeledGraph],
    min_support: int,
    support_measure_value: str,
    max_paths_per_length: Optional[int],
) -> None:
    """Pool initializer: build the worker-local mining context once."""
    context = MiningContext(
        list(graphs), min_support, SupportMeasure(support_measure_value)
    )
    _WORKER_STATE["miner"] = DiamMine(context, max_paths_per_length=max_paths_per_length)


def mine_length(length: int) -> Tuple[int, List[PathPattern], float]:
    """Mine the frequent length-``length`` paths in this worker's context."""
    miner = _WORKER_STATE["miner"]
    started = time.perf_counter()
    patterns = miner.mine(length)
    return length, patterns, time.perf_counter() - started
