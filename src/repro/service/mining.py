"""The mining service: the batched front end over the generic engine.

Since the unified query API landed, the serving machinery (store-backed
Stage 1, driver-dispatched Stage 2, result cache, per-request stats, delta
repair) lives in :class:`repro.api.MiningEngine` and works for *any*
registered constraint.  :class:`MiningService` subclasses the engine and
keeps the historical skinny-specific surface alive:

* :class:`MineRequest` — the pre-redesign wire object ``(l, δ, σ, …)``; it
  now converts to ``Query("skinny", {"length": l, "delta": δ}, …)`` via
  :meth:`MineRequest.to_query`, and :meth:`MineRequest.from_dict` emits a
  :class:`DeprecationWarning` steering callers to the Query envelope.
* :meth:`MiningService.mine` / :meth:`MiningService.serve_batch` — accept
  both :class:`MineRequest` and :class:`repro.api.Query` objects and answer
  with :class:`MineResponse` (a :class:`repro.api.Result` that remembers the
  original request object).
* :meth:`MiningService.precompute` — the length-batched skinny Stage-1
  precompute, now a thin wrapper over the engine's constraint-generic
  ``precompute_queries`` (which owns the ``multiprocessing`` pool).

Every request is timed; ``stats_log`` keeps per-request accounting in the
shape the paper's scalability figures report (Stage-1 / Stage-2 split), and
since the emission fast path (PR 5) each skinny response also carries its
own Stage-2 growth counters (``stats.level_statistics``:
``canonical_incremental_hits``, ``invariant_cache_hits``,
``probes_batched``, phase timings) — scoped to that single request, never
merged across requests.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.api.engine import MiningEngine
from repro.api.query import Query, QueryStats, Result
from repro.api.registry import get_constraint
from repro.core.database import SupportMeasure
from repro.index.incremental import SKINNY_CONSTRAINT_ID

#: Historical name re-exported for callers that imported it from here.
RequestStats = QueryStats

#: The one consolidated deprecation message for the legacy batch surface.
#: Every shim entry point in this module emits exactly this text, so callers
#: (and the pinning test in tests/service/test_shims.py) see a single story:
#: where each replacement lives, not a different nudge per method.
LEGACY_SURFACE_DEPRECATION = (
    "the legacy batch surface of repro.service.mining is deprecated: "
    "build repro.api.Query directly (query_from_payload converts old "
    "MineRequest payloads), run in-process batches through "
    "MiningEngine.run_batch, and serve concurrent clients with the "
    "long-lived repro.server tier (`repro serve`)"
)


def _warn_legacy_surface() -> None:
    # stacklevel=3: past this helper and the shim method, onto the caller.
    warnings.warn(LEGACY_SURFACE_DEPRECATION, DeprecationWarning, stacklevel=3)


# --------------------------------------------------------------------- #
# requests and responses
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MineRequest:
    """One skinny mining request: all ``l``-long ``δ``-skinny patterns with support ≥ σ.

    Deprecation shim: new code should build
    ``Query("skinny", {"length": l, "delta": d}, ...)`` directly — this class
    remains so pre-redesign callers and stored payloads keep working.

    ``top_k`` truncates the response to the K highest-support patterns;
    ``include_minimal`` keeps the bare canonical diameters in the result
    (mirroring :meth:`repro.core.skinnymine.SkinnyMine.mine`).
    """

    length: int
    delta: int
    min_support: int
    top_k: Optional[int] = None
    support_measure: str = SupportMeasure.EMBEDDINGS.value
    include_minimal: bool = True

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be at least 1")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")
        if self.top_k is not None:
            try:
                coerced = int(self.top_k)
            except (TypeError, ValueError) as error:
                raise ValueError(f"top_k must be an integer, got {self.top_k!r}") from error
            if coerced < 1:
                raise ValueError("top_k must be positive when given")
            object.__setattr__(self, "top_k", coerced)
        object.__setattr__(
            self, "support_measure", SupportMeasure(self.support_measure).value
        )

    @property
    def measure(self) -> SupportMeasure:
        return SupportMeasure(self.support_measure)

    def to_query(self) -> Query:
        """The equivalent generic :class:`Query` (the migration path)."""
        return Query(
            constraint_id=SKINNY_CONSTRAINT_ID,
            params={"length": self.length, "delta": self.delta},
            min_support=self.min_support,
            top_k=self.top_k,
            support_measure=self.support_measure,
            include_minimal=self.include_minimal,
        )

    def cache_key(self) -> str:
        """Canonical identity of the request (the result-cache key)."""
        return self.to_query().cache_key()

    def stage_one_parameter(self, stage1_mode: str = "exact") -> Dict[str, object]:
        """The Stage-1 index parameter (δ and top_k do not affect Stage 1).

        ``stage1_mode`` defaults to the engine default (``"exact"``); pass
        the serving engine's actual mode (``service.stage1_mode.value``)
        when the service was constructed with the pruned opt-in, or the key
        will not match its store entries.
        """
        return {
            "length": self.length,
            "min_support": self.min_support,
            "support_measure": self.support_measure,
            "stage1_mode": stage1_mode,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MineRequest":
        _warn_legacy_surface()
        if not isinstance(payload, dict):
            raise ValueError(f"mine request must be an object, got {payload!r}")
        missing = [field_name for field_name in ("length", "delta") if field_name not in payload]
        if missing:
            raise ValueError(
                f"mine request {payload!r} is missing required field(s): {', '.join(missing)}"
            )
        return cls(
            length=int(payload["length"]),
            delta=int(payload["delta"]),
            min_support=int(payload.get("min_support", payload.get("sigma", 1))),
            top_k=payload.get("top_k"),
            support_measure=payload.get(
                "support_measure", SupportMeasure.EMBEDDINGS.value
            ),
            include_minimal=bool(payload.get("include_minimal", True)),
        )


@dataclass
class MineResponse(Result):
    """A :class:`Result` that also remembers the request object it answered.

    ``request`` is whatever was handed to :meth:`MiningService.mine` — a
    legacy :class:`MineRequest` or a :class:`Query` — so batched callers can
    correlate responses positionally or by identity.
    """

    request: Union[MineRequest, Query, None] = None


# --------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------- #
class MiningService(MiningEngine):
    """Serve batched mining requests from a persistent index.

    A thin, backwards-compatible layer over :class:`repro.api.MiningEngine`:
    everything the engine serves (any registered constraint via
    :meth:`run`/:meth:`run_batch`) is available here, plus the historical
    skinny-specific conveniences (:class:`MineRequest` handling and the
    parallel length-batched :meth:`precompute`).

    Parameters
    ----------
    graphs:
        The data graph (single-graph setting) or graph database.  The service
        owns these objects: data edits must go through :meth:`apply_delta`.
    store:
        Stage-1 index backend; defaults to a process-local
        :class:`repro.index.store.MemoryPatternStore`.  Pass a
        :class:`repro.index.store.DiskPatternStore` to share the offline
        stage across processes and runs.
    result_cache_size:
        Number of complete responses kept in the LRU result cache.
    """

    # ------------------------------------------------------------------ #
    # Stage 1: the persistent index (legacy length-keyed helpers)
    # ------------------------------------------------------------------ #
    def minimal_patterns_for(
        self,
        length: int,
        min_support: int,
        support_measure: str = SupportMeasure.EMBEDDINGS.value,
    ) -> tuple:
        """Fetch (or build and persist) one skinny Stage-1 entry.

        Returns ``(patterns, served_from_store, seconds)`` where ``seconds``
        is the wall-clock cost paid by *this* call (store lookups included,
        mining included only on a miss).
        """
        query = Query(
            constraint_id=SKINNY_CONSTRAINT_ID,
            params={"length": length, "delta": 0},
            min_support=min_support,
            support_measure=support_measure,
        )
        return self._stage_one(get_constraint(SKINNY_CONSTRAINT_ID), query)

    def precompute(
        self,
        lengths: Iterable[int],
        min_support: int,
        support_measure: str = SupportMeasure.EMBEDDINGS.value,
        processes: Optional[int] = None,
    ) -> Dict[int, int]:
        """Build skinny Stage-1 entries for a batch of lengths; return length → #patterns.

        A thin wrapper over the engine's constraint-generic
        :meth:`precompute_queries`: ``processes > 1`` distributes cold
        lengths over a ``multiprocessing`` pool (the graphs are shipped to
        each worker once); entries already in the store are never recomputed.
        """
        measure = SupportMeasure(support_measure)
        wanted = sorted(set(lengths))
        queries = [
            Query(
                constraint_id=SKINNY_CONSTRAINT_ID,
                params={"length": length, "delta": 0},
                min_support=min_support,
                support_measure=measure.value,
            )
            for length in wanted
        ]
        summaries = self.precompute_queries(queries, processes=processes)
        return {
            length: summary["num_patterns"]
            for length, summary in zip(wanted, summaries)
        }

    # ------------------------------------------------------------------ #
    # request serving
    # ------------------------------------------------------------------ #
    def mine(self, request: Union[MineRequest, Query]) -> MineResponse:
        """Serve one request (result cache → warm index → cold compute)."""
        query = request if isinstance(request, Query) else request.to_query()
        result = self.run(query)
        return MineResponse(
            query=result.query,
            patterns=result.patterns,
            stats=result.stats,
            request=request,
        )

    def serve_batch(
        self, requests: Sequence[Union[MineRequest, Query]]
    ) -> List[MineResponse]:
        """Serve a batch in order; duplicate requests hit the result cache.

        Deprecated: this is the pre-serving-tier batch entry point.  Use
        :meth:`repro.api.MiningEngine.run_batch` for in-process batches and
        :mod:`repro.server` (``repro serve``) for concurrent clients.

        With an enabled tracer the whole batch becomes one ``service.batch``
        span with each query's span tree nested under it; the batch count
        and latency are published to the service's metrics registry.
        """
        _warn_legacy_surface()
        started = time.perf_counter()
        with self.tracer.span("service.batch", size=len(requests)):
            responses = [self.mine(request) for request in requests]
        self.metrics.counter(
            "repro_batches_total", "Request batches served by the mining service"
        ).inc()
        self.metrics.histogram(
            "repro_batch_seconds", "End-to-end batch latency (mining service)"
        ).observe(time.perf_counter() - started)
        return responses


# Re-exported for callers that imported these from repro.service.mining.
__all__ = [
    "MineRequest",
    "MineResponse",
    "MiningService",
    "Query",
    "QueryStats",
    "RequestStats",
    "Result",
]
