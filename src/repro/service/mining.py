"""The mining service: a stable request/response front end over the index.

Instead of ad-hoc calls into :class:`repro.core.skinnymine.SkinnyMine`, the
service accepts batched :class:`MineRequest` objects — the query-language
framing that SIGNAL-style industrial process-query systems argue for — and
answers them from the persistent Stage-1 index:

* **Stage 1** (minimal patterns) is looked up in a
  :class:`repro.index.store.PatternStore` keyed by the dataset fingerprint;
  a miss triggers DiamMine and persists the result, so a warm store answers
  every later request with *zero* Stage-1 recomputation, across processes.
* **Stage 2** (constraint-preserving growth) runs per request; complete
  responses are kept in a canonical-key LRU result cache, so repeating a
  request is O(1).
* ``precompute`` parallelises cold Stage-1 builds across parameters with
  ``multiprocessing``.
* ``apply_delta`` routes data edits through
  :class:`repro.index.incremental.IndexMaintainer`, repairing the store
  instead of rebuilding it.

Every request is timed; ``stats_log`` keeps per-request accounting in the
shape the paper's scalability figures report (Stage-1 / Stage-2 split).
"""

from __future__ import annotations

import json
import multiprocessing
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.database import EdgeDelta, GraphDelta, MiningContext, SupportMeasure
from repro.core.diammine import DiamMine
from repro.core.framework import SkinnyConstraintDriver
from repro.core.patterns import PathPattern, SkinnyPattern
from repro.graph.io import dataset_fingerprint
from repro.graph.labeled_graph import LabeledGraph
from repro.index.incremental import SKINNY_CONSTRAINT_ID, IndexMaintainer, RepairReport
from repro.index.store import IndexEntry, MemoryPatternStore, PatternStore, StoreKey


# --------------------------------------------------------------------- #
# requests and responses
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MineRequest:
    """One mining request: all ``l``-long ``δ``-skinny patterns with support ≥ σ.

    ``top_k`` truncates the response to the K highest-support patterns;
    ``include_minimal`` keeps the bare canonical diameters in the result
    (mirroring :meth:`repro.core.skinnymine.SkinnyMine.mine`).
    """

    length: int
    delta: int
    min_support: int
    top_k: Optional[int] = None
    support_measure: str = SupportMeasure.EMBEDDINGS.value
    include_minimal: bool = True

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be at least 1")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")
        if self.top_k is not None:
            try:
                coerced = int(self.top_k)
            except (TypeError, ValueError) as error:
                raise ValueError(f"top_k must be an integer, got {self.top_k!r}") from error
            if coerced < 1:
                raise ValueError("top_k must be positive when given")
            object.__setattr__(self, "top_k", coerced)
        object.__setattr__(
            self, "support_measure", SupportMeasure(self.support_measure).value
        )

    @property
    def measure(self) -> SupportMeasure:
        return SupportMeasure(self.support_measure)

    def cache_key(self) -> str:
        """Canonical identity of the request (the result-cache key)."""
        return json.dumps(
            {
                "length": self.length,
                "delta": self.delta,
                "min_support": self.min_support,
                "top_k": self.top_k,
                "support_measure": self.support_measure,
                "include_minimal": self.include_minimal,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def stage_one_parameter(self) -> Dict[str, object]:
        """The Stage-1 index parameter (δ and top_k do not affect Stage 1)."""
        return {
            "length": self.length,
            "min_support": self.min_support,
            "support_measure": self.support_measure,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MineRequest":
        if not isinstance(payload, dict):
            raise ValueError(f"mine request must be an object, got {payload!r}")
        missing = [field_name for field_name in ("length", "delta") if field_name not in payload]
        if missing:
            raise ValueError(
                f"mine request {payload!r} is missing required field(s): {', '.join(missing)}"
            )
        return cls(
            length=int(payload["length"]),
            delta=int(payload["delta"]),
            min_support=int(payload.get("min_support", payload.get("sigma", 1))),
            top_k=payload.get("top_k"),
            support_measure=payload.get(
                "support_measure", SupportMeasure.EMBEDDINGS.value
            ),
            include_minimal=bool(payload.get("include_minimal", True)),
        )


@dataclass
class RequestStats:
    """Per-request timing and provenance accounting."""

    request_key: str
    stage_one_seconds: float = 0.0
    stage_two_seconds: float = 0.0
    total_seconds: float = 0.0
    served_from_store: bool = False
    result_cache_hit: bool = False
    num_minimal_patterns: int = 0
    num_patterns: int = 0

    def to_dict(self) -> Dict:
        return {
            "request": json.loads(self.request_key),
            "stage_one_seconds": self.stage_one_seconds,
            "stage_two_seconds": self.stage_two_seconds,
            "total_seconds": self.total_seconds,
            "served_from_store": self.served_from_store,
            "result_cache_hit": self.result_cache_hit,
            "num_minimal_patterns": self.num_minimal_patterns,
            "num_patterns": self.num_patterns,
        }


@dataclass
class MineResponse:
    """Patterns plus the stats of the call that produced them."""

    request: MineRequest
    patterns: List[SkinnyPattern]
    stats: RequestStats


# --------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------- #
class MiningService:
    """Serve batched skinny-pattern mining requests from a persistent index.

    Parameters
    ----------
    graphs:
        The data graph (single-graph setting) or graph database.  The service
        owns these objects: data edits must go through :meth:`apply_delta`.
    store:
        Stage-1 index backend; defaults to a process-local
        :class:`MemoryPatternStore`.  Pass a
        :class:`repro.index.store.DiskPatternStore` to share the offline
        stage across processes and runs.
    result_cache_size:
        Number of complete responses kept in the LRU result cache.
    """

    def __init__(
        self,
        graphs: Union[LabeledGraph, Sequence[LabeledGraph]],
        store: Optional[PatternStore] = None,
        result_cache_size: int = 128,
        max_paths_per_length: Optional[int] = None,
        max_patterns_per_diameter: Optional[int] = None,
    ) -> None:
        self._graphs: List[LabeledGraph] = (
            [graphs] if isinstance(graphs, LabeledGraph) else list(graphs)
        )
        if not self._graphs:
            raise ValueError("MiningService requires at least one data graph")
        self._store = store if store is not None else MemoryPatternStore()
        self._fingerprint = dataset_fingerprint(self._graphs)
        self._result_cache: "OrderedDict[str, List[SkinnyPattern]]" = OrderedDict()
        self._result_cache_size = result_cache_size
        self._contexts: Dict[tuple, MiningContext] = {}
        self._max_paths_per_length = max_paths_per_length
        self._max_patterns_per_diameter = max_patterns_per_diameter
        self.stats_log: List[RequestStats] = []

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> PatternStore:
        return self._store

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def graphs(self) -> List[LabeledGraph]:
        return self._graphs

    def _context(self, min_support: int, measure: SupportMeasure) -> MiningContext:
        key = (min_support, measure.value)
        context = self._contexts.get(key)
        if context is None:
            context = MiningContext(self._graphs, min_support, measure)
            self._contexts[key] = context
        return context

    def _store_key(self, request_parameter: Dict[str, object]) -> StoreKey:
        return StoreKey.make(self._fingerprint, SKINNY_CONSTRAINT_ID, request_parameter)

    def _stage_one_parameter(
        self, length: int, min_support: int, measure: SupportMeasure
    ) -> Dict[str, object]:
        parameter: Dict[str, object] = {
            "length": length,
            "min_support": min_support,
            "support_measure": measure.value,
        }
        # A capped Stage 1 is (deliberately) incomplete; keying the cap keeps
        # truncated entries from ever being served to an uncapped service.
        if self._max_paths_per_length is not None:
            parameter["max_paths_per_length"] = self._max_paths_per_length
        return parameter

    # ------------------------------------------------------------------ #
    # Stage 1: the persistent index
    # ------------------------------------------------------------------ #
    def minimal_patterns_for(
        self,
        length: int,
        min_support: int,
        support_measure: str = SupportMeasure.EMBEDDINGS.value,
    ) -> tuple:
        """Fetch (or build and persist) one Stage-1 entry.

        Returns ``(patterns, served_from_store, seconds)`` where ``seconds``
        is the wall-clock cost paid by *this* call (store lookups included,
        mining included only on a miss).
        """
        measure = SupportMeasure(support_measure)
        parameter = self._stage_one_parameter(length, min_support, measure)
        key = self._store_key(parameter)
        started = time.perf_counter()
        entry = self._store.get(key)
        if entry is not None:
            return entry.patterns, True, time.perf_counter() - started
        context = self._context(min_support, measure)
        miner = DiamMine(context, max_paths_per_length=self._max_paths_per_length)
        patterns = miner.mine(length)
        seconds = time.perf_counter() - started
        self._store.put(IndexEntry(key=key, patterns=patterns, build_seconds=seconds))
        return patterns, False, seconds

    def precompute(
        self,
        lengths: Iterable[int],
        min_support: int,
        support_measure: str = SupportMeasure.EMBEDDINGS.value,
        processes: Optional[int] = None,
    ) -> Dict[int, int]:
        """Build Stage-1 entries for a batch of lengths; return length → #patterns.

        ``processes > 1`` distributes cold lengths over a ``multiprocessing``
        pool (the graphs are shipped to each worker once); entries already in
        the store are never recomputed.
        """
        measure = SupportMeasure(support_measure)
        wanted = sorted(set(lengths))
        counts: Dict[int, int] = {}
        cold: List[int] = []
        for length in wanted:
            parameter = self._stage_one_parameter(length, min_support, measure)
            entry = self._store.get(self._store_key(parameter))
            if entry is not None:
                counts[length] = len(entry.patterns)
            else:
                cold.append(length)

        if not cold:
            return counts

        if processes is not None and processes > 1 and len(cold) > 1:
            from repro.service.workers import init_worker, mine_length

            with multiprocessing.Pool(
                processes=min(processes, len(cold)),
                initializer=init_worker,
                initargs=(
                    self._graphs,
                    min_support,
                    measure.value,
                    self._max_paths_per_length,
                ),
            ) as pool:
                for length, patterns, seconds in pool.imap_unordered(mine_length, cold):
                    parameter = self._stage_one_parameter(length, min_support, measure)
                    self._store.put(
                        IndexEntry(
                            key=self._store_key(parameter),
                            patterns=patterns,
                            build_seconds=seconds,
                        )
                    )
                    counts[length] = len(patterns)
        else:
            for length in cold:
                patterns, _, _ = self.minimal_patterns_for(
                    length, min_support, measure.value
                )
                counts[length] = len(patterns)
        return counts

    # ------------------------------------------------------------------ #
    # Stage 2 + request serving
    # ------------------------------------------------------------------ #
    def _grow(
        self, path: PathPattern, request: MineRequest, context: MiningContext
    ) -> List[SkinnyPattern]:
        driver = SkinnyConstraintDriver(
            max_patterns_per_diameter=self._max_patterns_per_diameter,
            include_minimal=request.include_minimal,
        )
        return driver.grow(context, path, (request.length, request.delta))

    @staticmethod
    def _ranked(patterns: List[SkinnyPattern], top_k: Optional[int]) -> List[SkinnyPattern]:
        ranked = sorted(
            patterns,
            key=lambda pattern: (
                -pattern.support,
                pattern.num_edges,
                pattern.diameter_labels(),
            ),
        )
        return ranked if top_k is None else ranked[:top_k]

    def mine(self, request: MineRequest) -> MineResponse:
        """Serve one request (result cache → warm index → cold compute)."""
        key = request.cache_key()
        started = time.perf_counter()
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            stats = RequestStats(
                request_key=key,
                total_seconds=time.perf_counter() - started,
                served_from_store=False,  # the store was never consulted
                result_cache_hit=True,
                num_patterns=len(cached),
            )
            self.stats_log.append(stats)
            return MineResponse(request=request, patterns=list(cached), stats=stats)

        minimal, from_store, stage_one = self.minimal_patterns_for(
            request.length, request.min_support, request.support_measure
        )
        context = self._context(request.min_support, request.measure)
        stage_two_start = time.perf_counter()
        patterns: List[SkinnyPattern] = []
        for path in minimal:
            patterns.extend(self._grow(path, request, context))
        patterns = self._ranked(patterns, request.top_k)
        stage_two = time.perf_counter() - stage_two_start

        stats = RequestStats(
            request_key=key,
            stage_one_seconds=stage_one,
            stage_two_seconds=stage_two,
            total_seconds=time.perf_counter() - started,
            served_from_store=from_store,
            result_cache_hit=False,
            num_minimal_patterns=len(minimal),
            num_patterns=len(patterns),
        )
        self.stats_log.append(stats)
        self._result_cache[key] = list(patterns)
        while len(self._result_cache) > self._result_cache_size:
            self._result_cache.popitem(last=False)
        return MineResponse(request=request, patterns=patterns, stats=stats)

    def serve_batch(self, requests: Sequence[MineRequest]) -> List[MineResponse]:
        """Serve a batch in order; duplicate requests hit the result cache."""
        return [self.mine(request) for request in requests]

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, delta: Union[GraphDelta, Sequence[EdgeDelta]]
    ) -> RepairReport:
        """Edit the data and repair (not rebuild) the Stage-1 index.

        The batch is validated before any mutation; even if the repair fails
        part-way, the ``finally`` block re-keys the service to whatever the
        graphs now contain and drops the result/context caches, so stale
        answers are never served.
        """
        maintainer = IndexMaintainer(self._store, SKINNY_CONSTRAINT_ID)
        try:
            return maintainer.apply_delta(self._graphs, delta)
        finally:
            self._fingerprint = dataset_fingerprint(self._graphs)
            self._result_cache.clear()
            self._contexts.clear()
