"""Request-serving front end over the persistent pattern index.

:class:`MiningService` answers batched :class:`MineRequest` objects from the
Stage-1 store (see :mod:`repro.index`), with a result cache, per-request
timing stats, parallel precompute and incremental index maintenance.
"""

from repro.service.mining import (
    MineRequest,
    MineResponse,
    MiningService,
    RequestStats,
)

__all__ = ["MineRequest", "MineResponse", "MiningService", "RequestStats"]
