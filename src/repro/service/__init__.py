"""Request-serving front end over the persistent pattern index.

:class:`MiningService` answers batched requests — generic
:class:`repro.api.Query` objects or legacy :class:`MineRequest` shims — from
the Stage-1 store (see :mod:`repro.index`), with a result cache, per-request
timing stats, parallel precompute and incremental index maintenance.  The
constraint-generic machinery lives in :class:`repro.api.MiningEngine`, which
the service subclasses.
"""

from repro.service.mining import (
    MineRequest,
    MineResponse,
    MiningService,
    RequestStats,
)

__all__ = ["MineRequest", "MineResponse", "MiningService", "RequestStats"]
