"""Labeled-graph substrate used by SkinnyMine, the baselines and the datasets.

This subpackage is self-contained: it provides the graph data structure,
subgraph isomorphism, canonical codes, path/distance utilities, embedding
bookkeeping, random generators and a small text I/O format.  Nothing in here
knows about skinny patterns; it is the layer the paper's algorithms (and the
competing miners) are built on.
"""

from repro.graph.labeled_graph import Edge, LabeledGraph
from repro.graph.csr import CSRGraph, FrozenGraphError, LabelPalette
from repro.graph.isomorphism import (
    are_isomorphic,
    find_automorphisms,
    find_subgraph_embeddings,
    is_subgraph_isomorphic,
)
from repro.graph.canonical import CanonicalCode, DFSCode, minimum_dfs_code
from repro.graph.paths import (
    all_diameter_paths,
    bfs_distances,
    diameter,
    diameter_at_most,
    eccentricity,
    enumerate_simple_paths,
    shortest_path_length,
    sum_sweep_diameter,
)
from repro.graph.embeddings import (
    Embedding,
    EmbeddingList,
    EmbeddingTable,
    LazyEmbeddings,
    mni_support,
    transaction_support,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    random_labeled_path,
    random_skinny_pattern,
    random_tree_pattern,
)
from repro.graph.io import graph_from_edge_list, read_lg, write_lg

__all__ = [
    "Edge",
    "LabeledGraph",
    "CSRGraph",
    "FrozenGraphError",
    "LabelPalette",
    "are_isomorphic",
    "find_automorphisms",
    "find_subgraph_embeddings",
    "is_subgraph_isomorphic",
    "CanonicalCode",
    "DFSCode",
    "minimum_dfs_code",
    "all_diameter_paths",
    "bfs_distances",
    "diameter",
    "diameter_at_most",
    "sum_sweep_diameter",
    "eccentricity",
    "enumerate_simple_paths",
    "shortest_path_length",
    "Embedding",
    "EmbeddingList",
    "EmbeddingTable",
    "LazyEmbeddings",
    "mni_support",
    "transaction_support",
    "erdos_renyi_graph",
    "inject_pattern",
    "random_labeled_path",
    "random_skinny_pattern",
    "random_tree_pattern",
    "graph_from_edge_list",
    "read_lg",
    "write_lg",
]
