"""Canonical codes for labeled graphs (gSpan-style minimum DFS codes).

SkinnyMine partitions its search space by canonical diameter, but it (and the
gSpan/MoSS baselines, and the test-suite) still need a *graph-level* canonical
form to answer "have I generated this pattern before?".  We use the classic
gSpan minimum DFS code [Yan & Han, ICDM 2002]: the lexicographically smallest
DFS code over all rooted DFS traversals of the graph.  Two labeled graphs are
isomorphic iff their minimum DFS codes are equal.

A DFS code is a sequence of 5-tuples ``(i, j, l_i, l_e, l_j)`` where ``i`` and
``j`` are DFS discovery indices, ``l_i``/``l_j`` are vertex labels and ``l_e``
is the edge label (``None`` allowed, compared as the empty string).  Forward
edges have ``i < j``, backward edges ``i > j``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import Label, LabeledGraph, VertexId

DFSEdge = Tuple[int, int, str, str, str]


def _label_key(label: Optional[Label]) -> str:
    """Normalise a label to a string for lexicographic comparison."""
    return "" if label is None else str(label)


@dataclass(frozen=True)
class DFSCode:
    """An (ordered) DFS code: a tuple of DFS edges.

    Instances compare lexicographically edge by edge using the gSpan edge
    order, which here reduces to tuple comparison because forward/backward
    status is encoded by the (i, j) index pair ordering rule implemented in
    ``_edge_sort_key``.
    """

    edges: Tuple[DFSEdge, ...]

    def __len__(self) -> int:
        return len(self.edges)

    def __lt__(self, other: "DFSCode") -> bool:
        return _code_key(self.edges) < _code_key(other.edges)

    def __le__(self, other: "DFSCode") -> bool:
        return _code_key(self.edges) <= _code_key(other.edges)

    def as_tuple(self) -> Tuple[DFSEdge, ...]:
        return self.edges


@dataclass(frozen=True)
class CanonicalCode:
    """The canonical (minimum) DFS code of a graph, usable as a dict key."""

    code: Tuple[DFSEdge, ...]
    num_vertices: int
    isolated_labels: Tuple[str, ...]

    def __lt__(self, other: "CanonicalCode") -> bool:
        return (
            _code_key(self.code),
            self.isolated_labels,
        ) < (_code_key(other.code), other.isolated_labels)


def _edge_sort_key(edge: DFSEdge) -> Tuple:
    """gSpan edge order key for a single DFS-code edge.

    Backward edges (j < i) sort before forward edges from the same vertex;
    among forward edges smaller source index (deeper rightmost-path vertex is
    *larger* i, so smaller i means earlier) — the standard gSpan total order
    is realised by comparing these keys tuple-wise.
    """
    i, j, li, le, lj = edge
    forward = 1 if i < j else 0
    if forward:
        return (forward, j, i, li, le, lj)
    return (forward, i, j, li, le, lj)


def _code_key(code: Sequence[DFSEdge]) -> Tuple:
    return tuple(_edge_sort_key(edge) for edge in code)


def _candidate_roots(graph: LabeledGraph) -> List[VertexId]:
    """Vertices whose label is lexicographically minimal (valid DFS roots)."""
    best_label = min(_label_key(graph.label_of(v)) for v in graph.vertices())
    return [v for v in graph.vertices() if _label_key(graph.label_of(v)) == best_label]


def _min_code_from_root(graph: LabeledGraph, root: VertexId) -> Tuple[DFSEdge, ...]:
    """Smallest DFS code over traversals rooted at ``root`` (branch and bound).

    The search enumerates every DFS traversal rooted at ``root`` (extensions
    are restricted to the rightmost path as usual for DFS codes) and keeps the
    lexicographically smallest complete code.  Branches whose prefix already
    compares greater than the best code's prefix of equal length are pruned —
    a sound cut because code comparison is lexicographic edge by edge and all
    complete codes have exactly ``|E|`` edges.  Some partial traversals are
    dead ends (an unused edge hangs off a vertex that has left the rightmost
    path); those branches simply do not produce a candidate.
    """
    best: List[Optional[Tuple[DFSEdge, ...]]] = [None]
    best_key: List[Optional[Tuple]] = [None]
    total_edges = graph.num_edges()

    def recurse(
        code: List[DFSEdge],
        discovery: Dict[VertexId, int],
        rightmost_path: List[VertexId],
        used_edges: set,
    ) -> None:
        if best_key[0] is not None and code:
            current_key = _code_key(code)
            prefix_key = best_key[0][: len(code)]
            if current_key > prefix_key:
                return
        if len(used_edges) == total_edges:
            candidate = tuple(code)
            candidate_key = _code_key(candidate)
            if best_key[0] is None or candidate_key < best_key[0]:
                best[0] = candidate
                best_key[0] = candidate_key
            return

        extensions: List[Tuple[Tuple, DFSEdge, VertexId, VertexId]] = []
        # Backward edges may only leave the rightmost vertex and land on the
        # rightmost path.
        rightmost = rightmost_path[-1]
        rightmost_set = set(rightmost_path)
        for neighbor in graph.neighbors(rightmost):
            key = frozenset((rightmost, neighbor))
            if key in used_edges:
                continue
            if neighbor in rightmost_set:
                edge = (
                    discovery[rightmost],
                    discovery[neighbor],
                    _label_key(graph.label_of(rightmost)),
                    _label_key(graph.edge_label(rightmost, neighbor)),
                    _label_key(graph.label_of(neighbor)),
                )
                extensions.append((_edge_sort_key(edge), edge, rightmost, neighbor))
        # Forward edges may leave any vertex on the rightmost path.
        for path_vertex in rightmost_path:
            for neighbor in graph.neighbors(path_vertex):
                key = frozenset((path_vertex, neighbor))
                if key in used_edges or neighbor in discovery:
                    continue
                edge = (
                    discovery[path_vertex],
                    len(discovery),
                    _label_key(graph.label_of(path_vertex)),
                    _label_key(graph.edge_label(path_vertex, neighbor)),
                    _label_key(graph.label_of(neighbor)),
                )
                extensions.append((_edge_sort_key(edge), edge, path_vertex, neighbor))

        extensions.sort(key=lambda item: item[0])
        for _, edge, source, target in extensions:
            i, j = edge[0], edge[1]
            is_forward = i < j
            used_edges.add(frozenset((source, target)))
            code.append(edge)
            if is_forward:
                discovery[target] = j
                # Rightmost path becomes root -> ... -> source -> target.
                source_index = rightmost_path.index(source)
                new_rightmost = rightmost_path[: source_index + 1] + [target]
                recurse(code, discovery, new_rightmost, used_edges)
                del discovery[target]
            else:
                recurse(code, discovery, rightmost_path, used_edges)
            code.pop()
            used_edges.discard(frozenset((source, target)))

    recurse([], {root: 0}, [root], set())
    if best[0] is None:
        return tuple()
    return best[0]


def minimum_dfs_code(graph: LabeledGraph) -> CanonicalCode:
    """Return the canonical (minimum) DFS code of ``graph``.

    Isolated vertices carry no edges, so they are recorded separately as a
    sorted label tuple; the code itself covers every edge of the graph.
    Isomorphic graphs produce equal ``CanonicalCode`` values, non-isomorphic
    graphs produce different ones (for connected labeled graphs, this is the
    gSpan canonical form; components are encoded independently and sorted).
    """
    isolated = tuple(
        sorted(
            _label_key(graph.label_of(v))
            for v in graph.vertices()
            if graph.degree(v) == 0
        )
    )
    if graph.num_edges() == 0:
        return CanonicalCode(code=(), num_vertices=graph.num_vertices(), isolated_labels=isolated)

    component_codes: List[Tuple[DFSEdge, ...]] = []
    for component in graph.connected_components():
        if len(component) == 1:
            continue
        subgraph = graph.subgraph(component)
        best: Optional[Tuple[DFSEdge, ...]] = None
        for root in _candidate_roots(subgraph):
            candidate = _min_code_from_root(subgraph, root)
            if best is None or _code_key(candidate) < _code_key(best):
                best = candidate
        component_codes.append(best if best is not None else tuple())

    component_codes.sort(key=_code_key)
    flat: List[DFSEdge] = []
    for offset, code in enumerate(component_codes):
        # Offset vertex indices per component so concatenation stays unambiguous.
        shift = sum(
            max((max(e[0], e[1]) for e in earlier), default=-1) + 1
            for earlier in component_codes[:offset]
        )
        for i, j, li, le, lj in code:
            flat.append((i + shift, j + shift, li, le, lj))
    return CanonicalCode(
        code=tuple(flat),
        num_vertices=graph.num_vertices(),
        isolated_labels=isolated,
    )


def canonical_key(graph: LabeledGraph) -> Tuple:
    """A hashable key equal for isomorphic graphs — convenience wrapper."""
    canonical = minimum_dfs_code(graph)
    return (canonical.code, canonical.num_vertices, canonical.isolated_labels)


def wl_signature(graph: LabeledGraph, rounds: int = 2) -> Tuple:
    """A cheap isomorphism-*invariant* signature (Weisfeiler–Lehman colouring).

    Isomorphic graphs always produce equal signatures; non-isomorphic graphs
    usually (but not provably) produce different ones, so the signature is a
    hash-bucket key, not a canonical form.  Callers that need exactness
    confirm collisions with :func:`repro.graph.isomorphism.are_isomorphic`
    (see ``PatternRegistry`` in the LevelGrow module), use
    :func:`tree_canonical_key` for trees, or fall back to
    :func:`minimum_dfs_code`.

    The colour of a vertex starts as its (label, degree) pair and is refined
    ``rounds`` times from the multiset of neighbour colours; the signature
    records, for *every* round, the sorted colour histogram **and** the
    sorted histogram of per-edge colour pairs (the whole refinement
    trajectory discriminates far better than the final round alone).  The
    edge-pair histograms matter in practice: the growth engine's cyclic
    patterns — a diameter path with twigs and one cycle-closing edge — often
    share every vertex-colour histogram while wiring the colour classes
    differently, and the vertex-only signature once produced collision
    buckets over a hundred deep, each member paying an exact isomorphism
    test.  Recording which colour pairs the edges connect collapses those
    buckets to near-singletons.  Colours are compressed to canonical small
    integers each round — the palette is assigned in sorted key order, so
    the numbering, and therefore the signature, is independent of vertex
    iteration order — which keeps refinement allocation-light: the growth
    engine computes one signature per candidate pattern.  Two refinement
    rounds are the default: with the edge-pair histograms in place the third
    round no longer separated any bucket in practice, and the signature is
    on the per-candidate hot path.
    """
    vertices = list(graph.vertices())
    degree = graph.degree
    initial = {
        vertex: (_label_key(graph.label_of(vertex)), degree(vertex))
        for vertex in vertices
    }
    palette: Dict[object, int] = {
        key: index for index, key in enumerate(sorted(set(initial.values())))
    }
    colors: Dict[VertexId, int] = {
        vertex: palette[initial[vertex]] for vertex in vertices
    }
    neighbors = graph.neighbors
    edges = [edge.endpoints() for edge in graph.edges()]

    def edge_pair_histogram(coloring: Dict[VertexId, int]) -> Tuple:
        histogram: Dict[Tuple[int, int], int] = {}
        for u, v in edges:
            cu, cv = coloring[u], coloring[v]
            pair = (cu, cv) if cu <= cv else (cv, cu)
            histogram[pair] = histogram.get(pair, 0) + 1
        return tuple(sorted(histogram.items()))

    histograms: List[Tuple] = [
        (_color_histogram(colors), edge_pair_histogram(colors))
    ]
    for _ in range(rounds):
        keys = {
            vertex: (
                colors[vertex],
                tuple(sorted(colors[neighbor] for neighbor in neighbors(vertex))),
            )
            for vertex in vertices
        }
        palette = {key: index for index, key in enumerate(sorted(set(keys.values())))}
        colors = {vertex: palette[keys[vertex]] for vertex in vertices}
        histograms.append((_color_histogram(colors), edge_pair_histogram(colors)))
    return (
        graph.num_vertices(),
        graph.num_edges(),
        tuple(histograms),
    )


def _color_histogram(colors: Dict[VertexId, int]) -> Tuple:
    histogram: Dict[int, int] = {}
    for color in colors.values():
        histogram[color] = histogram.get(color, 0) + 1
    return tuple(sorted(histogram.items()))


def _tree_centers(
    degrees: Dict[VertexId, int],
    neighbors_of,
    order: int,
) -> List[VertexId]:
    """The 1 or 2 centres of a tree by iterative leaf stripping.

    ``degrees`` is consumed; ``neighbors_of(v)`` yields the tree adjacency.
    """
    remaining = order
    layer = [vertex for vertex, deg in degrees.items() if deg <= 1]
    while remaining > 2:
        next_layer: List[VertexId] = []
        for leaf in layer:
            degrees[leaf] = 0
            for neighbor in neighbors_of(leaf):
                if degrees[neighbor] > 0:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_layer.append(neighbor)
        remaining -= len(layer)
        layer = next_layer
    return sorted(layer)


def tree_canonical_key(tree: LabeledGraph) -> Tuple:
    """AHU canonical form of a free labeled tree — exact and near-linear.

    Two *trees* (connected, ``|E| = |V| - 1``) get equal keys iff they are
    isomorphic as labeled graphs (vertex and edge labels both participate).
    The classic centre construction makes the rooted AHU encoding canonical
    for free trees: strip leaves until one or two centre vertices remain,
    encode the tree rooted at each centre bottom-up with sorted child
    encodings, and keep the smaller encoding.  Callers must ensure the input
    is a tree; the cheap shape check raises ``ValueError`` otherwise.

    The growth engine's duplicate registry relies on this as its fast exact
    path: grown skinny patterns are overwhelmingly trees (a diameter plus
    twigs), and the minimum-DFS-code fallback is exponential in the worst
    case while the AHU key never is.
    """
    order = tree.num_vertices()
    if order == 0:
        raise ValueError("cannot canonise the empty tree")
    if tree.num_edges() != order - 1 or not tree.is_connected():
        raise ValueError("tree_canonical_key requires a connected tree")
    if order == 1:
        vertex = next(iter(tree.vertices()))
        return ("t", _label_key(tree.label_of(vertex)))

    # Find the 1 or 2 centres by iterative leaf stripping.
    degrees = {vertex: tree.degree(vertex) for vertex in tree.vertices()}
    centers = _tree_centers(degrees, tree.neighbors, order)

    return ("t", min(_rooted_tree_encoding(tree, center) for center in centers))


def _strip_to_core(graph: LabeledGraph) -> Dict[VertexId, int]:
    """Residual degrees after iteratively deleting degree-1 vertices.

    A vertex survives (residual degree >= 2) iff it lies on the graph's
    2-core: the union of its cycles plus any paths connecting them.  The
    hanging trees removed here are re-attached by the canonical forms below
    through their rooted AHU encodings.
    """
    degrees = {vertex: graph.degree(vertex) for vertex in graph.vertices()}
    layer = [vertex for vertex, deg in degrees.items() if deg == 1]
    while layer:
        next_layer: List[VertexId] = []
        for leaf in layer:
            degrees[leaf] = 0
            for neighbor in graph.neighbors(leaf):
                if degrees[neighbor] > 1:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_layer.append(neighbor)
        layer = next_layer
    return degrees


def _make_edge_key(graph: LabeledGraph):
    """Per-edge label accessor normalised for lexicographic comparison."""
    edge_labels = graph._edge_labels

    def edge_key(u: VertexId, v: VertexId) -> str:
        raw = edge_labels.get((u, v) if u < v else (v, u))
        return "" if raw is None else _label_key(raw)

    return edge_key


def _hanging_encoding(
    graph: LabeledGraph, core_set, root: VertexId, edge_key
) -> Tuple:
    """Rooted AHU encoding of the tree hanging off core vertex ``root``.

    The traversal never crosses into ``core_set``, so each core vertex's
    hanging tree is encoded independently; the root's own label heads the
    encoding, making it a complete invariant of (core vertex, its tree).
    """
    parent: Dict[VertexId, Optional[VertexId]] = {root: None}
    ordering = [root]
    for vertex in ordering:
        for neighbor in graph.neighbors(vertex):
            if neighbor not in parent and neighbor not in core_set:
                parent[neighbor] = vertex
                ordering.append(neighbor)
    encoding: Dict[VertexId, Tuple] = {}
    for vertex in reversed(ordering):
        up = parent[vertex]
        encoding[vertex] = (
            _label_key(graph.label_of(vertex)),
            "" if up is None else edge_key(vertex, up),
            tuple(
                sorted(
                    encoding[child]
                    for child in graph.neighbors(vertex)
                    if parent.get(child) == vertex
                )
            ),
        )
    return encoding[root]


def unicyclic_canonical_key(graph: LabeledGraph) -> Tuple:
    """Exact canonical key for a *connected* graph with exactly one cycle.

    Connected graphs with ``|E| = |V|`` carry a unique cycle with a (possibly
    trivial) rooted tree hanging off each cycle vertex.  Any isomorphism must
    map the cycle onto the cycle — as a rotation or reflection — and hanging
    trees onto isomorphic hanging trees, so the canonical form is the
    lexicographically smallest rotation/reflection of the cyclic sequence
    ``(hanging-tree AHU encoding, next-cycle-edge label)``.  Exactly the
    duplicate-registry trick :func:`tree_canonical_key` plays for trees, one
    cycle up: the growth engine's cycle-closing candidates are almost always
    unicyclic, and this key spares them the WL-bucket + VF2 confirmation.

    Only rotations/reflections whose *starting* ``(tree, edge)`` pair is the
    minimal one can realise the lexicographic minimum, so the candidate set
    is filtered to those starts before any full sequence is materialised —
    on the growth engine's cycles that is one or two candidates instead of
    ``2·length``.

    Raises ``ValueError`` when the edge count is wrong or the graph is
    disconnected (an ``|E| = |V|`` graph may also be a cycle plus separate
    trees, whose hanging forests this construction would silently ignore).
    """
    order = graph.num_vertices()
    if graph.num_edges() != order or not graph.is_connected():
        raise ValueError("unicyclic_canonical_key requires one connected cycle")

    # Strip degree-1 vertices; what survives is exactly the cycle.
    degrees = _strip_to_core(graph)
    cycle_set = {vertex for vertex, deg in degrees.items() if deg >= 2}

    # Walk the cycle once to fix a traversal order.
    start = min(cycle_set)
    cycle: List[VertexId] = [start]
    previous: Optional[VertexId] = None
    current = start
    while True:
        step = next(
            neighbor
            for neighbor in graph.neighbors(current)
            if neighbor in cycle_set and neighbor != previous
        )
        if step == start:
            break
        cycle.append(step)
        previous, current = current, step
    length = len(cycle)

    edge_key = _make_edge_key(graph)
    trees = [_hanging_encoding(graph, cycle_set, vertex, edge_key) for vertex in cycle]
    edges = [
        edge_key(cycle[index], cycle[(index + 1) % length])
        for index in range(length)
    ]
    return _cycle_rotation_key(trees, edges)


def _cycle_rotation_key(trees: List[Tuple], edges: List[str]) -> Tuple:
    """The unicyclic key from per-cycle-vertex tree encodings + edge labels.

    ``trees[i]`` is the hanging-tree encoding of the ``i``-th cycle vertex,
    ``edges[i]`` the label of the cycle edge to the ``(i+1)``-th.  The key is
    the lexicographically smallest rotation/reflection of the ``(tree, next
    edge)`` sequence.  Only offsets whose *starting* pair is the minimal one
    can realise the minimum, so the candidate set is filtered to those
    starts before any full sequence is materialised — on the growth engine's
    cycles that is one or two candidates instead of ``2·length``.
    """
    length = len(trees)
    # items[o] heads the forward rotation at offset o; rev_items[o] heads the
    # reflected rotation at offset o (its next edge is the *previous* cycle
    # edge).
    items = list(zip(trees, edges))
    rev_items = [(trees[index], edges[index - 1]) for index in range(length)]
    start_min = min(min(items), min(rev_items))
    doubled = items + items
    reflected = rev_items[::-1] + rev_items[::-1]
    best: Optional[Tuple] = None
    for offset in range(length):
        if items[offset] == start_min:
            forward = tuple(doubled[offset : offset + length])
            if best is None or forward < best:
                best = forward
        if rev_items[offset] == start_min:
            flipped = length - 1 - offset
            backward = tuple(reflected[flipped : flipped + length])
            if best is None or backward < best:
                best = backward
    return ("u", length, best)


def bicyclic_canonical_key(graph: LabeledGraph) -> Tuple:
    """Exact canonical key for a *connected* graph with ``|E| = |V| + 1``.

    Such a graph carries exactly two independent cycles.  Its 2-core (strip
    degree-1 vertices, keep what survives) has total degree excess 2 over a
    disjoint union of cycles, so it takes one of exactly three shapes:

    * **figure-eight** — one branch vertex of core degree 4 where two
      otherwise-disjoint cycles meet;
    * **theta** — two branch vertices of core degree 3 joined by three
      internally disjoint strands;
    * **dumbbell** — two branch vertices of core degree 3, each on its own
      cycle, joined by a (possibly single-edge) bridge path.

    Every isomorphism maps core to core, branch vertices to branch vertices
    and strands to strands of the same kind, so a canonical form needs only
    (a) the rooted AHU encoding of each core vertex's hanging tree — the same
    :func:`tree_canonical_key` construction the unicyclic key reuses — and
    (b) a canonical ordering of the strands: loops are minimised over their
    two directions, strand multisets are sorted, and the whole encoding is
    minimised over the (at most two) branch-vertex orderings.  Equal keys
    therefore imply isomorphism (the encoding reconstructs the labeled graph
    up to isomorphism) and isomorphic graphs get equal keys (every remaining
    choice is canonicalised away) — which is what lets the growth engine's
    duplicate registry retire VF2 confirmation for bicyclic patterns.

    Raises ``ValueError`` when the edge count is wrong or the graph is
    disconnected (``|E| = |V| + 1`` also fits a unicyclic graph plus a
    separate cycle, which has no exact two-cycle core).
    """
    order = graph.num_vertices()
    if graph.num_edges() != order + 1 or not graph.is_connected():
        raise ValueError(
            "bicyclic_canonical_key requires a connected graph with |E| = |V| + 1"
        )

    degrees = _strip_to_core(graph)
    core_set = {vertex for vertex, deg in degrees.items() if deg >= 2}
    branch_set = {vertex for vertex in core_set if degrees[vertex] >= 3}
    branches = sorted(branch_set)

    edge_key = _make_edge_key(graph)
    enc = {
        vertex: _hanging_encoding(graph, core_set, vertex, edge_key)
        for vertex in core_set
    }

    # Walk every strand (maximal core path whose interior avoids branch
    # vertices) exactly once; each is recorded with its entry direction and
    # the reverse entry is marked consumed.
    core_adjacency = {
        vertex: [n for n in graph.neighbors(vertex) if n in core_set]
        for vertex in core_set
    }
    consumed: set = set()
    loops: Dict[VertexId, List[List[VertexId]]] = {b: [] for b in branches}
    links: List[Tuple[VertexId, VertexId, List[VertexId]]] = []
    for source in branches:
        for first in core_adjacency[source]:
            if (source, first) in consumed:
                continue
            consumed.add((source, first))
            interior: List[VertexId] = []
            previous, current = source, first
            while current not in branch_set:
                interior.append(current)
                step = next(
                    n for n in core_adjacency[current] if n != previous
                )
                previous, current = current, step
            consumed.add((current, previous))
            if current == source:
                loops[source].append(interior)
            else:
                links.append((source, current, interior))

    def strand_encoding(
        start: VertexId, interior: List[VertexId], end: VertexId
    ) -> Tuple:
        """Alternating (edge label, interior-tree encoding) walk start→end."""
        parts: List[object] = []
        previous = start
        for vertex in interior:
            parts.append(edge_key(previous, vertex))
            parts.append(enc[vertex])
            previous = vertex
        parts.append(edge_key(previous, end))
        return tuple(parts)

    def loop_encoding(anchor: VertexId, interior: List[VertexId]) -> Tuple:
        """A loop's encoding, minimised over its two traversal directions."""
        return min(
            strand_encoding(anchor, interior, anchor),
            strand_encoding(anchor, interior[::-1], anchor),
        )

    if len(branches) == 1:
        anchor = branches[0]
        pair = sorted(loop_encoding(anchor, interior) for interior in loops[anchor])
        return ("b", "8", enc[anchor], tuple(pair))

    u, w = branches
    if links and len(links) == 3:
        candidates = []
        for first, second in ((u, w), (w, u)):
            strands = sorted(
                strand_encoding(
                    first, interior if start == first else interior[::-1], second
                )
                for start, _, interior in links
            )
            candidates.append((enc[first], enc[second], tuple(strands)))
        return ("b", "theta", min(candidates))

    bridge_start, _, bridge_interior = links[0]
    candidates = []
    for first, second in ((u, w), (w, u)):
        interior = (
            bridge_interior if bridge_start == first else bridge_interior[::-1]
        )
        candidates.append(
            (
                enc[first],
                loop_encoding(first, loops[first][0]),
                enc[second],
                loop_encoding(second, loops[second][0]),
                strand_encoding(first, interior, second),
            )
        )
    return ("b", "dumbbell", min(candidates))


class TreeEncodings:
    """Rooted AHU encodings of a free labeled tree, extensible one leaf at a time.

    The batch :func:`tree_canonical_key` re-encodes the whole tree — every
    vertex's sorted-children tuple is rebuilt — on each call.  During pattern
    growth, however, consecutive trees differ by exactly one pendant edge, so
    only the encodings on the path from the attachment vertex up to the root
    can change.  ``TreeEncodings`` carries the rooted structure (parent map,
    children lists, per-vertex encoding) needed to re-canonicalise just that
    path: :meth:`extend` derives the child tree's encodings — and its
    canonical :attr:`key`, equal to the batch key — in O(depth · degree)
    tuple work instead of a full re-encode.

    Invariants: :attr:`root` is always a centre of the tree, and :attr:`enc`
    holds, for every vertex, the same ``(vertex label, edge-to-parent label,
    sorted child encodings)`` triple :func:`_rooted_tree_encoding` would
    produce under that rooting.  Adding a leaf moves the centre by at most
    one edge toward it, so :meth:`extend` re-roots stepwise (each step is a
    local O(degree) exchange between the old root and one child) rather than
    re-encoding from scratch.

    Centres are maintained through the classic endpoint recurrence instead
    of leaf stripping: the instance carries one diameter endpoint pair
    ``(e1, e2)`` with the per-vertex distance maps ``d1`` / ``d2``.  After
    adding leaf ``u``, ``ecc(u) = max(d1[u], d2[u])`` and the new diameter
    is ``max(diam, ecc(u))`` (every farthest-vertex path in a tree ends at a
    diameter endpoint), so the maps extend by one entry in O(1) — a full
    re-BFS happens only on the rare extension that actually lengthens the
    diameter, which constraint-preserving growth almost never does.  The
    centres are then the middle vertices of the ``e1``–``e2`` path:
    ``d1[v] + d2[v] == diam`` with both distances within ``⌈diam/2⌉``.

    Instances are immutable from the caller's perspective: :meth:`extend`
    returns a new object and never mutates its receiver (growth states share
    their encodings with every candidate they spawn).
    """

    __slots__ = (
        "root", "parent", "children", "enc", "key",
        "e1", "e2", "diam", "d1", "d2", "centers",
    )

    def __init__(self, root, parent, children, enc, key):
        self.root: VertexId = root
        self.parent: Dict[VertexId, Optional[VertexId]] = parent
        self.children: Dict[VertexId, List[VertexId]] = children
        self.enc: Dict[VertexId, Tuple] = enc
        self.key: Tuple = key
        # Diameter-endpoint bookkeeping (set by from_tree / extend).
        self.e1: VertexId = root
        self.e2: VertexId = root
        self.diam: int = 0
        self.d1: Dict[VertexId, int] = {root: 0}
        self.d2: Dict[VertexId, int] = {root: 0}
        self.centers: List[VertexId] = [root]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(cls, tree: LabeledGraph) -> "TreeEncodings":
        """Batch-build the encodings of ``tree`` (validates the tree shape)."""
        order = tree.num_vertices()
        if order == 0:
            raise ValueError("cannot canonise the empty tree")
        if tree.num_edges() != order - 1 or not tree.is_connected():
            raise ValueError("TreeEncodings requires a connected tree")
        if order == 1:
            vertex = next(iter(tree.vertices()))
            label = _label_key(tree.label_of(vertex))
            return cls(
                vertex,
                {vertex: None},
                {vertex: []},
                {vertex: (label, "", ())},
                ("t", label),
            )
        degrees = {vertex: tree.degree(vertex) for vertex in tree.vertices()}
        centers = _tree_centers(degrees, tree.neighbors, order)
        root = centers[0]

        parent: Dict[VertexId, Optional[VertexId]] = {root: None}
        ordering: List[VertexId] = [root]
        children: Dict[VertexId, List[VertexId]] = {}
        for vertex in ordering:
            kids: List[VertexId] = []
            for neighbor in tree.neighbors(vertex):
                if neighbor not in parent:
                    parent[neighbor] = vertex
                    ordering.append(neighbor)
                    kids.append(neighbor)
            children[vertex] = kids
        edge_labels = tree._edge_labels
        enc: Dict[VertexId, Tuple] = {}
        for vertex in reversed(ordering):
            up = parent[vertex]
            if up is None:
                edge = ""
            else:
                raw = edge_labels.get((vertex, up) if vertex < up else (up, vertex))
                edge = "" if raw is None else _label_key(raw)
            enc[vertex] = (
                _label_key(tree.label_of(vertex)),
                edge,
                tuple(sorted(enc[child] for child in children[vertex])),
            )
        instance = cls(root, parent, children, enc, ())
        # Diameter endpoints by double BFS over the rooted structure.
        probe = instance._distances_from(root)
        e1 = max(probe, key=lambda v: (probe[v], v))
        d1 = instance._distances_from(e1)
        e2 = max(d1, key=lambda v: (d1[v], v))
        instance.e1, instance.e2 = e1, e2
        instance.d1 = d1
        instance.d2 = instance._distances_from(e2)
        instance.diam = d1[e2]
        instance.centers = centers
        instance.key = instance._key_for(centers)
        return instance

    # ------------------------------------------------------------------ #
    # one-leaf extension
    # ------------------------------------------------------------------ #
    def extend(
        self,
        attach: VertexId,
        new_vertex: VertexId,
        vertex_label: Optional[Label],
        edge_label: Optional[Label] = None,
    ) -> "TreeEncodings":
        """Encodings of the tree with leaf ``new_vertex`` hung off ``attach``."""
        if attach not in self.parent:
            raise ValueError(f"attachment vertex {attach!r} is not in the tree")
        if new_vertex in self.parent:
            raise ValueError(f"vertex {new_vertex!r} is already in the tree")
        parent = dict(self.parent)
        children = dict(self.children)
        enc = dict(self.enc)
        parent[new_vertex] = attach
        children[new_vertex] = []
        children[attach] = children[attach] + [new_vertex]
        enc[new_vertex] = (
            _label_key(vertex_label),
            "" if edge_label is None else _label_key(edge_label),
            (),
        )
        # Only the attach→root path's sorted-children tuples can change, and
        # at each path vertex exactly one child encoding did: splice it in
        # by bisect (O(log k) deep-tuple comparisons) instead of re-sorting
        # the whole child list (O(k log k) plus a per-child dict lookup).
        leaf_enc = enc[new_vertex]
        stored = enc[attach]
        kids = stored[2]
        position = bisect_left(kids, leaf_enc)
        old_child = stored
        enc[attach] = (
            stored[0],
            stored[1],
            kids[:position] + (leaf_enc,) + kids[position:],
        )
        previous_vertex = attach
        vertex: Optional[VertexId] = parent[attach]
        while vertex is not None:
            stored = enc[vertex]
            kids = stored[2]
            removed = bisect_left(kids, old_child)
            trimmed = kids[:removed] + kids[removed + 1 :]
            new_child = enc[previous_vertex]
            position = bisect_left(trimmed, new_child)
            old_child = stored
            enc[vertex] = (
                stored[0],
                stored[1],
                trimmed[:position] + (new_child,) + trimmed[position:],
            )
            previous_vertex = vertex
            vertex = parent[vertex]
        extended = TreeEncodings(self.root, parent, children, enc, ())
        d1 = dict(self.d1)
        d2 = dict(self.d2)
        to_e1 = d1[attach] + 1
        to_e2 = d2[attach] + 1
        d1[new_vertex] = to_e1
        d2[new_vertex] = to_e2
        extended.e1, extended.e2 = self.e1, self.e2
        extended.d1, extended.d2 = d1, d2
        extended.diam = self.diam
        if to_e1 > self.diam or to_e2 > self.diam:
            # The leaf lengthened the diameter: its farthest vertex is one of
            # the old endpoints, so (old endpoint, leaf) is a new diameter
            # pair; re-BFS the replaced endpoint's map (rare under
            # constraint-preserving growth, which keeps D(P) fixed).
            if to_e1 >= to_e2:
                extended.e2 = new_vertex
                extended.diam = to_e1
                extended.d2 = extended._distances_from(new_vertex)
            else:
                extended.e1 = new_vertex
                extended.diam = to_e2
                extended.d1 = extended._distances_from(new_vertex)
                extended.d2 = d2
        centers = extended._centers()
        if extended.root not in centers:
            extended._reroot_to(centers[0])
        extended.centers = centers
        extended.key = extended._key_for(centers)
        return extended

    def extended_key(
        self,
        attach: VertexId,
        new_vertex: VertexId,
        vertex_label: Optional[Label],
        edge_label: Optional[Label] = None,
    ) -> Tuple:
        """The canonical key :meth:`extend` would produce — without building it.

        The duplicate-registry peek in the growth loop only needs the child
        tree's *key*: when the key is already registered the full
        :class:`TreeEncodings` (five dict copies per call) is never used.
        This method derives the key alone, overlaying the re-encoded
        attach→root path on the parent's (unmutated) encodings.  Two facts
        keep it cheap: a new leaf can never be a centre (its two endpoint
        distances sum to at least ``diam + 2``), so while the diameter is
        unchanged the centres — and the root — are exactly the parent's; and
        only the path encodings feed :meth:`_key_for`.  The rare extension
        that lengthens the diameter falls back to a full :meth:`extend`.
        """
        if attach not in self.parent:
            raise ValueError(f"attachment vertex {attach!r} is not in the tree")
        if new_vertex in self.parent:
            raise ValueError(f"vertex {new_vertex!r} is already in the tree")
        if self.d1[attach] + 1 > self.diam or self.d2[attach] + 1 > self.diam:
            return self.extend(attach, new_vertex, vertex_label, edge_label).key

        enc = self.enc
        children = self.children
        parent = self.parent
        overlay: Dict[VertexId, Tuple] = {
            new_vertex: (
                _label_key(vertex_label),
                "" if edge_label is None else _label_key(edge_label),
                (),
            )
        }
        # At each path vertex exactly one child encoding changed: splice it
        # into the stored (already sorted) children tuple by bisect instead
        # of re-sorting the whole child list with per-child overlay lookups.
        # Encodings are non-empty 3-tuples (always truthy), so the remaining
        # overlay lookups below can use `get(...) or enc[...]` — one C-level
        # dict probe instead of a Python-level conditional helper call.
        get = overlay.get
        leaf_enc = overlay[new_vertex]
        stored = enc[attach]
        kids = stored[2]
        position = bisect_left(kids, leaf_enc)
        overlay[attach] = (
            stored[0],
            stored[1],
            kids[:position] + (leaf_enc,) + kids[position:],
        )
        previous_vertex = attach
        vertex: Optional[VertexId] = parent[attach]
        while vertex is not None:
            stored = enc[vertex]
            kids = stored[2]
            old_child = enc[previous_vertex]
            removed = bisect_left(kids, old_child)
            trimmed = kids[:removed] + kids[removed + 1 :]
            new_child = overlay[previous_vertex]
            position = bisect_left(trimmed, new_child)
            overlay[vertex] = (
                stored[0],
                stored[1],
                trimmed[:position] + (new_child,) + trimmed[position:],
            )
            previous_vertex = vertex
            vertex = parent[vertex]

        root = self.root
        centers = self.centers
        best = overlay[root]
        if len(centers) == 2:
            other = centers[0] if centers[1] == root else centers[1]
            other_enc = get(other) or enc[other]
            root_kids = children[root]
            if root == attach:
                root_kids = root_kids + [new_vertex]
            root_as_child = (
                best[0],
                other_enc[1],
                tuple(
                    sorted([get(c) or enc[c] for c in root_kids if c != other])
                ),
            )
            other_kids = children[other]
            if other == attach:
                other_kids = other_kids + [new_vertex]
            rerooted = (
                other_enc[0],
                "",
                tuple(
                    sorted(
                        [get(c) or enc[c] for c in other_kids if c != root]
                        + [root_as_child]
                    )
                ),
            )
            if rerooted < best:
                best = rerooted
        return ("t", best)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _neighbors(self, vertex: VertexId) -> List[VertexId]:
        up = self.parent[vertex]
        kids = self.children[vertex]
        return kids if up is None else kids + [up]

    def _distances_from(self, source: VertexId) -> Dict[VertexId, int]:
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[VertexId] = []
            for vertex in frontier:
                base = distances[vertex] + 1
                for neighbor in self._neighbors(vertex):
                    if neighbor not in distances:
                        distances[neighbor] = base
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def _centers(self) -> List[VertexId]:
        """The 1 or 2 centres: middle vertices of the ``e1``–``e2`` path.

        A vertex lies on that diameter path iff ``d1[v] + d2[v] == diam``;
        the centres are the on-path vertices whose larger endpoint distance
        is ``⌈diam/2⌉`` — one vertex for even diameters, two adjacent ones
        for odd.  Tree centres are unique, so the scan stops once the
        expected count is found.
        """
        diam = self.diam
        if diam == 0:
            return [self.root]
        half = (diam + 1) // 2
        wanted = 1 if diam % 2 == 0 else 2
        centers: List[VertexId] = []
        d2 = self.d2
        for vertex, near in self.d1.items():
            far = d2[vertex]
            if near + far == diam and near <= half and far <= half:
                centers.append(vertex)
                if len(centers) == wanted:
                    break
        return sorted(centers)

    def _reroot_to(self, target: VertexId) -> None:
        """Re-root stepwise along the ancestor path of ``target`` (in place).

        Each step exchanges the root with one of its children: only those two
        encodings change, everything else stays valid under the new rooting.
        """
        path: List[VertexId] = []
        vertex: Optional[VertexId] = target
        while vertex is not None and vertex != self.root:
            path.append(vertex)
            vertex = self.parent[vertex]
        if vertex is None:  # pragma: no cover - structure is always a tree
            raise ValueError(f"vertex {target!r} is not in the tree")
        for step in reversed(path):
            root = self.root
            self.children[root] = [c for c in self.children[root] if c != step]
            self.children[step] = self.children[step] + [root]
            self.parent[root] = step
            self.parent[step] = None
            root_label, _, _ = self.enc[root]
            step_label, step_edge, _ = self.enc[step]
            self.enc[root] = (
                root_label,
                step_edge,  # the (root, step) edge label, read from the old child
                tuple(sorted(self.enc[c] for c in self.children[root])),
            )
            self.enc[step] = (
                step_label,
                "",
                tuple(sorted(self.enc[c] for c in self.children[step])),
            )
            self.root = step

    def _key_for(self, centers: List[VertexId]) -> Tuple:
        """The canonical key, given that ``self.root`` is one of ``centers``.

        For bicentral trees the second centre is adjacent to the root, so its
        rooted encoding is derived by a *view* of the one-step re-root (no
        mutation): the root becomes a child of the other centre and only
        those two encodings differ.
        """
        if len(self.parent) == 1:
            return ("t", self.enc[self.root][0])
        root = self.root
        enc = self.enc
        best = enc[root]
        if len(centers) == 2:
            other = centers[0] if centers[1] == root else centers[1]
            root_as_child = (
                enc[root][0],
                enc[other][1],
                tuple(sorted(enc[c] for c in self.children[root] if c != other)),
            )
            rerooted = (
                enc[other][0],
                "",
                tuple(sorted([enc[c] for c in self.children[other]] + [root_as_child])),
            )
            if rerooted < best:
                best = rerooted
        return ("t", best)


class UnicyclicEncodings:
    """Rooted hanging-tree encodings of a unicyclic graph, pendant-extensible.

    The batch :func:`unicyclic_canonical_key` re-strips the core and
    re-encodes every hanging tree on each call.  During pattern growth a
    unicyclic pattern's descendants differ by one pendant leaf at a time —
    the cycle itself is fixed for the whole derivation chain (closing a
    second cycle changes the shape tier) — so only one hanging tree's
    encodings along the attach→anchor path can change.  This class carries
    the per-vertex rooted structure of *all* hanging trees (anchored at
    their cycle vertices, roots pinned — no centre bookkeeping needed) and
    derives each one-leaf extension's canonical :attr:`key`, equal to the
    batch key, in O(depth + cycle length) instead of a full re-encode.

    Instances are immutable from the caller's perspective: :meth:`extend`
    returns a new object; :meth:`extended_key` derives the child's key alone
    by overlaying the re-encoded path, for the duplicate-registry peek.
    """

    __slots__ = ("cycle", "edges", "pos_of", "parent", "children", "enc", "trees", "key")

    def __init__(self, cycle, edges, pos_of, parent, children, enc, trees, key):
        self.cycle: Tuple[VertexId, ...] = cycle
        self.edges: List[str] = edges
        self.pos_of: Dict[VertexId, int] = pos_of
        self.parent: Dict[VertexId, Optional[VertexId]] = parent
        self.children: Dict[VertexId, List[VertexId]] = children
        self.enc: Dict[VertexId, Tuple] = enc
        self.trees: List[Tuple] = trees
        self.key: Tuple = key

    @classmethod
    def from_graph(cls, graph: LabeledGraph) -> "UnicyclicEncodings":
        """Batch-build the encodings (validates the unicyclic shape)."""
        order = graph.num_vertices()
        if graph.num_edges() != order or not graph.is_connected():
            raise ValueError(
                "UnicyclicEncodings requires one connected cycle"
            )
        degrees = _strip_to_core(graph)
        cycle_set = {vertex for vertex, deg in degrees.items() if deg >= 2}

        start = min(cycle_set)
        cycle: List[VertexId] = [start]
        previous: Optional[VertexId] = None
        current = start
        while True:
            step = next(
                neighbor
                for neighbor in graph.neighbors(current)
                if neighbor in cycle_set and neighbor != previous
            )
            if step == start:
                break
            cycle.append(step)
            previous, current = current, step
        length = len(cycle)

        edge_key = _make_edge_key(graph)
        # One rooted structure over all hanging trees (they are disjoint):
        # cycle vertices are the roots, traversal never crosses the core.
        parent: Dict[VertexId, Optional[VertexId]] = {v: None for v in cycle}
        ordering: List[VertexId] = list(cycle)
        children: Dict[VertexId, List[VertexId]] = {}
        for vertex in ordering:
            kids: List[VertexId] = []
            for neighbor in graph.neighbors(vertex):
                if neighbor not in parent and neighbor not in cycle_set:
                    parent[neighbor] = vertex
                    ordering.append(neighbor)
                    kids.append(neighbor)
            children[vertex] = kids
        enc: Dict[VertexId, Tuple] = {}
        for vertex in reversed(ordering):
            up = parent[vertex]
            enc[vertex] = (
                _label_key(graph.label_of(vertex)),
                "" if up is None else edge_key(vertex, up),
                tuple(sorted([enc[child] for child in children[vertex]])),
            )
        trees = [enc[vertex] for vertex in cycle]
        edges = [
            edge_key(cycle[index], cycle[(index + 1) % length])
            for index in range(length)
        ]
        return cls(
            tuple(cycle),
            edges,
            {vertex: index for index, vertex in enumerate(cycle)},
            parent,
            children,
            enc,
            trees,
            _cycle_rotation_key(trees, edges),
        )

    def extend(
        self,
        attach: VertexId,
        new_vertex: VertexId,
        vertex_label: Optional[Label],
        edge_label: Optional[Label] = None,
    ) -> "UnicyclicEncodings":
        """Encodings of the graph with leaf ``new_vertex`` hung off ``attach``."""
        if attach not in self.parent:
            raise ValueError(f"attachment vertex {attach!r} is not in the graph")
        if new_vertex in self.parent:
            raise ValueError(f"vertex {new_vertex!r} is already in the graph")
        parent = dict(self.parent)
        children = dict(self.children)
        enc = dict(self.enc)
        parent[new_vertex] = attach
        children[new_vertex] = []
        children[attach] = children[attach] + [new_vertex]
        enc[new_vertex] = (
            _label_key(vertex_label),
            "" if edge_label is None else _label_key(edge_label),
            (),
        )
        # Only the attach→anchor path of one hanging tree can change, and at
        # each path vertex exactly one child encoding did: splice it in by
        # bisect instead of re-sorting the whole child list (see
        # :meth:`TreeEncodings.extend`).
        leaf_enc = enc[new_vertex]
        stored = enc[attach]
        kids = stored[2]
        position = bisect_left(kids, leaf_enc)
        old_child = stored
        enc[attach] = (
            stored[0],
            stored[1],
            kids[:position] + (leaf_enc,) + kids[position:],
        )
        anchor = attach
        previous_vertex = attach
        vertex: Optional[VertexId] = parent[attach]
        while vertex is not None:
            stored = enc[vertex]
            kids = stored[2]
            removed = bisect_left(kids, old_child)
            trimmed = kids[:removed] + kids[removed + 1 :]
            new_child = enc[previous_vertex]
            position = bisect_left(trimmed, new_child)
            old_child = stored
            enc[vertex] = (
                stored[0],
                stored[1],
                trimmed[:position] + (new_child,) + trimmed[position:],
            )
            anchor = vertex
            previous_vertex = vertex
            vertex = parent[vertex]
        trees = list(self.trees)
        trees[self.pos_of[anchor]] = enc[anchor]
        return UnicyclicEncodings(
            self.cycle,
            self.edges,
            self.pos_of,
            parent,
            children,
            enc,
            trees,
            _cycle_rotation_key(trees, self.edges),
        )

    def extended_key(
        self,
        attach: VertexId,
        new_vertex: VertexId,
        vertex_label: Optional[Label],
        edge_label: Optional[Label] = None,
    ) -> Tuple:
        """The canonical key :meth:`extend` would produce — without building it.

        Overlays the re-encoded attach→anchor path on the parent's
        (unmutated) encodings, exactly like
        :meth:`TreeEncodings.extended_key`; since hanging-tree roots are
        pinned to their cycle vertices there is no centre or re-rooting case
        at all.
        """
        if attach not in self.parent:
            raise ValueError(f"attachment vertex {attach!r} is not in the graph")
        if new_vertex in self.parent:
            raise ValueError(f"vertex {new_vertex!r} is already in the graph")
        enc = self.enc
        parent = self.parent
        overlay: Dict[VertexId, Tuple] = {
            new_vertex: (
                _label_key(vertex_label),
                "" if edge_label is None else _label_key(edge_label),
                (),
            )
        }
        leaf_enc = overlay[new_vertex]
        stored = enc[attach]
        kids = stored[2]
        position = bisect_left(kids, leaf_enc)
        overlay[attach] = (
            stored[0],
            stored[1],
            kids[:position] + (leaf_enc,) + kids[position:],
        )
        anchor = attach
        previous_vertex = attach
        vertex: Optional[VertexId] = parent[attach]
        while vertex is not None:
            stored = enc[vertex]
            kids = stored[2]
            old_child = enc[previous_vertex]
            removed = bisect_left(kids, old_child)
            trimmed = kids[:removed] + kids[removed + 1 :]
            new_child = overlay[previous_vertex]
            position = bisect_left(trimmed, new_child)
            overlay[vertex] = (
                stored[0],
                stored[1],
                trimmed[:position] + (new_child,) + trimmed[position:],
            )
            anchor = vertex
            previous_vertex = vertex
            vertex = parent[vertex]
        trees = list(self.trees)
        trees[self.pos_of[anchor]] = overlay[anchor]
        return _cycle_rotation_key(trees, self.edges)


def tree_encodings(tree: LabeledGraph) -> "TreeEncodings":
    """Batch-build :class:`TreeEncodings` for ``tree`` (see its docstring)."""
    return TreeEncodings.from_tree(tree)


def tree_canonical_key_incremental(
    parent_encodings: "TreeEncodings",
    edge: Tuple,
) -> "TreeEncodings":
    """Derive a one-leaf extension's canonical key from its parent's encodings.

    ``edge`` is ``(attach_vertex, new_vertex, vertex_label)`` or
    ``(attach_vertex, new_vertex, vertex_label, edge_label)``.  Returns the
    extension's :class:`TreeEncodings`; its ``key`` attribute equals
    ``tree_canonical_key`` of the extended tree (property-tested over random
    pendant-extension chains in ``tests/graph/test_canonical.py``), but is
    derived by re-canonicalising only the attach→root path — O(depth) tuple
    work — instead of re-encoding every vertex.
    """
    if len(edge) == 3:
        attach, new_vertex, vertex_label = edge
        edge_label: Optional[Label] = None
    elif len(edge) == 4:
        attach, new_vertex, vertex_label, edge_label = edge
    else:
        raise ValueError(
            "edge must be (attach, new_vertex, vertex_label[, edge_label])"
        )
    return parent_encodings.extend(attach, new_vertex, vertex_label, edge_label)


def _rooted_tree_encoding(tree: LabeledGraph, root: VertexId) -> Tuple:
    """Bottom-up AHU encoding of ``tree`` rooted at ``root`` (iterative)."""
    parent: Dict[VertexId, Optional[VertexId]] = {root: None}
    ordering: List[VertexId] = [root]
    for vertex in ordering:
        for neighbor in tree.neighbors(vertex):
            if neighbor not in parent:
                parent[neighbor] = vertex
                ordering.append(neighbor)
    # One dict probe per parent edge; patterns grown by LevelGrow carry no
    # edge labels at all, so the empty-dict case must stay allocation-free.
    edge_labels = tree._edge_labels
    encoding: Dict[VertexId, Tuple] = {}
    for vertex in reversed(ordering):
        up = parent[vertex]
        if up is None:
            edge = ""
        else:
            raw = edge_labels.get((vertex, up) if vertex < up else (up, vertex))
            edge = "" if raw is None else _label_key(raw)
        children = sorted(
            encoding[child]
            for child in tree.neighbors(vertex)
            if parent[child] == vertex
        )
        encoding[vertex] = (
            _label_key(tree.label_of(vertex)),
            edge,
            tuple(children),
        )
    return encoding[root]
