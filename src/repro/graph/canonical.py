"""Canonical codes for labeled graphs (gSpan-style minimum DFS codes).

SkinnyMine partitions its search space by canonical diameter, but it (and the
gSpan/MoSS baselines, and the test-suite) still need a *graph-level* canonical
form to answer "have I generated this pattern before?".  We use the classic
gSpan minimum DFS code [Yan & Han, ICDM 2002]: the lexicographically smallest
DFS code over all rooted DFS traversals of the graph.  Two labeled graphs are
isomorphic iff their minimum DFS codes are equal.

A DFS code is a sequence of 5-tuples ``(i, j, l_i, l_e, l_j)`` where ``i`` and
``j`` are DFS discovery indices, ``l_i``/``l_j`` are vertex labels and ``l_e``
is the edge label (``None`` allowed, compared as the empty string).  Forward
edges have ``i < j``, backward edges ``i > j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import Label, LabeledGraph, VertexId

DFSEdge = Tuple[int, int, str, str, str]


def _label_key(label: Optional[Label]) -> str:
    """Normalise a label to a string for lexicographic comparison."""
    return "" if label is None else str(label)


@dataclass(frozen=True)
class DFSCode:
    """An (ordered) DFS code: a tuple of DFS edges.

    Instances compare lexicographically edge by edge using the gSpan edge
    order, which here reduces to tuple comparison because forward/backward
    status is encoded by the (i, j) index pair ordering rule implemented in
    ``_edge_sort_key``.
    """

    edges: Tuple[DFSEdge, ...]

    def __len__(self) -> int:
        return len(self.edges)

    def __lt__(self, other: "DFSCode") -> bool:
        return _code_key(self.edges) < _code_key(other.edges)

    def __le__(self, other: "DFSCode") -> bool:
        return _code_key(self.edges) <= _code_key(other.edges)

    def as_tuple(self) -> Tuple[DFSEdge, ...]:
        return self.edges


@dataclass(frozen=True)
class CanonicalCode:
    """The canonical (minimum) DFS code of a graph, usable as a dict key."""

    code: Tuple[DFSEdge, ...]
    num_vertices: int
    isolated_labels: Tuple[str, ...]

    def __lt__(self, other: "CanonicalCode") -> bool:
        return (
            _code_key(self.code),
            self.isolated_labels,
        ) < (_code_key(other.code), other.isolated_labels)


def _edge_sort_key(edge: DFSEdge) -> Tuple:
    """gSpan edge order key for a single DFS-code edge.

    Backward edges (j < i) sort before forward edges from the same vertex;
    among forward edges smaller source index (deeper rightmost-path vertex is
    *larger* i, so smaller i means earlier) — the standard gSpan total order
    is realised by comparing these keys tuple-wise.
    """
    i, j, li, le, lj = edge
    forward = 1 if i < j else 0
    if forward:
        return (forward, j, i, li, le, lj)
    return (forward, i, j, li, le, lj)


def _code_key(code: Sequence[DFSEdge]) -> Tuple:
    return tuple(_edge_sort_key(edge) for edge in code)


def _candidate_roots(graph: LabeledGraph) -> List[VertexId]:
    """Vertices whose label is lexicographically minimal (valid DFS roots)."""
    best_label = min(_label_key(graph.label_of(v)) for v in graph.vertices())
    return [v for v in graph.vertices() if _label_key(graph.label_of(v)) == best_label]


def _min_code_from_root(graph: LabeledGraph, root: VertexId) -> Tuple[DFSEdge, ...]:
    """Smallest DFS code over traversals rooted at ``root`` (branch and bound).

    The search enumerates every DFS traversal rooted at ``root`` (extensions
    are restricted to the rightmost path as usual for DFS codes) and keeps the
    lexicographically smallest complete code.  Branches whose prefix already
    compares greater than the best code's prefix of equal length are pruned —
    a sound cut because code comparison is lexicographic edge by edge and all
    complete codes have exactly ``|E|`` edges.  Some partial traversals are
    dead ends (an unused edge hangs off a vertex that has left the rightmost
    path); those branches simply do not produce a candidate.
    """
    best: List[Optional[Tuple[DFSEdge, ...]]] = [None]
    best_key: List[Optional[Tuple]] = [None]
    total_edges = graph.num_edges()

    def recurse(
        code: List[DFSEdge],
        discovery: Dict[VertexId, int],
        rightmost_path: List[VertexId],
        used_edges: set,
    ) -> None:
        if best_key[0] is not None and code:
            current_key = _code_key(code)
            prefix_key = best_key[0][: len(code)]
            if current_key > prefix_key:
                return
        if len(used_edges) == total_edges:
            candidate = tuple(code)
            candidate_key = _code_key(candidate)
            if best_key[0] is None or candidate_key < best_key[0]:
                best[0] = candidate
                best_key[0] = candidate_key
            return

        extensions: List[Tuple[Tuple, DFSEdge, VertexId, VertexId]] = []
        # Backward edges may only leave the rightmost vertex and land on the
        # rightmost path.
        rightmost = rightmost_path[-1]
        rightmost_set = set(rightmost_path)
        for neighbor in graph.neighbors(rightmost):
            key = frozenset((rightmost, neighbor))
            if key in used_edges:
                continue
            if neighbor in rightmost_set:
                edge = (
                    discovery[rightmost],
                    discovery[neighbor],
                    _label_key(graph.label_of(rightmost)),
                    _label_key(graph.edge_label(rightmost, neighbor)),
                    _label_key(graph.label_of(neighbor)),
                )
                extensions.append((_edge_sort_key(edge), edge, rightmost, neighbor))
        # Forward edges may leave any vertex on the rightmost path.
        for path_vertex in rightmost_path:
            for neighbor in graph.neighbors(path_vertex):
                key = frozenset((path_vertex, neighbor))
                if key in used_edges or neighbor in discovery:
                    continue
                edge = (
                    discovery[path_vertex],
                    len(discovery),
                    _label_key(graph.label_of(path_vertex)),
                    _label_key(graph.edge_label(path_vertex, neighbor)),
                    _label_key(graph.label_of(neighbor)),
                )
                extensions.append((_edge_sort_key(edge), edge, path_vertex, neighbor))

        extensions.sort(key=lambda item: item[0])
        for _, edge, source, target in extensions:
            i, j = edge[0], edge[1]
            is_forward = i < j
            used_edges.add(frozenset((source, target)))
            code.append(edge)
            if is_forward:
                discovery[target] = j
                # Rightmost path becomes root -> ... -> source -> target.
                source_index = rightmost_path.index(source)
                new_rightmost = rightmost_path[: source_index + 1] + [target]
                recurse(code, discovery, new_rightmost, used_edges)
                del discovery[target]
            else:
                recurse(code, discovery, rightmost_path, used_edges)
            code.pop()
            used_edges.discard(frozenset((source, target)))

    recurse([], {root: 0}, [root], set())
    if best[0] is None:
        return tuple()
    return best[0]


def minimum_dfs_code(graph: LabeledGraph) -> CanonicalCode:
    """Return the canonical (minimum) DFS code of ``graph``.

    Isolated vertices carry no edges, so they are recorded separately as a
    sorted label tuple; the code itself covers every edge of the graph.
    Isomorphic graphs produce equal ``CanonicalCode`` values, non-isomorphic
    graphs produce different ones (for connected labeled graphs, this is the
    gSpan canonical form; components are encoded independently and sorted).
    """
    isolated = tuple(
        sorted(
            _label_key(graph.label_of(v))
            for v in graph.vertices()
            if graph.degree(v) == 0
        )
    )
    if graph.num_edges() == 0:
        return CanonicalCode(code=(), num_vertices=graph.num_vertices(), isolated_labels=isolated)

    component_codes: List[Tuple[DFSEdge, ...]] = []
    for component in graph.connected_components():
        if len(component) == 1:
            continue
        subgraph = graph.subgraph(component)
        best: Optional[Tuple[DFSEdge, ...]] = None
        for root in _candidate_roots(subgraph):
            candidate = _min_code_from_root(subgraph, root)
            if best is None or _code_key(candidate) < _code_key(best):
                best = candidate
        component_codes.append(best if best is not None else tuple())

    component_codes.sort(key=_code_key)
    flat: List[DFSEdge] = []
    for offset, code in enumerate(component_codes):
        # Offset vertex indices per component so concatenation stays unambiguous.
        shift = sum(
            max((max(e[0], e[1]) for e in earlier), default=-1) + 1
            for earlier in component_codes[:offset]
        )
        for i, j, li, le, lj in code:
            flat.append((i + shift, j + shift, li, le, lj))
    return CanonicalCode(
        code=tuple(flat),
        num_vertices=graph.num_vertices(),
        isolated_labels=isolated,
    )


def canonical_key(graph: LabeledGraph) -> Tuple:
    """A hashable key equal for isomorphic graphs — convenience wrapper."""
    canonical = minimum_dfs_code(graph)
    return (canonical.code, canonical.num_vertices, canonical.isolated_labels)


def wl_signature(graph: LabeledGraph, rounds: int = 3) -> Tuple:
    """A cheap isomorphism-*invariant* signature (Weisfeiler–Lehman colouring).

    Isomorphic graphs always produce equal signatures; non-isomorphic graphs
    usually (but not provably) produce different ones, so the signature is a
    hash-bucket key, not a canonical form.  Callers that need exactness
    confirm collisions with :func:`repro.graph.isomorphism.are_isomorphic`
    (see ``PatternRegistry`` in the LevelGrow module), use
    :func:`tree_canonical_key` for trees, or fall back to
    :func:`minimum_dfs_code`.

    The colour of a vertex starts as its (label, degree) pair and is refined
    ``rounds`` times from the multiset of neighbour colours; the signature
    records the sorted colour histogram of *every* round (the whole
    refinement trajectory discriminates far better than the final round
    alone, which keeps collision buckets near-singleton for the growth
    engine's duplicate registry).  Colours are compressed to canonical small
    integers each round — the palette is assigned in sorted key order, so
    the numbering, and therefore the signature, is independent of vertex
    iteration order — which keeps refinement allocation-light: the growth
    engine computes one signature per candidate pattern.
    """
    vertices = list(graph.vertices())
    degree = graph.degree
    initial = {
        vertex: (_label_key(graph.label_of(vertex)), degree(vertex))
        for vertex in vertices
    }
    palette: Dict[object, int] = {
        key: index for index, key in enumerate(sorted(set(initial.values())))
    }
    colors: Dict[VertexId, int] = {
        vertex: palette[initial[vertex]] for vertex in vertices
    }
    neighbors = graph.neighbors
    histograms: List[Tuple] = [_color_histogram(colors)]
    for _ in range(rounds):
        keys = {
            vertex: (
                colors[vertex],
                tuple(sorted(colors[neighbor] for neighbor in neighbors(vertex))),
            )
            for vertex in vertices
        }
        palette = {key: index for index, key in enumerate(sorted(set(keys.values())))}
        colors = {vertex: palette[keys[vertex]] for vertex in vertices}
        histograms.append(_color_histogram(colors))
    return (
        graph.num_vertices(),
        graph.num_edges(),
        tuple(histograms),
    )


def _color_histogram(colors: Dict[VertexId, int]) -> Tuple:
    histogram: Dict[int, int] = {}
    for color in colors.values():
        histogram[color] = histogram.get(color, 0) + 1
    return tuple(sorted(histogram.items()))


def tree_canonical_key(tree: LabeledGraph) -> Tuple:
    """AHU canonical form of a free labeled tree — exact and near-linear.

    Two *trees* (connected, ``|E| = |V| - 1``) get equal keys iff they are
    isomorphic as labeled graphs (vertex and edge labels both participate).
    The classic centre construction makes the rooted AHU encoding canonical
    for free trees: strip leaves until one or two centre vertices remain,
    encode the tree rooted at each centre bottom-up with sorted child
    encodings, and keep the smaller encoding.  Callers must ensure the input
    is a tree; the cheap shape check raises ``ValueError`` otherwise.

    The growth engine's duplicate registry relies on this as its fast exact
    path: grown skinny patterns are overwhelmingly trees (a diameter plus
    twigs), and the minimum-DFS-code fallback is exponential in the worst
    case while the AHU key never is.
    """
    order = tree.num_vertices()
    if order == 0:
        raise ValueError("cannot canonise the empty tree")
    if tree.num_edges() != order - 1 or not tree.is_connected():
        raise ValueError("tree_canonical_key requires a connected tree")
    if order == 1:
        vertex = next(iter(tree.vertices()))
        return ("t", _label_key(tree.label_of(vertex)))

    # Find the 1 or 2 centres by iterative leaf stripping.
    degrees = {vertex: tree.degree(vertex) for vertex in tree.vertices()}
    remaining = order
    layer = [vertex for vertex, deg in degrees.items() if deg <= 1]
    while remaining > 2:
        next_layer: List[VertexId] = []
        for leaf in layer:
            degrees[leaf] = 0
            for neighbor in tree.neighbors(leaf):
                if degrees[neighbor] > 0:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_layer.append(neighbor)
        remaining -= len(layer)
        layer = next_layer
    centers = sorted(layer)

    return ("t", min(_rooted_tree_encoding(tree, center) for center in centers))


def _rooted_tree_encoding(tree: LabeledGraph, root: VertexId) -> Tuple:
    """Bottom-up AHU encoding of ``tree`` rooted at ``root`` (iterative)."""
    parent: Dict[VertexId, Optional[VertexId]] = {root: None}
    ordering: List[VertexId] = [root]
    for vertex in ordering:
        for neighbor in tree.neighbors(vertex):
            if neighbor not in parent:
                parent[neighbor] = vertex
                ordering.append(neighbor)
    # One dict probe per parent edge; patterns grown by LevelGrow carry no
    # edge labels at all, so the empty-dict case must stay allocation-free.
    edge_labels = tree._edge_labels
    encoding: Dict[VertexId, Tuple] = {}
    for vertex in reversed(ordering):
        up = parent[vertex]
        if up is None:
            edge = ""
        else:
            raw = edge_labels.get((vertex, up) if vertex < up else (up, vertex))
            edge = "" if raw is None else _label_key(raw)
        children = sorted(
            encoding[child]
            for child in tree.neighbors(vertex)
            if parent[child] == vertex
        )
        encoding[vertex] = (
            _label_key(tree.label_of(vertex)),
            edge,
            tuple(children),
        )
    return encoding[root]
