"""Frozen CSR (compressed sparse row) views of labeled graphs.

The mining engines read the *data* graphs millions of times per query and
never write them between deltas: every candidate extension scans a
neighbourhood, every pendant probe runs a BFS, every frequency check hashes
data-vertex ids.  :class:`~repro.graph.labeled_graph.LabeledGraph` is the
right structure for *patterns* (they mutate on every growth step) but pays
dict-of-sets overhead on every data access.

:class:`CSRGraph` is the immutable array-backed counterpart: vertex records
live in flat :mod:`array` columns, adjacency is the classic
``indptr``/``indices`` pair, and labels are interned through a
:class:`LabelPalette` into dense integer codes.  It mirrors the read API of
``LabeledGraph`` exactly — ``neighbors`` / ``degree`` / ``has_edge`` /
``label_of`` / ``edges`` / ``connected_components`` and friends all behave
identically — so engine code is written once against the shared surface.
Mutators raise :class:`FrozenGraphError`; updates go through
``MiningContext.apply_delta`` on the mutable originals, which then
invalidates the frozen views (see ``docs/DATA_PLANE.md``).

Vertex ids are **preserved**, never renumbered: embeddings, stored results
and content hashes all reference data-vertex ids, so a frozen view must be
observationally identical to the graph it mirrors.  When the ids already
form ``0..n-1`` (every generated dataset does this) the id↔slot mapping is
the identity and costs nothing.

Examples
--------
>>> from repro.graph.labeled_graph import build_graph
>>> g = build_graph({0: "a", 1: "b", 2: "a"}, [(0, 1), (1, 2)])
>>> frozen = CSRGraph.from_labeled(g)
>>> frozen.num_vertices(), frozen.num_edges()
(3, 2)
>>> frozen.label_of(1)
'b'
>>> frozen.neighbors(1)
(0, 2)
>>> frozen.has_edge(0, 2)
False
>>> sorted(frozen.to_labeled().vertices()) == sorted(g.vertices())
True
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.labeled_graph import Edge, Label, LabeledGraph, VertexId


class FrozenGraphError(TypeError):
    """Raised when a mutating operation is attempted on a :class:`CSRGraph`."""


class LabelPalette:
    """Interns labels into dense integer codes.

    A data graph uses a handful of distinct labels across many vertices;
    comparing and hashing interned codes is cheaper than hashing arbitrary
    label objects, and the palette also caches each label's ``str`` form —
    the representation the growth engine keys extensions by — so hot loops
    never call ``str()`` per neighbour.

    Examples
    --------
    >>> palette = LabelPalette()
    >>> palette.intern("a"), palette.intern("b"), palette.intern("a")
    (0, 1, 0)
    >>> palette.label_of(1)
    'b'
    >>> palette.str_of(0)
    'a'
    >>> len(palette)
    2
    >>> "a" in palette, "z" in palette
    (True, False)
    """

    __slots__ = ("_codes", "_labels", "_strs")

    def __init__(self) -> None:
        self._codes: Dict[Label, int] = {}
        self._labels: List[Label] = []
        self._strs: List[str] = []

    def intern(self, label: Label) -> int:
        """Return the dense code for ``label``, allocating one if new."""
        code = self._codes.get(label)
        if code is None:
            code = len(self._labels)
            self._codes[label] = code
            self._labels.append(label)
            self._strs.append(str(label))
        return code

    def code_of(self, label: Label) -> int:
        """Code of an already-interned label (``KeyError`` if unknown)."""
        return self._codes[label]

    def label_of(self, code: int) -> Label:
        """The original label object for ``code``."""
        return self._labels[code]

    def str_of(self, code: int) -> str:
        """Cached ``str(label)`` for ``code``."""
        return self._strs[code]

    def labels(self) -> Tuple[Label, ...]:
        """All interned labels, in code order."""
        return tuple(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._codes


def _mutation_stub(name: str):
    def stub(self, *args, **kwargs):
        raise FrozenGraphError(
            f"CSRGraph is immutable: {name}() is not supported. "
            "Apply deltas to the mutable LabeledGraph (e.g. through "
            "MiningContext.apply_delta) and re-freeze."
        )

    stub.__name__ = name
    stub.__doc__ = "Unsupported on a frozen view: raises :class:`FrozenGraphError`."
    return stub


class CSRGraph:
    """An immutable, array-backed, vertex-labeled undirected graph.

    The canonical storage is four flat columns (see ``docs/DATA_PLANE.md``):

    * ``indptr`` — ``n + 1`` offsets; vertex slot ``i``'s neighbour run is
      ``indices[indptr[i]:indptr[i + 1]]``;
    * ``indices`` — ``2m`` neighbour *slots*, each run sorted by vertex id;
    * ``label_codes`` — one palette code per vertex slot;
    * ``edge_label_codes`` — optional, aligned with ``indices`` (``-1`` =
      unlabeled); omitted entirely when the graph has no edge labels.

    On top of the arrays two derived read caches make pure-Python iteration
    cheap: ``adjacency`` maps each vertex id to a sorted tuple of neighbour
    ids, and ``label_strs`` maps each vertex id to the cached ``str`` form
    of its label.  Both are plain dicts exposed as public attributes — the
    hot loops of the growth engine read them directly — and both are
    derived from (never authoritative over) the arrays.

    The read API matches :class:`~repro.graph.labeled_graph.LabeledGraph`;
    ``neighbors`` returns a sorted tuple instead of a live set, which every
    caller treats as read-only anyway.  All mutators raise
    :class:`FrozenGraphError`.

    Examples
    --------
    >>> from repro.graph.labeled_graph import build_graph
    >>> g = build_graph({0: "a", 1: "b", 2: "a", 3: "c"},
    ...                 [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> frozen = CSRGraph.from_labeled(g)
    >>> frozen.degree(1)
    2
    >>> sorted(frozen.labels_used())
    ['a', 'b', 'c']
    >>> frozen.label_histogram() == {"a": 2, "b": 1, "c": 1}
    True
    >>> frozen.is_connected()
    True
    >>> frozen.add_vertex(9, "z")  # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    FrozenGraphError: CSRGraph is immutable: add_vertex() is not supported.
    """

    __slots__ = (
        "name",
        "indptr",
        "indices",
        "label_codes",
        "edge_label_codes",
        "palette",
        "edge_palette",
        "adjacency",
        "label_strs",
        "_labeled_adjacency",
        "_vertex_ids",
        "_slot_of",
        "_labels",
        "_edge_labels",
        "_num_edges",
    )

    def __init__(self) -> None:
        raise TypeError("use CSRGraph.from_labeled() to build a frozen view")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labeled(
        cls, graph: LabeledGraph, palette: Optional[LabelPalette] = None
    ) -> "CSRGraph":
        """Freeze ``graph`` into a CSR view (the only constructor).

        ``palette`` lets several transactions of one database share a label
        palette, so a label's code is stable across the whole context.
        Vertex ids are preserved verbatim; slots are assigned in sorted-id
        order so the layout is a pure function of graph content.
        """
        self = object.__new__(cls)
        self.name = graph.name
        self.palette = palette if palette is not None else LabelPalette()

        labels = graph.vertex_labels()
        vertex_ids = tuple(sorted(labels))
        n = len(vertex_ids)
        self._vertex_ids = vertex_ids
        # Identity fast path: generated datasets number vertices 0..n-1, so
        # the id -> slot map degenerates to the id itself and is not built.
        identity = vertex_ids == tuple(range(n))
        self._slot_of = (
            None if identity else {vid: slot for slot, vid in enumerate(vertex_ids)}
        )

        intern = self.palette.intern
        self.label_codes = array("l", (intern(labels[vid]) for vid in vertex_ids))

        edge_labels = {
            edge.endpoints(): edge.label
            for edge in graph.edges()
            if edge.label is not None
        }

        indptr = array("q", [0])
        indices = array("q")
        adjacency: Dict[VertexId, Tuple[VertexId, ...]] = {}
        offset = 0
        slot_of = self._slot_of
        for vid in vertex_ids:
            run = tuple(sorted(graph.neighbors(vid)))
            adjacency[vid] = run
            offset += len(run)
            indptr.append(offset)
            if identity:
                indices.extend(run)
            else:
                indices.extend(slot_of[neighbor] for neighbor in run)
        self.indptr = indptr
        self.indices = indices
        self.adjacency = adjacency
        self._num_edges = graph.num_edges()

        str_of = self.palette.str_of
        codes = self.label_codes
        self.label_strs = {
            vid: str_of(codes[slot]) for slot, vid in enumerate(vertex_ids)
        }
        self._labeled_adjacency = None
        self._labels = labels

        if edge_labels:
            self.edge_palette = LabelPalette()
            edge_intern = self.edge_palette.intern
            edge_codes = array("l")
            for vid in vertex_ids:
                for neighbor in adjacency[vid]:
                    key = (vid, neighbor) if vid < neighbor else (neighbor, vid)
                    label = edge_labels.get(key)
                    edge_codes.append(-1 if label is None else edge_intern(label))
            self.edge_label_codes = edge_codes
            self._edge_labels = edge_labels
        else:
            self.edge_palette = None
            self.edge_label_codes = None
            self._edge_labels = {}
        return self

    @property
    def labeled_adjacency(self) -> Dict[VertexId, Tuple[Tuple[VertexId, str], ...]]:
        """Per-vertex ``((neighbour, neighbour label str), ...)`` runs.

        The growth engine's candidate scan visits every data edge incident
        to every embedding image and needs the neighbour's label string for
        each visit; pre-zipping the label onto the adjacency run turns a
        per-visit dict probe into a tuple unpack.  Built lazily on first
        access (one pass over ``adjacency``) and cached — derived from,
        never authoritative over, ``adjacency`` and ``label_strs``.
        """
        cached = self._labeled_adjacency
        if cached is None:
            label_strs = self.label_strs
            cached = {
                vid: tuple((neighbor, label_strs[neighbor]) for neighbor in run)
                for vid, run in self.adjacency.items()
            }
            self._labeled_adjacency = cached
        return cached

    def to_labeled(self) -> LabeledGraph:
        """Thaw back into a mutable :class:`LabeledGraph` (round-trip exact)."""
        graph = LabeledGraph(name=self.name)
        for vid in self._vertex_ids:
            graph.add_vertex(vid, self._labels[vid])
        edge_labels = self._edge_labels
        for vid in self._vertex_ids:
            for neighbor in self.adjacency[vid]:
                if vid < neighbor:
                    graph.add_edge(vid, neighbor, edge_labels.get((vid, neighbor)))
        return graph

    # ------------------------------------------------------------------ #
    # queries (LabeledGraph read-API parity)
    # ------------------------------------------------------------------ #
    def has_vertex(self, vertex: VertexId) -> bool:
        return vertex in self.adjacency

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """O(log deg) membership via binary search in the sorted run."""
        run = self.adjacency.get(u)
        if run is None:
            return False
        position = bisect_left(run, v)
        return position < len(run) and run[position] == v

    def label_of(self, vertex: VertexId) -> Label:
        return self._labels[vertex]

    def edge_label(self, u: VertexId, v: VertexId) -> Optional[Label]:
        """Return the label of edge ``{u, v}`` (``None`` if unlabeled)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) is not in the graph")
        return self._edge_labels.get((u, v) if u < v else (v, u))

    def neighbors(self, vertex: VertexId) -> Tuple[VertexId, ...]:
        """Sorted tuple of neighbours (read-only by construction)."""
        return self.adjacency[vertex]

    def degree(self, vertex: VertexId) -> int:
        return len(self.adjacency[vertex])

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._vertex_ids)

    def vertex_labels(self) -> Dict[VertexId, Label]:
        """Return a copy of the vertex → label mapping."""
        return dict(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once (ascending id order)."""
        edge_labels = self._edge_labels
        for vid in self._vertex_ids:
            for neighbor in self.adjacency[vid]:
                if vid < neighbor:
                    yield Edge(vid, neighbor, edge_labels.get((vid, neighbor)))

    def num_vertices(self) -> int:
        return len(self._vertex_ids)

    def num_edges(self) -> int:
        return self._num_edges

    def size(self) -> int:
        """The paper's |P|: the number of edges."""
        return self._num_edges

    def labels_used(self) -> Set[Label]:
        return set(self._labels.values())

    def label_histogram(self) -> Dict[Label, int]:
        histogram: Dict[Label, int] = {}
        for label in self._labels.values():
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    def is_connected(self) -> bool:
        if not self._vertex_ids:
            return True
        adjacency = self.adjacency
        start = self._vertex_ids[0]
        seen = {start}
        stack = [start]
        while stack:
            for neighbor in adjacency[stack.pop()]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._vertex_ids)

    def connected_components(self) -> List[Set[VertexId]]:
        adjacency = self.adjacency
        remaining = set(self._vertex_ids)
        components: List[Set[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                for neighbor in adjacency[stack.pop()]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(seen)
            remaining -= seen
        return components

    # ------------------------------------------------------------------ #
    # CSR-specific surface
    # ------------------------------------------------------------------ #
    def vertex_slot(self, vertex: VertexId) -> int:
        """Dense slot (row index into the arrays) of ``vertex``."""
        if self._slot_of is None:
            if 0 <= vertex < len(self._vertex_ids):
                return vertex
            raise KeyError(f"vertex {vertex} is not in the graph")
        return self._slot_of[vertex]

    def slot_vertex(self, slot: int) -> VertexId:
        """Vertex id occupying dense ``slot``."""
        return self._vertex_ids[slot]

    def memory_bytes(self) -> int:
        """Bytes held by the flat array columns (excludes the read caches).

        Diagnostic for benchmarks and docs: the CSR columns are the
        canonical storage, the dict caches trade memory back for pure-Python
        iteration speed and can be dropped/rebuilt at will.
        """
        total = self.indptr.itemsize * len(self.indptr)
        total += self.indices.itemsize * len(self.indices)
        total += self.label_codes.itemsize * len(self.label_codes)
        if self.edge_label_codes is not None:
            total += self.edge_label_codes.itemsize * len(self.edge_label_codes)
        return total

    # ------------------------------------------------------------------ #
    # mutators: rejected
    # ------------------------------------------------------------------ #
    add_vertex = _mutation_stub("add_vertex")
    add_edge = _mutation_stub("add_edge")
    add_labeled_path = _mutation_stub("add_labeled_path")
    remove_vertex = _mutation_stub("remove_vertex")
    remove_edge = _mutation_stub("remove_edge")

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self.adjacency

    def __len__(self) -> int:
        return len(self._vertex_ids)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._vertex_ids)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{name} |V|={self.num_vertices()} |E|={self.num_edges()} "
            f"bytes={self.memory_bytes()}>"
        )
