"""Text I/O, JSON records and content fingerprints for labeled graphs.

Three serialization surfaces are provided:

* **LG format** — the ``t # <id> / v <id> <label> / e <u> <v> [label]`` format
  used by gSpan-family tools.  ``read_lg``/``write_lg`` handle files that
  contain one or many graphs, including graphs with isolated labeled
  vertices, empty graphs inside a multi-graph file and the gSpan trailing
  ``t # -1`` end-of-file sentinel.  Labels containing whitespace (or ``%``)
  are percent-encoded so the space-delimited format stays lossless; labels
  are text on disk, so non-string labels round-trip as their ``str()`` form.
* **JSON records** — ``graph_to_record``/``graph_from_record`` produce plain
  dicts preserving vertex ids, labels and graph names exactly (used by the
  persistent pattern-index store, :mod:`repro.index.store`).
* **Fingerprints** — ``graph_fingerprint``/``dataset_fingerprint`` hash graph
  content (not object identity) so index entries can be keyed by the dataset
  they were mined from.

Datasets produced by :mod:`repro.datasets` can be persisted with these
helpers so the benchmark harness can cache expensive generations.
"""

from __future__ import annotations

import hashlib
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.graph.labeled_graph import Label, LabeledGraph

PathLike = Union[str, Path]

# Only the characters the writer must escape are ever decoded on read, so a
# legacy or third-party file whose labels happen to contain other
# percent-looking text (e.g. "%41") loads verbatim.
_LABEL_ESCAPES = {
    " ": "%20",
    "\t": "%09",
    "\n": "%0A",
    "\x0b": "%0B",
    "\x0c": "%0C",
    "\r": "%0D",
    "%": "%25",
}
_LABEL_UNESCAPES = {escape: char for char, escape in _LABEL_ESCAPES.items()}
_LABEL_ESCAPE_RE = re.compile("|".join(re.escape(e) for e in _LABEL_UNESCAPES))


def _encode_label_token(label: Label) -> str:
    """Render a label as a single whitespace-free LG token.

    Labels containing ASCII whitespace or ``%`` are escaped with the table
    above; everything else is written verbatim, so files for ordinary labels
    are byte-identical to the historical format.
    """
    text = str(label)
    if text == "":
        raise ValueError("LG format cannot represent empty-string labels")
    if "%" in text or any(ch.isspace() for ch in text):
        unsupported = [ch for ch in text if ch.isspace() and ch not in _LABEL_ESCAPES]
        if unsupported:
            raise ValueError(
                f"LG format cannot represent label {text!r}: "
                f"non-ASCII whitespace {unsupported!r}"
            )
        return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in text)
    return text


def _decode_label_token(token: str) -> str:
    if "%" not in token:
        return token
    return _LABEL_ESCAPE_RE.sub(lambda match: _LABEL_UNESCAPES[match.group(0)], token)


def write_lg(graphs: Union[LabeledGraph, Sequence[LabeledGraph]], path: PathLike) -> None:
    """Write one graph or a list of graphs in LG format."""
    if isinstance(graphs, LabeledGraph):
        graphs = [graphs]
    lines: List[str] = []
    for index, graph in enumerate(graphs):
        lines.append(f"t # {index}")
        id_map = {vertex: position for position, vertex in enumerate(graph.vertices())}
        for vertex in graph.vertices():
            lines.append(f"v {id_map[vertex]} {_encode_label_token(graph.label_of(vertex))}")
        for edge in graph.edges():
            if edge.label is None:
                lines.append(f"e {id_map[edge.u]} {id_map[edge.v]}")
            else:
                lines.append(
                    f"e {id_map[edge.u]} {id_map[edge.v]} {_encode_label_token(edge.label)}"
                )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_lg(path: PathLike) -> List[LabeledGraph]:
    """Read a (multi-)graph LG file written by :func:`write_lg` or gSpan tools.

    A trailing empty graph declared as ``t # -1`` (the gSpan end-of-file
    sentinel) is dropped; empty graphs with a real id are preserved.
    """
    graphs: List[LabeledGraph] = []
    declared_ids: List[str] = []
    current: LabeledGraph | None = None
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "t":
            current = LabeledGraph(name=f"graph-{len(graphs)}")
            graphs.append(current)
            declared_ids.append(parts[2] if len(parts) > 2 else "")
        elif parts[0] == "v":
            if current is None:
                raise ValueError("vertex line before any 't' line")
            if len(parts) < 3:
                raise ValueError(f"malformed vertex line: {raw_line!r}")
            current.add_vertex(int(parts[1]), _decode_label_token(parts[2]))
        elif parts[0] == "e":
            if current is None:
                raise ValueError("edge line before any 't' line")
            if len(parts) < 3:
                raise ValueError(f"malformed edge line: {raw_line!r}")
            label = _decode_label_token(parts[3]) if len(parts) > 3 else None
            current.add_edge(int(parts[1]), int(parts[2]), label)
        else:
            raise ValueError(f"unrecognised LG line: {raw_line!r}")
    if graphs and declared_ids[-1] == "-1" and graphs[-1].num_vertices() == 0:
        graphs.pop()
    return graphs


def graph_from_edge_list(
    rows: Iterable[Tuple[int, str, int, str]], name: str = ""
) -> LabeledGraph:
    """Build a graph from ``(u, label_u, v, label_v)`` rows."""
    graph = LabeledGraph(name=name)
    for u, label_u, v, label_v in rows:
        if not graph.has_vertex(u):
            graph.add_vertex(u, label_u)
        if not graph.has_vertex(v):
            graph.add_vertex(v, label_v)
        graph.add_edge(u, v)
    return graph


# --------------------------------------------------------------------- #
# JSON records (lossless, used by the persistent pattern-index store)
# --------------------------------------------------------------------- #
_JSON_LABEL_TYPES = (str, int, float, bool, type(None))


def _json_label(label: Label) -> Label:
    if isinstance(label, _JSON_LABEL_TYPES):
        return label
    raise TypeError(
        f"label {label!r} is not JSON-serialisable; "
        "JSON graph records support str/int/float/bool/None labels"
    )


def graph_to_record(graph: LabeledGraph) -> Dict:
    """Serialise a graph to a plain JSON-compatible dict.

    Unlike the LG text format this is lossless: vertex ids, label types
    (within JSON scalars), edge labels and the graph name are all preserved.
    """
    return {
        "name": graph.name,
        "vertices": [
            [vertex, _json_label(graph.label_of(vertex))] for vertex in graph.vertices()
        ],
        "edges": [
            [edge.u, edge.v, None if edge.label is None else _json_label(edge.label)]
            for edge in graph.edges()
        ],
    }


def graph_from_record(record: Dict) -> LabeledGraph:
    """Rebuild a graph from a :func:`graph_to_record` dict."""
    graph = LabeledGraph(name=record.get("name", ""))
    for vertex, label in record["vertices"]:
        graph.add_vertex(int(vertex), label)
    for u, v, label in record["edges"]:
        graph.add_edge(int(u), int(v), label)
    return graph


# --------------------------------------------------------------------- #
# content fingerprints (index-store keys)
# --------------------------------------------------------------------- #
def graph_fingerprint(graph: LabeledGraph) -> str:
    """A stable hex digest of the graph's *content* (vertices, labels, edges).

    Two graphs with identical vertex ids, labels and edges produce the same
    fingerprint regardless of insertion order or object identity; any edit
    (including via :class:`repro.core.database.GraphDelta`) changes it.  The
    graph name is deliberately excluded — it is presentation metadata.
    """
    digest = hashlib.sha256()
    for vertex in sorted(graph.vertices()):
        digest.update(f"v {vertex} {graph.label_of(vertex)!r}\n".encode("utf-8"))
    for u, v in sorted(edge.endpoints() for edge in graph.edges()):
        digest.update(f"e {u} {v} {graph.edge_label(u, v)!r}\n".encode("utf-8"))
    return digest.hexdigest()


def dataset_fingerprint(graphs: Union[LabeledGraph, Sequence[LabeledGraph]]) -> str:
    """Fingerprint of a whole dataset (one graph or an ordered graph database)."""
    if isinstance(graphs, LabeledGraph):
        graphs = [graphs]
    digest = hashlib.sha256()
    for graph in graphs:
        digest.update(graph_fingerprint(graph).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
