"""Text I/O for labeled graphs.

Two formats are supported:

* **LG format** — the ``t # <id> / v <id> <label> / e <u> <v> [label]`` format
  used by gSpan-family tools.  ``read_lg``/``write_lg`` handle files that
  contain one or many graphs.
* **Edge list** — a minimal ``u,label_u,v,label_v`` CSV-ish format handy for
  quick fixtures (``graph_from_edge_list``).

Datasets produced by :mod:`repro.datasets` can be persisted with these
helpers so the benchmark harness can cache expensive generations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.graph.labeled_graph import LabeledGraph

PathLike = Union[str, Path]


def write_lg(graphs: Union[LabeledGraph, Sequence[LabeledGraph]], path: PathLike) -> None:
    """Write one graph or a list of graphs in LG format."""
    if isinstance(graphs, LabeledGraph):
        graphs = [graphs]
    lines: List[str] = []
    for index, graph in enumerate(graphs):
        lines.append(f"t # {index}")
        id_map = {vertex: position for position, vertex in enumerate(graph.vertices())}
        for vertex in graph.vertices():
            lines.append(f"v {id_map[vertex]} {graph.label_of(vertex)}")
        for edge in graph.edges():
            if edge.label is None:
                lines.append(f"e {id_map[edge.u]} {id_map[edge.v]}")
            else:
                lines.append(f"e {id_map[edge.u]} {id_map[edge.v]} {edge.label}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_lg(path: PathLike) -> List[LabeledGraph]:
    """Read a (multi-)graph LG file written by :func:`write_lg` or gSpan tools."""
    graphs: List[LabeledGraph] = []
    current: LabeledGraph | None = None
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "t":
            current = LabeledGraph(name=f"graph-{len(graphs)}")
            graphs.append(current)
        elif parts[0] == "v":
            if current is None:
                raise ValueError("vertex line before any 't' line")
            if len(parts) < 3:
                raise ValueError(f"malformed vertex line: {raw_line!r}")
            current.add_vertex(int(parts[1]), parts[2])
        elif parts[0] == "e":
            if current is None:
                raise ValueError("edge line before any 't' line")
            if len(parts) < 3:
                raise ValueError(f"malformed edge line: {raw_line!r}")
            label = parts[3] if len(parts) > 3 else None
            current.add_edge(int(parts[1]), int(parts[2]), label)
        else:
            raise ValueError(f"unrecognised LG line: {raw_line!r}")
    return graphs


def graph_from_edge_list(
    rows: Iterable[Tuple[int, str, int, str]], name: str = ""
) -> LabeledGraph:
    """Build a graph from ``(u, label_u, v, label_v)`` rows."""
    graph = LabeledGraph(name=name)
    for u, label_u, v, label_v in rows:
        if not graph.has_vertex(u):
            graph.add_vertex(u, label_u)
        if not graph.has_vertex(v):
            graph.add_vertex(v, label_v)
        graph.add_edge(u, v)
    return graph
