"""Random labeled graph generators and pattern injection.

The paper's synthetic evaluation (Section 6.2) builds data graphs by

1. generating an Erdős–Rényi background graph ``G(n, p)`` whose vertices get
   uniform random labels from an alphabet of ``f`` labels, and
2. *injecting* hand-built skinny (or small) patterns into it a given number
   of times, each injection becoming one embedding of the pattern.

This module provides those two primitives plus generators for the pattern
shapes used throughout the evaluation: labeled paths (future canonical
diameters), skinny graphs (a backbone path plus bounded twigs) and small
random tree/graph patterns.

Every function takes an explicit ``seed`` or ``rng``; nothing touches the
global ``random`` state, so datasets are reproducible byte for byte.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import Label, LabeledGraph, VertexId


def _resolve_rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def default_labels(count: int) -> List[str]:
    """The label alphabet used by the synthetic datasets: ``L0 .. L{count-1}``."""
    return [f"L{i}" for i in range(count)]


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    num_labels: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    labels: Optional[Sequence[Label]] = None,
    name: str = "erdos-renyi",
) -> LabeledGraph:
    """Generate a labeled Erdős–Rényi graph with a target average degree.

    The paper parameterises its backgrounds by ``|V|``, average degree
    ``deg`` and label count ``f``; that maps to ``G(n, p)`` with
    ``p = deg / (n - 1)``.  Labels are drawn uniformly from ``labels`` (or a
    default alphabet of ``num_labels`` strings).
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if avg_degree < 0:
        raise ValueError("avg_degree must be non-negative")
    if num_labels <= 0 and labels is None:
        raise ValueError("num_labels must be positive")
    generator = _resolve_rng(seed, rng)
    alphabet = list(labels) if labels is not None else default_labels(num_labels)

    graph = LabeledGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, generator.choice(alphabet))

    if num_vertices <= 1:
        return graph
    probability = min(1.0, avg_degree / (num_vertices - 1))
    if probability <= 0:
        return graph

    # Geometric skipping (the standard O(n + m) G(n, p) sampler) keeps the
    # generator usable for the paper's larger scalability settings.
    import math

    log_q = math.log(1.0 - probability) if probability < 1.0 else None
    u, v = 1, -1
    while u < num_vertices:
        if probability >= 1.0:
            v += 1
        else:
            r = generator.random()
            v += 1 + int(math.log(1.0 - r) / log_q)
        while v >= u and u < num_vertices:
            v -= u
            u += 1
        if u < num_vertices:
            graph.add_edge(u, v)
    return graph


def random_labeled_path(
    length: int,
    num_labels: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    labels: Optional[Sequence[Label]] = None,
) -> LabeledGraph:
    """A path pattern with ``length`` edges and uniformly random labels."""
    if length < 0:
        raise ValueError("length must be non-negative")
    generator = _resolve_rng(seed, rng)
    alphabet = list(labels) if labels is not None else default_labels(num_labels)
    path = LabeledGraph(name=f"path-{length}")
    previous: Optional[VertexId] = None
    for vertex in range(length + 1):
        path.add_vertex(vertex, generator.choice(alphabet))
        if previous is not None:
            path.add_edge(previous, vertex)
        previous = vertex
    return path


def random_skinny_pattern(
    backbone_length: int,
    skinniness: int,
    num_vertices: int,
    num_labels: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    labels: Optional[Sequence[Label]] = None,
) -> LabeledGraph:
    """Generate an ``l``-long ``δ``-skinny pattern to inject into a background.

    The pattern has a backbone path of ``backbone_length`` edges; remaining
    vertices (up to ``num_vertices``) are attached as twigs whose distance to
    the backbone never exceeds ``skinniness``.  With ``skinniness == 0`` the
    pattern is exactly the backbone path.

    The construction attaches twig vertices to uniformly chosen *interior*
    backbone vertices (never the two endpoints) so the backbone remains a
    diameter-realising path of the generated pattern: hanging a twig of depth
    ``d ≤ δ`` off an interior vertex cannot create a vertex pair farther
    apart than the two backbone endpoints as long as
    ``2 * δ ≤ backbone_length``, which the generator enforces.
    """
    if backbone_length < 1:
        raise ValueError("backbone_length must be at least 1")
    if skinniness < 0:
        raise ValueError("skinniness must be non-negative")
    if num_vertices < backbone_length + 1:
        raise ValueError("num_vertices must cover the backbone")
    if skinniness > 0 and 2 * skinniness > backbone_length:
        raise ValueError(
            "2 * skinniness must not exceed backbone_length, otherwise twigs "
            "could extend the diameter beyond the backbone"
        )
    generator = _resolve_rng(seed, rng)
    alphabet = list(labels) if labels is not None else default_labels(num_labels)

    pattern = LabeledGraph(name=f"skinny-{backbone_length}-{skinniness}")
    backbone: List[VertexId] = []
    for vertex in range(backbone_length + 1):
        pattern.add_vertex(vertex, generator.choice(alphabet))
        backbone.append(vertex)
        if vertex > 0:
            pattern.add_edge(vertex - 1, vertex)

    extra = num_vertices - (backbone_length + 1)
    if extra > 0 and skinniness == 0:
        raise ValueError("cannot place extra vertices with skinniness 0")

    # Track each vertex's distance to the backbone so twigs respect δ and the
    # endpoints' eccentricity is never exceeded.
    level: Dict[VertexId, int] = {vertex: 0 for vertex in backbone}
    # Position along the backbone of the anchoring vertex (used to bound the
    # distance a twig vertex adds to either endpoint).
    anchor_position: Dict[VertexId, int] = {vertex: i for i, vertex in enumerate(backbone)}
    next_id = backbone_length + 1
    interior = backbone[1:-1] if backbone_length >= 2 else backbone

    attachable: List[VertexId] = list(interior)
    for _ in range(extra):
        candidates = [
            vertex
            for vertex in attachable
            if level[vertex] < skinniness
            and level[vertex] + 1 + min(
                anchor_position[vertex], backbone_length - anchor_position[vertex]
            )
            <= backbone_length
            and level[vertex] + 1
            + max(anchor_position[vertex], backbone_length - anchor_position[vertex])
            <= backbone_length
        ]
        if not candidates:
            break
        parent = generator.choice(candidates)
        vertex = next_id
        next_id += 1
        pattern.add_vertex(vertex, generator.choice(alphabet))
        pattern.add_edge(parent, vertex)
        level[vertex] = level[parent] + 1
        anchor_position[vertex] = anchor_position[parent]
        attachable.append(vertex)
    return pattern


def random_tree_pattern(
    num_vertices: int,
    num_labels: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    labels: Optional[Sequence[Label]] = None,
) -> LabeledGraph:
    """A small random labeled tree (uniform attachment), used as a "short pattern"."""
    if num_vertices < 1:
        raise ValueError("num_vertices must be at least 1")
    generator = _resolve_rng(seed, rng)
    alphabet = list(labels) if labels is not None else default_labels(num_labels)
    tree = LabeledGraph(name=f"tree-{num_vertices}")
    tree.add_vertex(0, generator.choice(alphabet))
    for vertex in range(1, num_vertices):
        parent = generator.randrange(vertex)
        tree.add_vertex(vertex, generator.choice(alphabet))
        tree.add_edge(parent, vertex)
    return tree


def inject_pattern(
    graph: LabeledGraph,
    pattern: LabeledGraph,
    copies: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    bridge_probability: float = 0.3,
) -> List[Dict[VertexId, VertexId]]:
    """Inject ``copies`` embeddings of ``pattern`` into ``graph`` in place.

    Each copy adds fresh vertices carrying the pattern's labels plus the
    pattern's edges, then connects the copy to the background with a small
    number of random bridge edges (with probability ``bridge_probability`` per
    copy vertex, at most one bridge each) so the copy is not an isolated
    component — mirroring the paper's observation that injected patterns
    interconnect with the background.

    Returns the list of pattern-vertex → data-vertex maps for the injected
    copies (useful as ground truth in effectiveness experiments).
    """
    if copies < 0:
        raise ValueError("copies must be non-negative")
    if not 0.0 <= bridge_probability <= 1.0:
        raise ValueError("bridge_probability must be within [0, 1]")
    generator = _resolve_rng(seed, rng)
    background_vertices = list(graph.vertices())
    injected_maps: List[Dict[VertexId, VertexId]] = []

    next_id = max(graph.vertices(), default=-1) + 1
    for _ in range(copies):
        mapping: Dict[VertexId, VertexId] = {}
        for pattern_vertex in pattern.vertices():
            graph.add_vertex(next_id, pattern.label_of(pattern_vertex))
            mapping[pattern_vertex] = next_id
            next_id += 1
        for edge in pattern.edges():
            graph.add_edge(mapping[edge.u], mapping[edge.v], edge.label)
        if background_vertices:
            for pattern_vertex in pattern.vertices():
                if generator.random() < bridge_probability:
                    anchor = generator.choice(background_vertices)
                    target = mapping[pattern_vertex]
                    if anchor != target and not graph.has_edge(anchor, target):
                        graph.add_edge(anchor, target)
        injected_maps.append(mapping)
    return injected_maps


def random_transaction_database(
    num_graphs: int,
    num_vertices: int,
    avg_degree: float,
    num_labels: int,
    seed: Optional[int] = None,
) -> List[LabeledGraph]:
    """A list of independent Erdős–Rényi labeled graphs (a graph-transaction DB)."""
    if num_graphs < 0:
        raise ValueError("num_graphs must be non-negative")
    generator = random.Random(seed)
    database: List[LabeledGraph] = []
    for index in range(num_graphs):
        database.append(
            erdos_renyi_graph(
                num_vertices,
                avg_degree,
                num_labels,
                rng=generator,
                name=f"transaction-{index}",
            )
        )
    return database
