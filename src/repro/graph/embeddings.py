"""Embeddings and support counting.

The paper works in the single-graph setting where the support of a pattern
``P`` is ``|E[P]|``, the number of distinct embeddings of ``P`` in ``G``
(Definition 8).  The graph-transaction setting ("can be easily derived",
Section 2) counts the number of transactions containing at least one
embedding.  Baseline miners that use other single-graph measures (MNI) can do
so through :func:`mni_support`.

``Embedding`` is an immutable pattern-vertex → data-vertex map.
``EmbeddingList`` is the bookkeeping structure pattern-growth miners carry
with each pattern so extension candidates can be generated from occurrences
instead of re-matching from scratch.  ``EmbeddingTable`` is the columnar
replacement the growth engines actually run on: one interned column layout
per pattern, one plain tuple per occurrence, and join-based extension in
place of per-embedding dict juggling.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.graph.labeled_graph import LabeledGraph, VertexId


@dataclass(frozen=True)
class Embedding:
    """A single occurrence of a pattern in a data graph.

    ``mapping`` sends pattern vertex ids to data-graph vertex ids;
    ``graph_index`` identifies the transaction when mining a graph database
    (always 0 in the single-graph setting).

    Examples
    --------
    >>> occurrence = Embedding.from_dict({0: 7, 1: 9})
    >>> occurrence.target_of(1)
    9
    >>> sorted(occurrence.image())
    [7, 9]
    >>> occurrence.extended(2, 4).as_dict() == {0: 7, 1: 9, 2: 4}
    True
    >>> occurrence.image_key() == (0, frozenset({7, 9}))
    True
    """

    mapping: Tuple[Tuple[VertexId, VertexId], ...]
    graph_index: int = 0

    @classmethod
    def from_dict(
        cls, mapping: Dict[VertexId, VertexId], graph_index: int = 0
    ) -> "Embedding":
        return cls(mapping=tuple(sorted(mapping.items())), graph_index=graph_index)

    def as_dict(self) -> Dict[VertexId, VertexId]:
        return dict(self.mapping)

    def image(self) -> FrozenSet[VertexId]:
        """The set of data-graph vertices covered by this embedding."""
        return frozenset(target for _, target in self.mapping)

    def image_key(self) -> Tuple[int, FrozenSet[VertexId]]:
        """Key identifying the *subgraph* occurrence (transaction + vertex set)."""
        return (self.graph_index, self.image())

    def target_of(self, pattern_vertex: VertexId) -> VertexId:
        for source, target in self.mapping:
            if source == pattern_vertex:
                return target
        raise KeyError(f"pattern vertex {pattern_vertex} is not mapped")

    def extended(
        self, pattern_vertex: VertexId, data_vertex: VertexId
    ) -> "Embedding":
        """Return a new embedding with one extra pattern vertex mapped."""
        mapping = self.as_dict()
        if pattern_vertex in mapping:
            raise KeyError(f"pattern vertex {pattern_vertex} already mapped")
        mapping[pattern_vertex] = data_vertex
        return Embedding.from_dict(mapping, self.graph_index)

    def __len__(self) -> int:
        return len(self.mapping)


class LazyEmbeddings(Sequence):
    """List-compatible view over a table's embeddings, materialised on demand.

    Emitted patterns keep the legacy ``List[Embedding]`` wire format, but in
    the growth loop nothing reads those objects until well after Stage 2 has
    finished (serialisation, analysis, result hashing).  This view defers
    :meth:`EmbeddingTable.to_embeddings` to the first access, so the
    per-pattern materialisation cost moves out of the timed mining path
    while every consumer still sees an immutable sequence of
    :class:`Embedding` objects — iteration, indexing, ``len`` and equality
    against plain lists all behave identically.

    >>> table = EmbeddingTable([0], rows=[(7,), (9,)], graph_ids=[0, 0])
    >>> view = LazyEmbeddings(table)
    >>> len(view), view[0].mapping
    (2, ((0, 7),))
    >>> view == table.to_embeddings()
    True
    """

    __slots__ = ("_table", "_items")

    def __init__(self, table: "EmbeddingTable") -> None:
        self._table: Optional["EmbeddingTable"] = table
        self._items: Optional[List[Embedding]] = None

    def _materialised(self) -> List[Embedding]:
        if self._items is None:
            self._items = self._table.to_embeddings()
            self._table = None  # the view owns nothing once materialised
        return self._items

    def __iter__(self) -> Iterator[Embedding]:
        return iter(self._materialised())

    def __len__(self) -> int:
        items = self._items
        if items is not None:
            return len(items)
        return len(self._table.graph_ids)

    def __getitem__(self, index):
        return self._materialised()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyEmbeddings):
            return self._materialised() == other._materialised()
        if isinstance(other, list):
            return self._materialised() == other
        return NotImplemented

    def __repr__(self) -> str:
        state = "materialised" if self._items is not None else "lazy"
        return f"<LazyEmbeddings n={len(self)} {state}>"


@dataclass
class EmbeddingList:
    """All known embeddings of one pattern, with cheap support queries."""

    embeddings: List[Embedding] = field(default_factory=list)

    def add(self, embedding: Embedding) -> None:
        self.embeddings.append(embedding)

    def __iter__(self) -> Iterator[Embedding]:
        return iter(self.embeddings)

    def __len__(self) -> int:
        return len(self.embeddings)

    def deduplicated(self) -> "EmbeddingList":
        """Keep one embedding per distinct occurrence (transaction, vertex set)."""
        seen: Set[Tuple[int, FrozenSet[VertexId]]] = set()
        kept: List[Embedding] = []
        for embedding in self.embeddings:
            key = embedding.image_key()
            if key in seen:
                continue
            seen.add(key)
            kept.append(embedding)
        return EmbeddingList(kept)

    def embedding_support(self) -> int:
        """|E[P]|: the number of distinct occurrences (single-graph support)."""
        return len({embedding.image_key() for embedding in self.embeddings})

    def transaction_support(self) -> int:
        """Number of distinct transactions containing at least one embedding."""
        return len({embedding.graph_index for embedding in self.embeddings})

    def transactions(self) -> Set[int]:
        return {embedding.graph_index for embedding in self.embeddings}

    def images(self) -> List[FrozenSet[VertexId]]:
        return [embedding.image() for embedding in self.embeddings]


# --------------------------------------------------------------------- #
# columnar embedding storage
# --------------------------------------------------------------------- #
#: Interned column layouts: every table over the same pattern-vertex tuple
#: shares one columns tuple and one vertex → position map.  Growth produces
#: thousands of short-lived tables whose layouts repeat constantly (the same
#: cluster re-derives the same vertex sets along many extension orders), so
#: interning removes the per-table dict build from the hot path.
_LAYOUT_INTERN: Dict[Tuple[VertexId, ...], Tuple[Tuple[VertexId, ...], Dict[VertexId, int]]] = {}


def _interned_layout(
    columns: Iterable[VertexId],
) -> Tuple[Tuple[VertexId, ...], Dict[VertexId, int]]:
    key = tuple(columns)
    layout = _LAYOUT_INTERN.get(key)
    if layout is None:
        layout = (key, {vertex: position for position, vertex in enumerate(key)})
        _LAYOUT_INTERN[key] = layout
    return layout


# --------------------------------------------------------------------- #
# row storage mode
# --------------------------------------------------------------------- #
#: How newly constructed tables store their occurrence rows.
#:
#: ``"array"`` (the default) packs the row data of each table into one flat
#: signed-64-bit arena (``array('q')``) — one machine word per mapped data
#: vertex, row-major, position-aligned with ``columns`` — plus a second
#: arena holding each row's sorted image key.  Derivations (:meth:`
#: EmbeddingTable.extended` / :meth:`EmbeddingTable.subset`) then append
#: integer codes and slice arenas; per-row Python tuples exist only for
#: tables something actually iterates, materialised lazily through the
#: ``rows`` property and cached.  ``"tuple"`` keeps the historical eager
#: ``List[Tuple[VertexId, ...]]`` representation.  Derived tables always
#: inherit their parent's storage, so toggling the mode mid-run never mixes
#: representations inside one derivation chain.  Tables whose data vertices
#: are not machine-word integers silently fall back to tuple storage.
_ROW_STORAGE_MODES = ("tuple", "array")


def _initial_row_storage() -> str:
    mode = os.environ.get("REPRO_ROW_STORAGE", "array")
    return mode if mode in _ROW_STORAGE_MODES else "array"


_row_storage = _initial_row_storage()


def set_row_storage(mode: str) -> str:
    """Select the storage for newly built tables; returns the previous mode.

    >>> previous = set_row_storage("tuple")
    >>> row_storage_mode()
    'tuple'
    >>> _ = set_row_storage(previous)
    """
    global _row_storage
    if mode not in _ROW_STORAGE_MODES:
        raise ValueError(
            f"unknown row storage mode {mode!r}; expected one of {_ROW_STORAGE_MODES}"
        )
    previous = _row_storage
    _row_storage = mode
    return previous


def row_storage_mode() -> str:
    """The storage mode newly constructed tables will use."""
    return _row_storage


class EmbeddingTable:
    """All embeddings of one pattern, stored column-major without dicts.

    ``columns`` names the pattern vertices in a fixed order; each occurrence
    is one ``rows`` entry — a tuple of data vertices, position-aligned with
    ``columns`` — tagged with the transaction index in ``graph_ids``.  Under
    the default ``"array"`` storage (:func:`set_row_storage`) the row data
    actually lives in one flat signed-64-bit arena per table, with the
    ``rows`` tuples materialised lazily on first access; ``"tuple"`` storage
    keeps the eager per-row tuples.  Compared to a ``List[Embedding]`` this
    representation

    * extends by **joining**: a new-vertex extension appends one column and
      materialises rows from recorded ``(row, data vertex)`` join pairs; an
      edge-closing extension keeps a subset of rows (by reference under
      tuple storage, by arena slice under array storage);
    * deduplicates occurrences through sorted-row image keys instead of
      per-embedding ``frozenset`` objects;
    * computes all three support measures lazily and caches them, so a
      support value is derived at most once per table.

    The legacy :class:`Embedding` objects remain the wire format — results
    and the index store round-trip through :meth:`to_embeddings` /
    :meth:`from_embeddings` unchanged.

    Examples
    --------
    Two occurrences of a one-edge pattern, extended by a join recording
    that row 0 can map a new pattern vertex ``2`` onto data vertex ``8``:

    >>> table = EmbeddingTable((0, 1), rows=[(5, 3), (6, 4)], graph_ids=[0, 1])
    >>> child = table.extended(2, [(0, 8)])
    >>> child.columns, child.rows
    ((0, 1, 2), [(5, 3, 8)])
    >>> child.rows[0][:2] == table.rows[0][:2]  # parent prefix shared
    True
    >>> table.embedding_support(), table.transaction_support()
    (2, 2)
    >>> EmbeddingTable.from_embeddings(table.to_embeddings()).rows == table.rows
    True
    """

    __slots__ = (
        "columns",
        "graph_ids",
        "_rows",
        "_arena",
        "_key_arena",
        "_position",
        "_row_keys",
        "_embedding_support",
        "_transaction_support",
        "_mni_support",
        "_prefix_cache",
    )

    def __init__(
        self,
        columns: Iterable[VertexId],
        rows: Optional[Iterable[Tuple[VertexId, ...]]] = None,
        graph_ids: Optional[Iterable[int]] = None,
    ) -> None:
        self.columns, self._position = _interned_layout(columns)
        row_list: List[Tuple[VertexId, ...]] = list(rows) if rows is not None else []
        self.graph_ids: List[int] = list(graph_ids) if graph_ids is not None else []
        if len(row_list) != len(self.graph_ids):
            raise ValueError("rows and graph_ids must have equal length")
        width = len(self.columns)
        for row in row_list:
            if len(row) != width:
                raise ValueError(
                    f"row {row!r} does not match the {width}-column layout"
                )
        self._rows: Optional[List[Tuple[VertexId, ...]]] = row_list
        self._arena: Optional[array] = None
        self._key_arena: Optional[array] = None
        if _row_storage == "array":
            arena = array("q")
            try:
                for row in row_list:
                    arena.extend(row)
            except (TypeError, OverflowError):
                pass  # non-machine-word vertex ids: stay on tuple storage
            else:
                self._arena = arena
        self._row_keys: Optional[List[Tuple[VertexId, ...]]] = None
        self._embedding_support: Optional[int] = None
        self._transaction_support: Optional[int] = None
        self._mni_support: Optional[int] = None
        self._prefix_cache: Optional[Dict[int, List[Tuple[VertexId, ...]]]] = None

    @property
    def rows(self) -> List[Tuple[VertexId, ...]]:
        """Per-row data-vertex tuples, position-aligned with ``columns``.

        Under tuple storage this is the list itself.  Under arena storage
        the tuples are materialised from the flat arena on first access and
        cached — derivations that die at a frequency gate (most of them)
        never pay for per-row tuple objects.
        """
        rows = self._rows
        if rows is None:
            arena = self._arena
            width = len(self.columns)
            if width == 0:
                rows = [()] * len(self.graph_ids)
            else:
                rows = [
                    tuple(arena[base : base + width])
                    for base in range(0, len(arena), width)
                ]
            self._rows = rows
        return rows

    @rows.setter
    def rows(self, value: Iterable[Tuple[VertexId, ...]]) -> None:
        # Direct assignment replaces any arena-backed storage outright.
        self._rows = list(value)
        self._arena = None
        self._key_arena = None

    def storage_mode(self) -> str:
        """This table's actual storage: ``"array"`` or ``"tuple"``."""
        return "array" if self._arena is not None else "tuple"

    # ------------------------------------------------------------------ #
    # construction bridges
    # ------------------------------------------------------------------ #
    @classmethod
    def from_embeddings(cls, embeddings: Iterable[Embedding]) -> "EmbeddingTable":
        """Build a table from legacy :class:`Embedding` objects.

        All embeddings must cover the same pattern-vertex domain; the column
        order is the (sorted) mapping order of the first embedding.
        """
        iterator = iter(embeddings)
        first = next(iterator, None)
        if first is None:
            return cls(())
        columns = tuple(source for source, _ in first.mapping)
        rows: List[Tuple[VertexId, ...]] = []
        graph_ids: List[int] = []
        for embedding in (first, *iterator):
            mapping = dict(embedding.mapping)
            if len(mapping) != len(columns):
                raise ValueError("embeddings cover different pattern-vertex sets")
            try:
                rows.append(tuple(mapping[column] for column in columns))
            except KeyError:
                raise ValueError(
                    "embeddings cover different pattern-vertex sets"
                ) from None
            graph_ids.append(embedding.graph_index)
        return cls(columns, rows, graph_ids)

    @classmethod
    def from_path_occurrences(
        cls,
        occurrences: Iterable[Tuple[int, Tuple[VertexId, ...]]],
        length: int,
    ) -> "EmbeddingTable":
        """Build the level-0 table straight from a ``PathPattern``'s occurrences.

        Pattern vertices of a canonical diameter are ``0 .. length`` by
        convention, which is exactly the occurrence tuple order — no
        :class:`Embedding` objects are materialised.
        """
        rows: List[Tuple[VertexId, ...]] = []
        graph_ids: List[int] = []
        for graph_index, vertices in occurrences:
            rows.append(tuple(vertices))
            graph_ids.append(graph_index)
        return cls(range(length + 1), rows, graph_ids)

    def to_embeddings(self) -> List[Embedding]:
        """Materialise legacy :class:`Embedding` objects (the wire format).

        ``Embedding.mapping`` is sorted by pattern vertex id; the sort
        permutation depends only on the (shared, interned) column layout, so
        it is computed once per call and applied per row instead of sorting
        every row's pairs.
        """
        columns = self.columns
        order = sorted(range(len(columns)), key=columns.__getitem__)
        if order == list(range(len(columns))):
            return [
                Embedding(mapping=tuple(zip(columns, row)), graph_index=graph_index)
                for graph_index, row in zip(self.graph_ids, self.rows)
            ]
        ordered_columns = [columns[position] for position in order]
        return [
            Embedding(
                mapping=tuple(zip(ordered_columns, (row[p] for p in order))),
                graph_index=graph_index,
            )
            for graph_index, row in zip(self.graph_ids, self.rows)
        ]

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.graph_ids)

    def __iter__(self) -> Iterator[Embedding]:
        return iter(self.to_embeddings())

    def position_of(self, pattern_vertex: VertexId) -> int:
        """Column index of ``pattern_vertex`` (KeyError if unmapped)."""
        return self._position[pattern_vertex]

    def row_keys(self) -> List[Tuple[VertexId, ...]]:
        """Per-row sorted data-vertex tuples (the canonical image forms).

        Computed once and cached — and, crucially, **propagated** instead of
        recomputed along derivations: :meth:`extended` inserts the joined
        vertex into the parent's already-sorted key with one bisect, and
        :meth:`subset` selects parent keys by index.  Since every frequency
        gate touches the keys (embedding support is their distinct count),
        growth sorts each row once at the cluster root and never again.

        Examples
        --------
        >>> table = EmbeddingTable((0, 1), [(5, 3)], [0])
        >>> table.row_keys()
        [(3, 5)]
        >>> table.extended(2, [(0, 4)]).row_keys()
        [(3, 4, 5)]
        """
        keys = self._row_keys
        if keys is None:
            key_arena = self._key_arena
            if key_arena is not None:
                width = len(self.columns)
                if width == 0:
                    keys = [()] * len(self.graph_ids)
                else:
                    keys = [
                        tuple(key_arena[base : base + width])
                        for base in range(0, len(key_arena), width)
                    ]
            else:
                keys = [tuple(sorted(row)) for row in self.rows]
            self._row_keys = keys
        return keys

    def image_keys(self) -> Set[Tuple[int, Tuple[VertexId, ...]]]:
        """Distinct occurrence keys: (transaction, sorted data-vertex tuple).

        Sorted tuples replace the historical per-embedding ``frozenset``
        images: embeddings are injective, so the sorted tuple is a canonical
        form of the image set and hashes faster than building a frozenset.
        """
        return set(zip(self.graph_ids, self.row_keys()))

    def prefixes(self, width: int) -> List[Tuple[VertexId, ...]]:
        """Per-row ``row[:width]`` tuples, computed once and cached.

        The growth engine keys its probe caches and diameter balls by each
        row's diameter images — the first ``D(P) + 1`` row entries — and
        consults them once per candidate probe; caching the slices turns the
        repeated per-probe tuple copies into one list build per table.  Like
        the lazy support measures, the cache assumes rows are not mutated
        after the first query (tables are built, then read).
        """
        cache = self._prefix_cache
        if cache is None:
            cache = self._prefix_cache = {}
        slices = cache.get(width)
        if slices is None:
            slices = cache[width] = [row[:width] for row in self.rows]
        return slices

    def copy(self) -> "EmbeddingTable":
        clone = EmbeddingTable(self.columns)
        clone.graph_ids = list(self.graph_ids)
        clone._rows = None if self._rows is None else list(self._rows)
        clone._arena = None if self._arena is None else array("q", self._arena)
        clone._key_arena = (
            None if self._key_arena is None else array("q", self._key_arena)
        )
        if self._row_keys is not None:
            clone._row_keys = list(self._row_keys)
        return clone

    # ------------------------------------------------------------------ #
    # join-based derivation
    # ------------------------------------------------------------------ #
    def extended(
        self,
        new_vertex: VertexId,
        join_pairs: Iterable[Tuple[int, VertexId]],
    ) -> "EmbeddingTable":
        """One more column, rows joined from ``(row index, data vertex)`` pairs.

        This is the extension join: the caller recorded, while scanning this
        table's adjacency, which parent rows reach which data vertices; the
        new table is assembled from those deltas without re-matching any
        embedding.  When this table's sorted :meth:`row_keys` are already
        materialised (every table that passed a frequency gate has them),
        the child's keys are derived in the same pass by bisect insertion.
        """
        table = EmbeddingTable(self.columns + (new_vertex,))
        graph_ids = self.graph_ids
        append_gid = table.graph_ids.append
        arena = self._arena
        if arena is not None:
            # Arena storage: append integer codes, slice the parent arena.
            # The child's sorted key is the parent's with one bisect
            # insertion — done directly on the flat key arena when the
            # parent has one, else on its materialised key tuples.
            width = len(self.columns)
            table._rows = None
            table._arena = child_arena = array("q")
            key_arena = self._key_arena
            parent_keys = self._row_keys if key_arena is None else None
            if key_arena is not None:
                table._key_arena = child_keys = array("q")
                for row_index, data_vertex in join_pairs:
                    base = row_index * width
                    stop = base + width
                    child_arena.extend(arena[base:stop])
                    child_arena.append(data_vertex)
                    append_gid(graph_ids[row_index])
                    position = bisect_left(key_arena, data_vertex, base, stop)
                    child_keys.extend(key_arena[base:position])
                    child_keys.append(data_vertex)
                    child_keys.extend(key_arena[position:stop])
            elif parent_keys is not None:
                table._key_arena = child_keys = array("q")
                for row_index, data_vertex in join_pairs:
                    base = row_index * width
                    child_arena.extend(arena[base : base + width])
                    child_arena.append(data_vertex)
                    append_gid(graph_ids[row_index])
                    key = parent_keys[row_index]
                    position = bisect_left(key, data_vertex)
                    child_keys.extend(key[:position])
                    child_keys.append(data_vertex)
                    child_keys.extend(key[position:])
            else:
                for row_index, data_vertex in join_pairs:
                    base = row_index * width
                    child_arena.extend(arena[base : base + width])
                    child_arena.append(data_vertex)
                    append_gid(graph_ids[row_index])
            return table

        table._arena = None  # derived tables inherit the parent's storage
        rows = self.rows
        append_row = table.rows.append
        parent_keys = self._row_keys
        if parent_keys is None:
            for row_index, data_vertex in join_pairs:
                append_row(rows[row_index] + (data_vertex,))
                append_gid(graph_ids[row_index])
        else:
            keys: List[Tuple[VertexId, ...]] = []
            append_key = keys.append
            for row_index, data_vertex in join_pairs:
                append_row(rows[row_index] + (data_vertex,))
                append_gid(graph_ids[row_index])
                key = parent_keys[row_index]
                position = bisect_left(key, data_vertex)
                append_key(key[:position] + (data_vertex,) + key[position:])
            table._row_keys = keys
        return table

    def subset(self, row_indices: Iterable[int]) -> "EmbeddingTable":
        """The sub-table of ``row_indices`` — row tuples shared, not copied.

        Materialised :meth:`row_keys` are selected through by index, so an
        edge-closing extension (same vertex set, fewer rows) never re-sorts.
        """
        table = EmbeddingTable(self.columns)
        graph_ids = self.graph_ids
        arena = self._arena
        if arena is not None:
            row_indices = list(row_indices)
            width = len(self.columns)
            rows = self._rows  # select materialised tuples through if present
            table._rows = None if rows is None else []
            table._arena = child_arena = array("q")
            key_arena = self._key_arena
            parent_keys = self._row_keys
            if key_arena is not None:
                table._key_arena = child_keys = array("q")
            for row_index in row_indices:
                base = row_index * width
                child_arena.extend(arena[base : base + width])
                table.graph_ids.append(graph_ids[row_index])
                if rows is not None:
                    table._rows.append(rows[row_index])
                if key_arena is not None:
                    child_keys.extend(key_arena[base : base + width])
            if key_arena is None and parent_keys is not None:
                table._row_keys = [parent_keys[i] for i in row_indices]
            return table

        table._arena = None  # derived tables inherit the parent's storage
        rows = self.rows
        parent_keys = self._row_keys
        if parent_keys is None:
            for row_index in row_indices:
                table.rows.append(rows[row_index])
                table.graph_ids.append(graph_ids[row_index])
        else:
            keys: List[Tuple[VertexId, ...]] = []
            for row_index in row_indices:
                table.rows.append(rows[row_index])
                table.graph_ids.append(graph_ids[row_index])
                keys.append(parent_keys[row_index])
            table._row_keys = keys
        return table

    # ------------------------------------------------------------------ #
    # lazy support measures
    # ------------------------------------------------------------------ #
    def embedding_support(self) -> int:
        """|E[P]|: distinct (transaction, image) occurrences, cached.

        Counted by a merge-style scan over the sorted ``(transaction, image
        key)`` pairs — adjacent-distinct boundaries after one sort — instead
        of hashing every row key into a set (:meth:`image_keys` remains as
        the hashing reference path, pinned against this counter by the
        differential tests).  Row keys are per-row sorted tuples, so the
        lexicographic pair order groups duplicate occurrences adjacently and
        the scan is exact.  Under arena storage the image keys are compared
        as fixed-stride byte slices of the flat key arena — no per-row tuple
        is ever built for a table that dies at this gate.
        """
        if self._embedding_support is None:
            key_arena = self._key_arena
            if key_arena is not None and self._row_keys is None:
                width = len(self.columns)
                if width == 0:
                    self._embedding_support = len(set(self.graph_ids))
                    return self._embedding_support
                raw = key_arena.tobytes()
                stride = width * key_arena.itemsize
                pairs = sorted(
                    zip(
                        self.graph_ids,
                        (
                            raw[base : base + stride]
                            for base in range(0, len(raw), stride)
                        ),
                    )
                )
            else:
                pairs = sorted(zip(self.graph_ids, self.row_keys()))
            count = 0
            previous = None
            for pair in pairs:
                if pair != previous:
                    previous = pair
                    count += 1
            self._embedding_support = count
        return self._embedding_support

    def transaction_support(self) -> int:
        """Distinct transactions with at least one row, cached."""
        if self._transaction_support is None:
            self._transaction_support = len(set(self.graph_ids))
        return self._transaction_support

    def transactions(self) -> Set[int]:
        return set(self.graph_ids)

    def mni_support(self) -> int:
        """Minimum-image support: per-column distinct images, cached."""
        if self._mni_support is None:
            if not self.graph_ids or not self.columns:
                self._mni_support = 0
            else:
                graph_ids = self.graph_ids
                self._mni_support = min(
                    len({
                        (graph_index, row[position])
                        for graph_index, row in zip(graph_ids, self.rows)
                    })
                    for position in range(len(self.columns))
                )
        return self._mni_support

    def __repr__(self) -> str:
        return (
            f"<EmbeddingTable columns={len(self.columns)} rows={len(self.graph_ids)}>"
        )


def embeddings_from_maps(
    maps: Iterable[Dict[VertexId, VertexId]], graph_index: int = 0
) -> EmbeddingList:
    """Wrap raw vertex maps (e.g. from the isomorphism module) into an EmbeddingList."""
    collection = EmbeddingList()
    for mapping in maps:
        collection.add(Embedding.from_dict(mapping, graph_index))
    return collection


def mni_support(
    pattern: LabeledGraph, embeddings: Sequence[Embedding]
) -> int:
    """Minimum-image based (MNI) support of a pattern in a single graph.

    MNI is the standard anti-monotone single-graph support: for each pattern
    vertex count the distinct data vertices it maps to across all embeddings
    and take the minimum.  It is provided for the baselines (MoSS-style
    miners) and for harmonised comparisons; SkinnyMine itself follows the
    paper and counts embeddings.

    Examples
    --------
    >>> from repro.graph.labeled_graph import build_graph
    >>> pattern = build_graph({0: "a", 1: "b"}, [(0, 1)])
    >>> occurrences = [Embedding.from_dict({0: 5, 1: 3}),
    ...                Embedding.from_dict({0: 5, 1: 4})]
    >>> mni_support(pattern, occurrences)  # vertex 0 has one image, vertex 1 two
    1
    >>> embedding_support(occurrences), transaction_support(occurrences)
    (2, 1)
    """
    if pattern.num_vertices() == 0:
        return 0
    images: Dict[VertexId, Set[Tuple[int, VertexId]]] = {
        vertex: set() for vertex in pattern.vertices()
    }
    for embedding in embeddings:
        for source, target in embedding.mapping:
            images[source].add((embedding.graph_index, target))
    if not embeddings:
        return 0
    return min(len(targets) for targets in images.values())


def transaction_support(embeddings: Sequence[Embedding]) -> int:
    """Number of distinct transactions covered by ``embeddings``."""
    return len({embedding.graph_index for embedding in embeddings})


def embedding_support(embeddings: Sequence[Embedding]) -> int:
    """Number of distinct occurrences (transaction, vertex-image) pairs."""
    return len({embedding.image_key() for embedding in embeddings})


def path_embedding(
    path_pattern_vertices: Sequence[VertexId],
    data_path: Sequence[VertexId],
    graph_index: int = 0,
) -> Embedding:
    """Build the embedding mapping a pattern path onto a data-graph path.

    The two sequences must have equal length; position ``i`` of the pattern
    path is mapped to position ``i`` of the data path.
    """
    if len(path_pattern_vertices) != len(data_path):
        raise ValueError("pattern path and data path must have the same length")
    mapping = dict(zip(path_pattern_vertices, data_path))
    if len(mapping) != len(path_pattern_vertices):
        raise ValueError("pattern path vertices must be distinct")
    if len(set(data_path)) != len(data_path):
        raise ValueError("data path vertices must be distinct")
    return Embedding.from_dict(mapping, graph_index)
