"""Embeddings and support counting.

The paper works in the single-graph setting where the support of a pattern
``P`` is ``|E[P]|``, the number of distinct embeddings of ``P`` in ``G``
(Definition 8).  The graph-transaction setting ("can be easily derived",
Section 2) counts the number of transactions containing at least one
embedding.  Baseline miners that use other single-graph measures (MNI) can do
so through :func:`mni_support`.

``Embedding`` is an immutable pattern-vertex → data-vertex map.
``EmbeddingList`` is the bookkeeping structure pattern-growth miners carry
with each pattern so extension candidates can be generated from occurrences
instead of re-matching from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph, VertexId


@dataclass(frozen=True)
class Embedding:
    """A single occurrence of a pattern in a data graph.

    ``mapping`` sends pattern vertex ids to data-graph vertex ids;
    ``graph_index`` identifies the transaction when mining a graph database
    (always 0 in the single-graph setting).
    """

    mapping: Tuple[Tuple[VertexId, VertexId], ...]
    graph_index: int = 0

    @classmethod
    def from_dict(
        cls, mapping: Dict[VertexId, VertexId], graph_index: int = 0
    ) -> "Embedding":
        return cls(mapping=tuple(sorted(mapping.items())), graph_index=graph_index)

    def as_dict(self) -> Dict[VertexId, VertexId]:
        return dict(self.mapping)

    def image(self) -> FrozenSet[VertexId]:
        """The set of data-graph vertices covered by this embedding."""
        return frozenset(target for _, target in self.mapping)

    def image_key(self) -> Tuple[int, FrozenSet[VertexId]]:
        """Key identifying the *subgraph* occurrence (transaction + vertex set)."""
        return (self.graph_index, self.image())

    def target_of(self, pattern_vertex: VertexId) -> VertexId:
        for source, target in self.mapping:
            if source == pattern_vertex:
                return target
        raise KeyError(f"pattern vertex {pattern_vertex} is not mapped")

    def extended(
        self, pattern_vertex: VertexId, data_vertex: VertexId
    ) -> "Embedding":
        """Return a new embedding with one extra pattern vertex mapped."""
        mapping = self.as_dict()
        if pattern_vertex in mapping:
            raise KeyError(f"pattern vertex {pattern_vertex} already mapped")
        mapping[pattern_vertex] = data_vertex
        return Embedding.from_dict(mapping, self.graph_index)

    def __len__(self) -> int:
        return len(self.mapping)


@dataclass
class EmbeddingList:
    """All known embeddings of one pattern, with cheap support queries."""

    embeddings: List[Embedding] = field(default_factory=list)

    def add(self, embedding: Embedding) -> None:
        self.embeddings.append(embedding)

    def __iter__(self) -> Iterator[Embedding]:
        return iter(self.embeddings)

    def __len__(self) -> int:
        return len(self.embeddings)

    def deduplicated(self) -> "EmbeddingList":
        """Keep one embedding per distinct occurrence (transaction, vertex set)."""
        seen: Set[Tuple[int, FrozenSet[VertexId]]] = set()
        kept: List[Embedding] = []
        for embedding in self.embeddings:
            key = embedding.image_key()
            if key in seen:
                continue
            seen.add(key)
            kept.append(embedding)
        return EmbeddingList(kept)

    def embedding_support(self) -> int:
        """|E[P]|: the number of distinct occurrences (single-graph support)."""
        return len({embedding.image_key() for embedding in self.embeddings})

    def transaction_support(self) -> int:
        """Number of distinct transactions containing at least one embedding."""
        return len({embedding.graph_index for embedding in self.embeddings})

    def transactions(self) -> Set[int]:
        return {embedding.graph_index for embedding in self.embeddings}

    def images(self) -> List[FrozenSet[VertexId]]:
        return [embedding.image() for embedding in self.embeddings]


def embeddings_from_maps(
    maps: Iterable[Dict[VertexId, VertexId]], graph_index: int = 0
) -> EmbeddingList:
    """Wrap raw vertex maps (e.g. from the isomorphism module) into an EmbeddingList."""
    collection = EmbeddingList()
    for mapping in maps:
        collection.add(Embedding.from_dict(mapping, graph_index))
    return collection


def mni_support(
    pattern: LabeledGraph, embeddings: Sequence[Embedding]
) -> int:
    """Minimum-image based (MNI) support of a pattern in a single graph.

    MNI is the standard anti-monotone single-graph support: for each pattern
    vertex count the distinct data vertices it maps to across all embeddings
    and take the minimum.  It is provided for the baselines (MoSS-style
    miners) and for harmonised comparisons; SkinnyMine itself follows the
    paper and counts embeddings.
    """
    if pattern.num_vertices() == 0:
        return 0
    images: Dict[VertexId, Set[Tuple[int, VertexId]]] = {
        vertex: set() for vertex in pattern.vertices()
    }
    for embedding in embeddings:
        for source, target in embedding.mapping:
            images[source].add((embedding.graph_index, target))
    if not embeddings:
        return 0
    return min(len(targets) for targets in images.values())


def transaction_support(embeddings: Sequence[Embedding]) -> int:
    """Number of distinct transactions covered by ``embeddings``."""
    return len({embedding.graph_index for embedding in embeddings})


def embedding_support(embeddings: Sequence[Embedding]) -> int:
    """Number of distinct occurrences (transaction, vertex-image) pairs."""
    return len({embedding.image_key() for embedding in embeddings})


def path_embedding(
    path_pattern_vertices: Sequence[VertexId],
    data_path: Sequence[VertexId],
    graph_index: int = 0,
) -> Embedding:
    """Build the embedding mapping a pattern path onto a data-graph path.

    The two sequences must have equal length; position ``i`` of the pattern
    path is mapped to position ``i`` of the data path.
    """
    if len(path_pattern_vertices) != len(data_path):
        raise ValueError("pattern path and data path must have the same length")
    mapping = dict(zip(path_pattern_vertices, data_path))
    if len(mapping) != len(path_pattern_vertices):
        raise ValueError("pattern path vertices must be distinct")
    if len(set(data_path)) != len(data_path):
        raise ValueError("data path vertices must be distinct")
    return Embedding.from_dict(mapping, graph_index)
