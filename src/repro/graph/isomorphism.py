"""Label-aware (sub)graph isomorphism and embedding enumeration.

Three operations are needed by the miners:

* ``are_isomorphic(g1, g2)`` — exact labeled graph isomorphism
  (Definition 1 in the paper), used to deduplicate patterns.
* ``find_subgraph_embeddings(pattern, graph)`` — enumerate embeddings of a
  pattern in a data graph.  An embedding of ``P`` in ``G`` is a subgraph
  ``G' ⊆ G`` with ``P =_L G'`` (Section 2); we return the witnessing vertex
  maps.  Support in the single-graph setting is ``|E[P]|``, the number of
  distinct embeddings (distinct vertex-image sets).
* ``find_automorphisms(g)`` — automorphism group of a pattern, used to avoid
  counting symmetric matches as distinct embeddings.

The matcher is a VF2-style backtracking search specialised for small pattern
graphs (the patterns the miners grow are tens of vertices at most) matched
into a potentially much larger data graph.  Candidate vertices are filtered by
label, degree and neighbourhood-connectivity before recursing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph, VertexId

VertexMap = Dict[VertexId, VertexId]


def _match_order(pattern: LabeledGraph) -> List[VertexId]:
    """Choose a matching order that keeps the partial pattern connected.

    Start from a vertex with the rarest label/highest degree and grow a
    BFS-like frontier; each subsequent vertex is adjacent to an already
    ordered one whenever the pattern is connected, which lets the matcher
    prune by connectivity at every step.
    """
    if pattern.num_vertices() == 0:
        return []
    histogram = pattern.label_histogram()

    def start_key(vertex: VertexId) -> Tuple[int, int, int]:
        return (histogram[pattern.label_of(vertex)], -pattern.degree(vertex), vertex)

    # The selection criteria (most ordered neighbours, then degree, then
    # smallest id) are a total order, so maintaining the ordered-neighbour
    # counts incrementally — one bump per edge into the prefix — produces
    # exactly the order the historical per-step set intersections did, minus
    # their quadratic cost (this runs once per isomorphism test).
    remaining: Set[VertexId] = set(pattern.vertices())
    order: List[VertexId] = []
    attached_count: Dict[VertexId, int] = {}
    while remaining:
        if attached_count:
            nxt = max(
                attached_count,
                key=lambda v: (attached_count[v], pattern.degree(v), -v),
            )
            del attached_count[nxt]
        else:
            nxt = min(remaining, key=start_key)
        order.append(nxt)
        remaining.discard(nxt)
        for neighbor in pattern.neighbors(nxt):
            if neighbor in remaining:
                attached_count[neighbor] = attached_count.get(neighbor, 0) + 1
    return order


def _candidate_targets(
    pattern: LabeledGraph,
    graph: LabeledGraph,
    pattern_vertex: VertexId,
    mapping: VertexMap,
    used_targets: Set[VertexId],
    anchors: Optional[Dict[VertexId, VertexId]],
) -> Iterator[VertexId]:
    """Yield data-graph vertices that could host ``pattern_vertex``."""
    if anchors and pattern_vertex in anchors:
        forced = anchors[pattern_vertex]
        if forced not in used_targets and graph.has_vertex(forced):
            yield forced
        return

    label = pattern.label_of(pattern_vertex)
    mapped_neighbors = [
        mapping[p_neighbor]
        for p_neighbor in pattern.neighbors(pattern_vertex)
        if p_neighbor in mapping
    ]
    if mapped_neighbors:
        # Candidates must be common neighbours of all already-mapped
        # pattern-neighbours: intersect starting from the smallest set.
        neighbor_sets = sorted(
            (graph.neighbors(g_vertex) for g_vertex in mapped_neighbors), key=len
        )
        candidates: Set[VertexId] = set(neighbor_sets[0])
        for other in neighbor_sets[1:]:
            candidates &= other
            if not candidates:
                return
    else:
        candidates = set(graph.vertices())

    degree_needed = pattern.degree(pattern_vertex)
    for target in candidates:
        if target in used_targets:
            continue
        if graph.label_of(target) != label:
            continue
        if graph.degree(target) < degree_needed:
            continue
        yield target


def _edges_compatible(
    pattern: LabeledGraph,
    graph: LabeledGraph,
    pattern_vertex: VertexId,
    target: VertexId,
    mapping: VertexMap,
    induced: bool,
) -> bool:
    """Check edge consistency of mapping ``pattern_vertex -> target``."""
    for p_neighbor in pattern.neighbors(pattern_vertex):
        if p_neighbor in mapping:
            g_neighbor = mapping[p_neighbor]
            if not graph.has_edge(target, g_neighbor):
                return False
            p_label = pattern.edge_label(pattern_vertex, p_neighbor)
            if p_label is not None and graph.edge_label(target, g_neighbor) != p_label:
                return False
    if induced:
        # For induced matching, non-edges of the pattern must map to non-edges.
        for p_vertex, g_vertex in mapping.items():
            if p_vertex == pattern_vertex:
                continue
            if not pattern.has_edge(pattern_vertex, p_vertex) and graph.has_edge(
                target, g_vertex
            ):
                return False
    return True


def _search(
    pattern: LabeledGraph,
    graph: LabeledGraph,
    order: Sequence[VertexId],
    index: int,
    mapping: VertexMap,
    used_targets: Set[VertexId],
    induced: bool,
    anchors: Optional[Dict[VertexId, VertexId]],
) -> Iterator[VertexMap]:
    if index == len(order):
        yield dict(mapping)
        return
    pattern_vertex = order[index]
    for target in _candidate_targets(
        pattern, graph, pattern_vertex, mapping, used_targets, anchors
    ):
        if not _edges_compatible(pattern, graph, pattern_vertex, target, mapping, induced):
            continue
        mapping[pattern_vertex] = target
        used_targets.add(target)
        yield from _search(
            pattern, graph, order, index + 1, mapping, used_targets, induced, anchors
        )
        used_targets.discard(target)
        del mapping[pattern_vertex]


def iter_subgraph_embeddings(
    pattern: LabeledGraph,
    graph: LabeledGraph,
    induced: bool = False,
    anchors: Optional[Dict[VertexId, VertexId]] = None,
) -> Iterator[VertexMap]:
    """Lazily yield every vertex map witnessing ``pattern`` inside ``graph``.

    Parameters
    ----------
    pattern:
        The (small) pattern graph.
    graph:
        The data graph.
    induced:
        If True, require an induced subgraph (pattern non-edges map to
        non-edges).  Frequent-subgraph mining uses non-induced matching,
        which is the default.
    anchors:
        Optional partial assignment ``pattern vertex -> data vertex`` that
        every returned embedding must respect.  Used by the incremental
        extension code to re-match around known embeddings only.

    Notes
    -----
    Distinct automorphic images are yielded separately; callers that need the
    paper's |E[P]| (distinct subgraphs, not distinct maps) should deduplicate
    by vertex-image frozenset — `find_subgraph_embeddings` does this.
    """
    if pattern.num_vertices() == 0:
        return
    if pattern.num_vertices() > graph.num_vertices():
        return
    if pattern.num_edges() > graph.num_edges():
        return
    pattern_labels = pattern.label_histogram()
    graph_labels = graph.label_histogram()
    for label, count in pattern_labels.items():
        if graph_labels.get(label, 0) < count:
            return
    order = _match_order(pattern)
    if anchors:
        unknown = set(anchors) - set(pattern.vertices())
        if unknown:
            raise KeyError(f"anchor vertices not in pattern: {sorted(unknown)}")
        # Put anchored vertices first so contradictions are found immediately.
        anchored = [v for v in order if v in anchors]
        free = [v for v in order if v not in anchors]
        order = anchored + free
    yield from _search(pattern, graph, order, 0, {}, set(), induced, anchors)


def find_subgraph_embeddings(
    pattern: LabeledGraph,
    graph: LabeledGraph,
    induced: bool = False,
    max_embeddings: Optional[int] = None,
    distinct_images: bool = True,
) -> List[VertexMap]:
    """Return embeddings of ``pattern`` in ``graph`` as vertex maps.

    With ``distinct_images=True`` (default) at most one witnessing map is kept
    per distinct vertex-image set, matching the paper's embedding count
    |E[P]|; with False, all automorphic variants are returned.
    ``max_embeddings`` caps the search (useful when only "support >= sigma"
    is needed).
    """
    embeddings: List[VertexMap] = []
    seen_images: Set[FrozenSet[VertexId]] = set()
    for mapping in iter_subgraph_embeddings(pattern, graph, induced=induced):
        if distinct_images:
            image = frozenset(mapping.values())
            if image in seen_images:
                continue
            seen_images.add(image)
        embeddings.append(mapping)
        if max_embeddings is not None and len(embeddings) >= max_embeddings:
            break
    return embeddings


def is_subgraph_isomorphic(pattern: LabeledGraph, graph: LabeledGraph) -> bool:
    """True if ``pattern`` occurs at least once in ``graph`` (non-induced)."""
    for _ in iter_subgraph_embeddings(pattern, graph):
        return True
    return False


def are_isomorphic(graph_a: LabeledGraph, graph_b: LabeledGraph) -> bool:
    """Labeled graph isomorphism (Definition 1).

    Cheap invariants (vertex/edge counts, label histograms, sorted degree
    sequences) are compared before falling back to the exact matcher.
    """
    if graph_a.num_vertices() != graph_b.num_vertices():
        return False
    if graph_a.num_edges() != graph_b.num_edges():
        return False
    if graph_a.label_histogram() != graph_b.label_histogram():
        return False
    degrees_a = sorted(
        (graph_a.label_of(v), graph_a.degree(v)) for v in graph_a.vertices()
    )
    degrees_b = sorted(
        (graph_b.label_of(v), graph_b.degree(v)) for v in graph_b.vertices()
    )
    if degrees_a != degrees_b:
        return False
    for mapping in iter_subgraph_embeddings(graph_a, graph_b):
        # Same vertex and edge count + subgraph embedding => isomorphism.
        del mapping
        return True
    return False


def find_automorphisms(graph: LabeledGraph) -> List[VertexMap]:
    """Return all label-preserving automorphisms of ``graph`` (including identity)."""
    return find_subgraph_embeddings(
        graph, graph, induced=True, distinct_images=False
    )


def count_embeddings(
    pattern: LabeledGraph,
    graph: LabeledGraph,
    cap: Optional[int] = None,
) -> int:
    """Count distinct embeddings (distinct vertex-image sets), optionally capped."""
    return len(
        find_subgraph_embeddings(pattern, graph, max_embeddings=cap, distinct_images=True)
    )
