"""Shortest paths, eccentricities, diameters and simple-path enumeration.

The canonical-diameter machinery of the paper (Definitions 4–7) is built on a
few primitives provided here:

* ``bfs_distances`` — single-source shortest distances (unweighted).
* ``eccentricity`` / ``diameter`` — the usual definitions for connected graphs.
* ``all_diameter_paths`` — every *simple* path whose length equals the
  diameter (the set ``D_G`` of Definition 4).
* ``enumerate_simple_paths`` — all simple paths of a given length, used by
  brute-force reference implementations in tests and by DiamMine's
  completeness checks.

All lengths are edge counts, matching the paper (a path of length ``l`` has
``l + 1`` vertices).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph, VertexId


def bfs_distances(
    graph: LabeledGraph,
    source: VertexId,
    cutoff: Optional[int] = None,
) -> Dict[VertexId, int]:
    """Return shortest distances from ``source`` to every reachable vertex.

    ``cutoff`` (if given) stops the search at that distance: vertices farther
    away are omitted from the result.
    """
    if not graph.has_vertex(source):
        raise KeyError(f"vertex {source} is not in the graph")
    distances: Dict[VertexId, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        current_distance = distances[current]
        if cutoff is not None and current_distance >= cutoff:
            continue
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = current_distance + 1
                queue.append(neighbor)
    return distances


def shortest_path_length(
    graph: LabeledGraph, source: VertexId, target: VertexId
) -> Optional[int]:
    """Length of a shortest path between ``source`` and ``target`` (None if disconnected)."""
    if not graph.has_vertex(target):
        raise KeyError(f"vertex {target} is not in the graph")
    if source == target:
        return 0
    distances: Dict[VertexId, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor in distances:
                continue
            distances[neighbor] = distances[current] + 1
            if neighbor == target:
                return distances[neighbor]
            queue.append(neighbor)
    return None


def all_pairs_distances(graph: LabeledGraph) -> Dict[VertexId, Dict[VertexId, int]]:
    """All-pairs shortest distances via repeated BFS (unweighted graphs)."""
    return {vertex: bfs_distances(graph, vertex) for vertex in graph.vertices()}


def eccentricity(graph: LabeledGraph, vertex: VertexId) -> int:
    """Maximum shortest distance from ``vertex`` to any other vertex.

    Raises ``ValueError`` if the graph is not connected (eccentricity is
    undefined / infinite).
    """
    distances = bfs_distances(graph, vertex)
    if len(distances) != graph.num_vertices():
        raise ValueError("eccentricity is undefined on a disconnected graph")
    return max(distances.values(), default=0)


def diameter(graph: LabeledGraph) -> int:
    """The diameter D(G): max over shortest distances between all vertex pairs."""
    if graph.num_vertices() == 0:
        raise ValueError("diameter is undefined on the empty graph")
    best = 0
    for vertex in graph.vertices():
        distances = bfs_distances(graph, vertex)
        if len(distances) != graph.num_vertices():
            raise ValueError("diameter is undefined on a disconnected graph")
        best = max(best, max(distances.values(), default=0))
    return best


def _farthest(
    distances: Dict[VertexId, int]
) -> Tuple[VertexId, int]:
    """Deterministic farthest vertex of a BFS row: max distance, min id."""
    best_vertex, best_distance = None, -1
    for vertex, distance in distances.items():
        if distance > best_distance or (
            distance == best_distance and vertex < best_vertex
        ):
            best_vertex, best_distance = vertex, distance
    return best_vertex, best_distance


def sum_sweep_diameter(graph: LabeledGraph, start: Optional[VertexId] = None) -> int:
    """Exact diameter from a handful of bound-propagating BFSes.

    SumSweep-style eccentricity bounding (Borassi et al., and the iFUB
    refinement for undirected graphs) instead of the all-pairs sweep of
    :func:`diameter`:

    1. a double sweep from a high-degree seed finds a far apart pair
       ``(a, b)`` — ``ecc(a)`` is already a diameter lower bound;
    2. a BFS from the midpoint ``m`` of a shortest ``a``–``b`` path layers
       the graph into levels ``L(v) = d(m, v)``.  Any pair realising the
       diameter satisfies ``L(u) + L(v) >= D``, so ``D <= 2·max L`` and,
       processing fringe vertices by decreasing level, the search can stop
       as soon as the best eccentricity seen reaches twice the next level:
       every unprocessed pair is then provably closer;
    3. each fringe BFS both raises the lower bound (its eccentricity) and
       lowers the upper bound (its level exhausted).

    The result is exact on every input — the bounds only decide when to
    *stop* BFSing — and on the skinny/small-world graphs mined here the loop
    terminates after a handful of sweeps instead of ``n``.

    Raises ``ValueError`` on empty or disconnected graphs, matching
    :func:`diameter`.

    Examples
    --------
    >>> from repro.graph.labeled_graph import graph_from_paths
    >>> path = graph_from_paths([["a", "b", "c", "d", "e"]])
    >>> sum_sweep_diameter(path)
    4
    >>> from repro.graph.labeled_graph import build_graph
    >>> cycle = build_graph({i: "x" for i in range(6)},
    ...                     [(i, (i + 1) % 6) for i in range(6)])
    >>> sum_sweep_diameter(cycle)
    3
    """
    n = graph.num_vertices()
    if n == 0:
        raise ValueError("diameter is undefined on the empty graph")
    if n == 1:
        return 0
    if start is None or not graph.has_vertex(start):
        start = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))

    # Double sweep: seed -> a -> b, remembering parents to recover the
    # midpoint of a shortest a-b path.
    seed_row = bfs_distances(graph, start)
    if len(seed_row) != n:
        raise ValueError("diameter is undefined on a disconnected graph")
    a, _ = _farthest(seed_row)
    parents: Dict[VertexId, VertexId] = {a: a}
    row_a: Dict[VertexId, int] = {a: 0}
    queue = deque([a])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in row_a:
                row_a[neighbor] = row_a[current] + 1
                parents[neighbor] = current
                queue.append(neighbor)
    b, lower = _farthest(row_a)

    # Midpoint of the a-b path: walk half the parent chain up from b.
    midpoint = b
    for _ in range(row_a[b] // 2):
        midpoint = parents[midpoint]
    levels = bfs_distances(graph, midpoint)
    lower = max(lower, max(levels.values()))

    by_level: Dict[int, List[VertexId]] = {}
    for vertex, level in levels.items():
        by_level.setdefault(level, []).append(vertex)

    for level in sorted(by_level, reverse=True):
        if lower >= 2 * level:
            # Every unprocessed pair (u, v) has d(u, v) <= L(u) + L(v)
            # <= 2·level: the lower bound already dominates it.
            return lower
        for vertex in sorted(by_level[level]):
            ecc = max(bfs_distances(graph, vertex).values())
            if ecc > lower:
                lower = ecc
    return lower


def diameter_at_most(graph: LabeledGraph, bound: int) -> bool:
    """Exact decision ``D(G) <= bound`` with early exit in both directions.

    The ``diam-le`` driver asks this question once per candidate extension;
    running the bounded sweep beats computing the full diameter because the
    search can stop the moment *either* a single BFS eccentricity exceeds
    ``bound`` (refuted) *or* the SumSweep upper bound falls to ``bound``
    (confirmed, without resolving the exact diameter).

    Examples
    --------
    >>> from repro.graph.labeled_graph import graph_from_paths
    >>> path = graph_from_paths([["a", "b", "c", "d", "e"]])
    >>> diameter_at_most(path, 4), diameter_at_most(path, 3)
    (True, False)
    """
    if bound < 0:
        return False
    n = graph.num_vertices()
    if n == 0:
        raise ValueError("diameter is undefined on the empty graph")
    if n == 1:
        return True
    start = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))
    seed_row = bfs_distances(graph, start)
    if len(seed_row) != n:
        raise ValueError("diameter is undefined on a disconnected graph")
    a, _ = _farthest(seed_row)
    parents: Dict[VertexId, VertexId] = {a: a}
    row_a: Dict[VertexId, int] = {a: 0}
    queue = deque([a])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in row_a:
                row_a[neighbor] = row_a[current] + 1
                parents[neighbor] = current
                queue.append(neighbor)
    b, lower = _farthest(row_a)
    if lower > bound:
        return False
    midpoint = b
    for _ in range(row_a[b] // 2):
        midpoint = parents[midpoint]
    levels = bfs_distances(graph, midpoint)
    lower = max(lower, max(levels.values()))
    if lower > bound:
        return False

    by_level: Dict[int, List[VertexId]] = {}
    for vertex, level in levels.items():
        by_level.setdefault(level, []).append(vertex)
    for level in sorted(by_level, reverse=True):
        if 2 * level <= bound or lower >= 2 * level:
            # Unprocessed pairs are bounded by 2·level: within budget, or
            # dominated by an already-found eccentricity that passed.
            return lower <= bound
        for vertex in sorted(by_level[level]):
            ecc = max(bfs_distances(graph, vertex).values())
            if ecc > bound:
                return False
            if ecc > lower:
                lower = ecc
    return lower <= bound


def distance_to_set(
    graph: LabeledGraph, targets: Sequence[VertexId]
) -> Dict[VertexId, int]:
    """Shortest distance from every vertex to the nearest vertex of ``targets``.

    Multi-source BFS; this is ``Dist(v, L)`` from the paper when ``targets``
    is the vertex sequence of the canonical diameter ``L``.
    """
    target_set = set(targets)
    missing = target_set - {v for v in graph.vertices()}
    if missing:
        raise KeyError(f"target vertices not in graph: {sorted(missing)}")
    distances: Dict[VertexId, int] = {vertex: 0 for vertex in target_set}
    queue = deque(target_set)
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def enumerate_simple_paths(
    graph: LabeledGraph,
    length: int,
    start: Optional[VertexId] = None,
) -> Iterator[List[VertexId]]:
    """Yield every simple path with exactly ``length`` edges.

    Each undirected path is yielded in both orientations unless the caller
    deduplicates; mining code deduplicates by (frozenset of vertices, label
    sequence) or by keeping the orientation whose endpoint ids are minimal.
    ``start`` restricts enumeration to paths beginning at that vertex.

    This is the brute-force primitive: it is exponential in ``length`` and is
    intended for reference checks, small pattern graphs and DiamMine's unit
    tests — not for mining large data graphs directly.
    """
    if length < 0:
        raise ValueError("path length must be non-negative")
    sources = [start] if start is not None else list(graph.vertices())

    def extend(path: List[VertexId], visited: Set[VertexId]) -> Iterator[List[VertexId]]:
        if len(path) == length + 1:
            yield list(path)
            return
        for neighbor in graph.neighbors(path[-1]):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            path.append(neighbor)
            yield from extend(path, visited)
            path.pop()
            visited.discard(neighbor)

    for source in sources:
        if not graph.has_vertex(source):
            raise KeyError(f"vertex {source} is not in the graph")
        yield from extend([source], {source})


def unique_simple_paths(
    graph: LabeledGraph, length: int
) -> List[List[VertexId]]:
    """All simple paths of ``length`` edges, one orientation per undirected path.

    The kept orientation is the one whose vertex-id sequence is
    lexicographically smaller — a stable, direction-free enumeration used by
    the reference (brute-force) path miner.
    """
    seen: Set[Tuple[VertexId, ...]] = set()
    unique: List[List[VertexId]] = []
    for path in enumerate_simple_paths(graph, length):
        forward = tuple(path)
        backward = tuple(reversed(path))
        key = min(forward, backward)
        if key in seen:
            continue
        seen.add(key)
        unique.append(list(key))
    return unique


def shortest_paths_between(
    graph: LabeledGraph, source: VertexId, target: VertexId
) -> List[List[VertexId]]:
    """Enumerate all shortest (hence simple) paths between two vertices."""
    distances = bfs_distances(graph, source)
    if target not in distances:
        return []
    target_distance = distances[target]

    paths: List[List[VertexId]] = []

    def backtrack(current: VertexId, path: List[VertexId]) -> None:
        if current == source:
            paths.append(list(reversed(path)))
            return
        for neighbor in graph.neighbors(current):
            if distances.get(neighbor, -1) == distances[current] - 1:
                path.append(neighbor)
                backtrack(neighbor, path)
                path.pop()

    backtrack(target, [target])
    return paths


def all_diameter_paths(graph: LabeledGraph) -> List[List[VertexId]]:
    """The set D_G of Definition 4: every simple path of length D(G) realising it.

    Only *shortest* paths can realise the diameter (a longer simple path
    between two vertices at distance D(G) has more than D(G) edges), so it
    suffices to enumerate shortest paths between every pair at distance D(G).
    Each path appears once, oriented so that its vertex-id sequence is the
    smaller of the two orientations.
    """
    if graph.num_vertices() == 0:
        raise ValueError("diameter paths are undefined on the empty graph")
    graph_diameter = diameter(graph)
    results: List[List[VertexId]] = []
    seen: Set[Tuple[VertexId, ...]] = set()
    for source in graph.vertices():
        distances = bfs_distances(graph, source)
        for target, distance in distances.items():
            if distance != graph_diameter or source > target:
                continue
            for path in shortest_paths_between(graph, source, target):
                forward = tuple(path)
                backward = tuple(reversed(path))
                key = min(forward, backward)
                if key not in seen:
                    seen.add(key)
                    results.append(list(key))
    return results


def path_labels(graph: LabeledGraph, path: Sequence[VertexId]) -> List:
    """The label sequence of a path (convenience for ordering/tests)."""
    return [graph.label_of(vertex) for vertex in path]


def is_simple_path(graph: LabeledGraph, path: Sequence[VertexId]) -> bool:
    """True if ``path`` is a simple path of ``graph`` (consecutive edges exist)."""
    if len(path) == 0:
        return False
    if len(set(path)) != len(path):
        return False
    for u, v in zip(path, path[1:]):
        if not graph.has_edge(u, v):
            return False
    return True
