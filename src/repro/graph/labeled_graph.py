"""Vertex-labeled undirected graphs.

The paper's setting (Section 2) is a single labeled graph ``G`` with a label
function ``l_G : V(G) -> Sigma``.  Vertices carry labels; edges may optionally
carry labels as well (the paper notes the method "can also be applied to
graphs with edge labels").  Graph size |P| is measured by the number of edges.

``LabeledGraph`` is a mutable adjacency-set structure tuned for the access
patterns of pattern-growth mining:

* O(1) lookup of a vertex's label and neighbourhood,
* O(1) edge-existence test,
* cheap copies (patterns are copied on every extension),
* deterministic iteration order (insertion order), which keeps the miners
  reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Label = Hashable
VertexId = int


@dataclass(frozen=True)
class Edge:
    """An undirected edge ``{u, v}`` with an optional label.

    Edges compare equal regardless of endpoint order: ``Edge(1, 2) ==
    Edge(2, 1)``.  The normalised (smaller-id-first) endpoints are what the
    dataclass stores, so hashing is consistent with equality.
    """

    u: VertexId
    v: VertexId
    label: Optional[Label] = None

    def __post_init__(self) -> None:
        u, v = self.u, self.v
        if u > v:
            object.__setattr__(self, "u", v)
            object.__setattr__(self, "v", u)

    def endpoints(self) -> Tuple[VertexId, VertexId]:
        """Return the normalised ``(min, max)`` endpoint pair."""
        return (self.u, self.v)

    def other(self, vertex: VertexId) -> VertexId:
        """Return the endpoint that is not ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex} is not an endpoint of {self}")


class LabeledGraph:
    """A mutable, vertex-labeled, undirected graph.

    Vertices are integers; labels are arbitrary hashable values (the paper and
    our generators use short strings such as ``"a"`` or ``"P2"``).  Parallel
    edges and self-loops are rejected: patterns in frequent subgraph mining
    are simple graphs.

    Examples
    --------
    >>> g = LabeledGraph()
    >>> g.add_vertex(1, "a")
    1
    >>> g.add_vertex(2, "b")
    2
    >>> g.add_edge(1, 2)
    >>> g.num_vertices(), g.num_edges()
    (2, 1)
    >>> g.label_of(1)
    'a'
    >>> sorted(g.neighbors(1))
    [2]
    """

    __slots__ = ("_labels", "_adjacency", "_edge_labels", "_num_edges", "name")

    def __init__(self, name: str = "") -> None:
        self._labels: Dict[VertexId, Label] = {}
        self._adjacency: Dict[VertexId, Set[VertexId]] = {}
        self._edge_labels: Dict[Tuple[VertexId, VertexId], Label] = {}
        self._num_edges: int = 0
        self.name = name

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: VertexId, label: Label) -> VertexId:
        """Add ``vertex`` with ``label``; re-adding with the same label is a no-op.

        Raises ``ValueError`` if the vertex already exists with a different
        label, because silently relabeling would corrupt embeddings that other
        components may hold onto.
        """
        if vertex in self._labels:
            if self._labels[vertex] != label:
                raise ValueError(
                    f"vertex {vertex} already has label {self._labels[vertex]!r}, "
                    f"cannot relabel to {label!r}"
                )
            return vertex
        self._labels[vertex] = label
        self._adjacency[vertex] = set()
        return vertex

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        label: Optional[Label] = None,
    ) -> None:
        """Add the undirected edge ``{u, v}``.

        Both endpoints must already exist.  Adding an edge that is already
        present with the same label is a no-op; self-loops and conflicting
        relabels raise ``ValueError``.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u})")
        if u not in self._labels:
            raise KeyError(f"vertex {u} is not in the graph")
        if v not in self._labels:
            raise KeyError(f"vertex {v} is not in the graph")
        key = (u, v) if u < v else (v, u)
        if v in self._adjacency[u]:
            existing = self._edge_labels.get(key)
            if existing != label:
                raise ValueError(
                    f"edge {key} already has label {existing!r}, "
                    f"cannot relabel to {label!r}"
                )
            return
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        if label is not None:
            self._edge_labels[key] = label
        self._num_edges += 1

    def add_labeled_path(self, labels: Iterable[Label], start_id: int = 0) -> List[VertexId]:
        """Append a fresh path whose vertices carry ``labels``; return its vertex ids.

        Vertex ids are allocated from ``max(existing, start_id - 1) + 1``
        upward so the path never collides with existing vertices.
        """
        labels = list(labels)
        next_id = max(self._labels, default=start_id - 1) + 1
        ids: List[VertexId] = []
        for offset, label in enumerate(labels):
            vertex = next_id + offset
            self.add_vertex(vertex, label)
            ids.append(vertex)
        for left, right in zip(ids, ids[1:]):
            self.add_edge(left, right)
        return ids

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove ``vertex`` and all incident edges."""
        if vertex not in self._labels:
            raise KeyError(f"vertex {vertex} is not in the graph")
        for neighbor in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adjacency[vertex]
        del self._labels[vertex]

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) is not in the graph")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_labels.pop((u, v) if u < v else (v, u), None)
        self._num_edges -= 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def has_vertex(self, vertex: VertexId) -> bool:
        return vertex in self._labels

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def label_of(self, vertex: VertexId) -> Label:
        return self._labels[vertex]

    def edge_label(self, u: VertexId, v: VertexId) -> Optional[Label]:
        """Return the label of edge ``{u, v}`` (``None`` if unlabeled)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) is not in the graph")
        return self._edge_labels.get((u, v) if u < v else (v, u))

    def neighbors(self, vertex: VertexId) -> Set[VertexId]:
        """Return the (live) neighbour set of ``vertex``; treat as read-only."""
        return self._adjacency[vertex]

    def degree(self, vertex: VertexId) -> int:
        return len(self._adjacency[vertex])

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._labels)

    def vertex_labels(self) -> Dict[VertexId, Label]:
        """Return a copy of the vertex → label mapping."""
        return dict(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once."""
        for u in self._labels:
            for v in self._adjacency[u]:
                if u < v:
                    yield Edge(u, v, self._edge_labels.get((u, v)))

    def num_vertices(self) -> int:
        return len(self._labels)

    def num_edges(self) -> int:
        return self._num_edges

    def size(self) -> int:
        """The paper's |P|: the number of edges."""
        return self._num_edges

    def labels_used(self) -> Set[Label]:
        """Return the set of distinct vertex labels present in the graph."""
        return set(self._labels.values())

    def label_histogram(self) -> Dict[Label, int]:
        """Return label → number of vertices carrying it."""
        histogram: Dict[Label, int] = {}
        for label in self._labels.values():
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    def is_connected(self) -> bool:
        """True if the graph has a single connected component (or is empty)."""
        if not self._labels:
            return True
        start = next(iter(self._labels))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._labels)

    def connected_components(self) -> List[Set[VertexId]]:
        """Return the vertex sets of all connected components."""
        remaining = set(self._labels)
        components: List[Set[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(seen)
            remaining -= seen
        return components

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def copy(self) -> "LabeledGraph":
        """Return a deep-enough copy (labels/adjacency duplicated)."""
        clone = LabeledGraph(name=self.name)
        clone._labels = dict(self._labels)
        # set.copy() beats set(ns) measurably, and this dictcomp runs once
        # per pattern copy on the growth hot path.
        clone._adjacency = {v: ns.copy() for v, ns in self._adjacency.items()}
        clone._edge_labels = dict(self._edge_labels)
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, vertices: Iterable[VertexId]) -> "LabeledGraph":
        """Return the subgraph induced by ``vertices`` (ids and labels kept)."""
        keep = set(vertices)
        missing = keep - set(self._labels)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(missing)}")
        sub = LabeledGraph(name=f"{self.name}/induced")
        for vertex in keep:
            sub.add_vertex(vertex, self._labels[vertex])
        for vertex in keep:
            for neighbor in self._adjacency[vertex]:
                if neighbor in keep and vertex < neighbor:
                    sub.add_edge(
                        vertex, neighbor, self._edge_labels.get((vertex, neighbor))
                    )
        return sub

    def edge_subgraph(self, edges: Iterable[Tuple[VertexId, VertexId]]) -> "LabeledGraph":
        """Return the subgraph consisting of exactly ``edges`` and their endpoints."""
        sub = LabeledGraph(name=f"{self.name}/edges")
        for u, v in edges:
            if not self.has_edge(u, v):
                raise KeyError(f"edge ({u}, {v}) is not in the graph")
            if not sub.has_vertex(u):
                sub.add_vertex(u, self._labels[u])
            if not sub.has_vertex(v):
                sub.add_vertex(v, self._labels[v])
            sub.add_edge(u, v, self._edge_labels.get((u, v) if u < v else (v, u)))
        return sub

    def relabel_vertices(self, mapping: Dict[VertexId, VertexId]) -> "LabeledGraph":
        """Return a copy with vertex ids renamed through ``mapping``.

        Every vertex must be mapped, and the mapping must be injective.
        """
        if set(mapping) != set(self._labels):
            raise ValueError("mapping must cover exactly the graph's vertices")
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("mapping must be injective")
        renamed = LabeledGraph(name=self.name)
        for old, new in mapping.items():
            renamed.add_vertex(new, self._labels[old])
        for edge in self.edges():
            renamed.add_edge(mapping[edge.u], mapping[edge.v], edge.label)
        return renamed

    def compact(self) -> Tuple["LabeledGraph", Dict[VertexId, VertexId]]:
        """Renumber vertices to ``0..n-1`` (insertion order); return (graph, old→new)."""
        mapping = {old: new for new, old in enumerate(self._labels)}
        return self.relabel_vertices(mapping), mapping

    def merged_with(self, other: "LabeledGraph") -> "LabeledGraph":
        """Union of two graphs that agree on the labels of shared vertex ids."""
        merged = self.copy()
        for vertex in other.vertices():
            merged.add_vertex(vertex, other.label_of(vertex))
        for edge in other.edges():
            if not merged.has_edge(edge.u, edge.v):
                merged.add_edge(edge.u, edge.v, edge.label)
        return merged

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._labels)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{name} |V|={self.num_vertices()} |E|={self.num_edges()}>"
        )


def graph_from_paths(
    label_paths: Iterable[Iterable[Label]],
) -> LabeledGraph:
    """Build a graph that is the disjoint union of labeled paths.

    Convenience used heavily in tests: ``graph_from_paths([["a", "b", "c"]])``
    creates a 3-vertex path with labels a-b-c.
    """
    graph = LabeledGraph()
    for labels in label_paths:
        graph.add_labeled_path(labels)
    return graph


def build_graph(
    vertex_labels: Dict[VertexId, Label],
    edges: Iterable[Tuple[VertexId, VertexId]],
    name: str = "",
) -> LabeledGraph:
    """Build a graph from explicit vertex-label and edge lists.

    This is the constructor used throughout the test-suite because it reads
    like the figures in the paper: a dict of labeled vertices plus edge pairs.
    """
    graph = LabeledGraph(name=name)
    for vertex, label in vertex_labels.items():
        graph.add_vertex(vertex, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph
