"""``repro`` — the reproduction's command-line interface.

Subcommands mirror the two-stage architecture:

* ``repro index build``  — run Stage 1 offline and persist it to a disk store
* ``repro index info``   — inspect a store (entries, sizes, build times)
* ``repro mine``         — answer one mining request (warm store = no Stage 1)
* ``repro serve-batch``  — answer a JSON file of batched requests

Datasets are given with ``--data`` as either a path to an LG file (see
:mod:`repro.graph.io`) or a generator spec:

* ``synthetic:GID`` (Table-1 setting, GIDs 1-5), optionally
  ``synthetic:GID:scale:seed`` — e.g. ``synthetic:1:0.3:7``;
* ``demo`` — the small quickstart graph used in the examples.

Exit codes: 0 on success, 2 on bad usage (argparse), 1 on runtime errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.graph.labeled_graph import LabeledGraph

PROG = "repro"


# --------------------------------------------------------------------- #
# dataset loading
# --------------------------------------------------------------------- #
def load_dataset(spec: str) -> List[LabeledGraph]:
    """Resolve a ``--data`` spec to a list of graphs."""
    if spec == "demo":
        from repro.graph.generators import (
            erdos_renyi_graph,
            inject_pattern,
            random_skinny_pattern,
        )

        background = erdos_renyi_graph(150, 1.5, 25, seed=1)
        pattern = random_skinny_pattern(6, 1, 9, 25, seed=2)
        inject_pattern(background, pattern, copies=3, seed=3)
        return [background]
    if spec.startswith("synthetic:"):
        from repro.datasets.synthetic import build_gid_dataset

        parts = spec.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"bad synthetic spec {spec!r}; expected synthetic:GID[:scale[:seed]]"
            )
        gid = int(parts[1])
        scale = float(parts[2]) if len(parts) > 2 else 0.3
        seed = int(parts[3]) if len(parts) > 3 else 7
        return [build_gid_dataset(gid, seed=seed, scale=scale).graph]
    path = Path(spec)
    if path.exists():
        from repro.graph.io import read_lg

        graphs = read_lg(path)
        if not graphs:
            raise ValueError(f"{spec}: LG file contains no graphs")
        return graphs
    raise ValueError(
        f"--data {spec!r} is neither an existing LG file, 'demo', nor a synthetic: spec"
    )


def _parse_lengths(text: str) -> List[int]:
    lengths: List[int] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "-" in chunk[1:]:
            low, high = chunk.split("-", 1)
            lengths.extend(range(int(low), int(high) + 1))
        else:
            lengths.append(int(chunk))
    if not lengths:
        raise ValueError(f"no lengths in {text!r}")
    return sorted(set(lengths))


def _pattern_payload(pattern) -> dict:
    from repro.graph.io import graph_to_record

    return {
        "support": pattern.support,
        "diameter_length": pattern.diameter_length,
        "num_vertices": pattern.num_vertices,
        "num_edges": pattern.num_edges,
        "diameter_labels": list(pattern.diameter_labels()),
        "graph": graph_to_record(pattern.graph),
    }


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.index.store import DiskPatternStore
    from repro.service.mining import MiningService

    graphs = load_dataset(args.data)
    store = DiskPatternStore(args.store)
    service = MiningService(graphs, store=store)
    lengths = _parse_lengths(args.lengths)
    counts = service.precompute(
        lengths,
        min_support=args.min_support,
        support_measure=args.support_measure,
        processes=args.processes,
    )
    payload = {
        "store": str(store.root),
        "fingerprint": service.fingerprint,
        "min_support": args.min_support,
        "support_measure": args.support_measure,
        "lengths": {str(length): counts[length] for length in sorted(counts)},
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"index store : {store.root}")
        print(f"fingerprint : {service.fingerprint[:16]}…")
        for length in sorted(counts):
            print(f"  l={length:<3d} -> {counts[length]} minimal pattern(s)")
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    from repro.index.store import DiskPatternStore

    store = DiskPatternStore(args.store)
    entries = store.info()
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"{store.root}: empty index store")
        return 0
    print(f"{store.root}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
    for entry in entries:
        print(
            f"  [{entry['constraint_id']}] {json.dumps(entry['parameter'], sort_keys=True)}"
            f" — {entry['num_patterns']} pattern(s),"
            f" built in {entry['build_seconds']:.3f}s,"
            f" {entry['size_bytes']} bytes"
            f" (data {entry['fingerprint'][:12]}…)"
        )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.index.store import DiskPatternStore
    from repro.service.mining import MineRequest, MiningService

    graphs = load_dataset(args.data)
    store = DiskPatternStore(args.store) if args.store else None
    service = MiningService(graphs, store=store)
    request = MineRequest(
        length=args.length,
        delta=args.delta,
        min_support=args.min_support,
        top_k=args.top_k,
        support_measure=args.support_measure,
    )
    response = service.mine(request)
    if args.json:
        print(
            json.dumps(
                {
                    "stats": response.stats.to_dict(),
                    "patterns": [_pattern_payload(p) for p in response.patterns],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    stats = response.stats
    provenance = "warm index" if stats.served_from_store else "cold (Stage 1 computed)"
    print(
        f"{len(response.patterns)} pattern(s) for l={args.length} δ={args.delta} "
        f"σ={args.min_support} [{provenance}]"
    )
    print(
        f"stage 1: {stats.stage_one_seconds:.4f}s   stage 2: {stats.stage_two_seconds:.4f}s"
        f"   total: {stats.total_seconds:.4f}s"
    )
    for rank, pattern in enumerate(response.patterns, start=1):
        print(
            f"  #{rank:<3d} support={pattern.support:<4d} |V|={pattern.num_vertices:<3d}"
            f" |E|={pattern.num_edges:<3d} diameter={'-'.join(pattern.diameter_labels())}"
        )
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.index.store import DiskPatternStore
    from repro.service.mining import MineRequest, MiningService

    graphs = load_dataset(args.data)
    store = DiskPatternStore(args.store) if args.store else None
    service = MiningService(graphs, store=store)
    payload = json.loads(Path(args.requests).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ValueError(f"{args.requests}: expected a JSON list of request objects")
    requests = [MineRequest.from_dict(item) for item in payload]
    responses = service.serve_batch(requests)
    results = [
        {
            "stats": response.stats.to_dict(),
            "num_patterns": len(response.patterns),
            **(
                {"patterns": [_pattern_payload(p) for p in response.patterns]}
                if args.include_patterns
                else {}
            ),
        }
        for response in responses
    ]
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(results)} response(s) to {args.output}")
    else:
        print(text)
    return 0


# --------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------- #
def _add_data_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--data",
        required=True,
        help="LG file path, 'demo', or synthetic:GID[:scale[:seed]]",
    )


def _add_measure_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--support-measure",
        default="embeddings",
        choices=["embeddings", "transactions", "mni"],
        help="support measure (default: embeddings)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="SkinnyMine reproduction: persistent pattern index + mining service",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    index_parser = subparsers.add_parser("index", help="manage the Stage-1 index store")
    index_sub = index_parser.add_subparsers(dest="index_command", required=True)

    build = index_sub.add_parser("build", help="precompute minimal patterns into a store")
    _add_data_argument(build)
    build.add_argument("--store", required=True, help="index store directory")
    build.add_argument(
        "--lengths", required=True, help="comma list / ranges, e.g. '4,6' or '3-6'"
    )
    build.add_argument("--min-support", type=int, default=2)
    _add_measure_argument(build)
    build.add_argument(
        "--processes", type=int, default=None, help="parallel Stage-1 workers"
    )
    build.add_argument("--json", action="store_true", help="machine-readable output")
    build.set_defaults(handler=_cmd_index_build)

    info = index_sub.add_parser("info", help="inspect an index store")
    info.add_argument("--store", required=True, help="index store directory")
    info.add_argument("--json", action="store_true", help="machine-readable output")
    info.set_defaults(handler=_cmd_index_info)

    mine = subparsers.add_parser("mine", help="answer one mining request")
    _add_data_argument(mine)
    mine.add_argument("--store", default=None, help="index store directory (optional)")
    mine.add_argument("--length", "-l", type=int, required=True)
    mine.add_argument("--delta", "-d", type=int, required=True)
    mine.add_argument("--min-support", type=int, default=2)
    mine.add_argument("--top-k", type=int, default=None)
    _add_measure_argument(mine)
    mine.add_argument("--json", action="store_true", help="machine-readable output")
    mine.set_defaults(handler=_cmd_mine)

    batch = subparsers.add_parser("serve-batch", help="answer a JSON batch of requests")
    _add_data_argument(batch)
    batch.add_argument("--store", default=None, help="index store directory (optional)")
    batch.add_argument(
        "--requests", required=True, help="JSON file: list of request objects"
    )
    batch.add_argument(
        "--output", default=None, help="write responses to this file instead of stdout"
    )
    batch.add_argument(
        "--include-patterns",
        action="store_true",
        help="include full pattern graphs in the responses",
    )
    batch.set_defaults(handler=_cmd_serve_batch)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (ValueError, OSError, KeyError) as error:
        print(f"{PROG}: error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
