"""``repro`` — the reproduction's command-line interface.

Subcommands mirror the two-stage architecture, now served through the
unified constraint-plugin API (:mod:`repro.api`):

* ``repro constraints``   — list the registered constraints and their schemas
* ``repro index build``   — run Stage 1 offline and persist it to a disk store
* ``repro index info``    — inspect a store (entries, sizes, build times)
* ``repro index query``   — corpus queries over a store's patterns (indexed on sqlite)
* ``repro mine``          — answer one query (warm store = no Stage 1)
* ``repro serve-batch``   — answer a JSON file of batched queries
* ``repro serve``         — run the long-lived concurrent mining service (TCP)
* ``repro stats``         — render a metrics snapshot written by ``--emit-metrics``

Every command that takes ``--store`` also takes ``--backend jsonl|sqlite``;
without it the backend comes from ``$REPRO_STORE_BACKEND`` or from what is
already on disk at the store root (see ``docs/STORE.md``).

Telemetry (see ``docs/OBSERVABILITY.md``): ``mine`` and ``serve-batch``
accept ``--trace-out PATH`` (append per-query span trees as JSONL) and
``--emit-metrics PATH`` (write a metrics-registry snapshot as JSON);
``mine --stats`` prints a human-readable per-query statistics table.

Every mining command takes ``--constraint <id>`` (default ``skinny``) and
constraint parameters as repeatable ``--param name=value`` flags; ``-l`` and
``-d`` remain as conveniences for the ``length``/``delta`` parameters of the
built-in constraints::

    repro mine --data demo --constraint skinny  -l 6 -d 1 --min-support 2
    repro mine --data demo --constraint path    --param length=4 --min-support 2
    repro mine --data demo --constraint diam-le --param k=2 --min-support 2

Datasets are given with ``--data`` as either a path to an LG file (see
:mod:`repro.graph.io`) or a generator spec:

* ``synthetic:GID`` (Table-1 setting, GIDs 1-5), optionally
  ``synthetic:GID:scale:seed`` — e.g. ``synthetic:1:0.3:7``;
* ``demo`` — the small quickstart graph used in the examples.

Exit codes: 0 on success, 2 on bad usage (argparse), 1 on runtime errors —
including typed query errors (unknown constraint, missing/extra/mistyped
parameters), which are reported on stderr with the offending field named.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.graph.labeled_graph import LabeledGraph

PROG = "repro"


# --------------------------------------------------------------------- #
# dataset loading
# --------------------------------------------------------------------- #
def load_dataset(spec: str) -> List[LabeledGraph]:
    """Resolve a ``--data`` spec to a list of graphs."""
    if spec == "demo":
        from repro.graph.generators import (
            erdos_renyi_graph,
            inject_pattern,
            random_skinny_pattern,
        )

        background = erdos_renyi_graph(150, 1.5, 25, seed=1)
        pattern = random_skinny_pattern(6, 1, 9, 25, seed=2)
        inject_pattern(background, pattern, copies=3, seed=3)
        return [background]
    if spec.startswith("synthetic:"):
        from repro.datasets.synthetic import build_gid_dataset

        parts = spec.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"bad synthetic spec {spec!r}; expected synthetic:GID[:scale[:seed]]"
            )
        gid = int(parts[1])
        scale = float(parts[2]) if len(parts) > 2 else 0.3
        seed = int(parts[3]) if len(parts) > 3 else 7
        return [build_gid_dataset(gid, seed=seed, scale=scale).graph]
    path = Path(spec)
    if path.exists():
        from repro.graph.io import read_lg

        graphs = read_lg(path)
        if not graphs:
            raise ValueError(f"{spec}: LG file contains no graphs")
        return graphs
    raise ValueError(
        f"--data {spec!r} is neither an existing LG file, 'demo', nor a synthetic: spec"
    )


def _parse_lengths(text: str) -> List[int]:
    lengths: List[int] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "-" in chunk[1:]:
            low, high = chunk.split("-", 1)
            lengths.extend(range(int(low), int(high) + 1))
        else:
            lengths.append(int(chunk))
    if not lengths:
        raise ValueError(f"no lengths in {text!r}")
    return sorted(set(lengths))


def _collect_params(args: argparse.Namespace) -> Dict[str, object]:
    """Constraint parameters from ``--param name=value`` plus ``-l``/``-d``.

    Values are parsed as JSON when possible (so ``k=2`` is the integer 2)
    and kept as strings otherwise; the Query layer validates types.
    """
    params: Dict[str, object] = {}
    for item in args.param or []:
        name, separator, raw = item.partition("=")
        if not separator or not name:
            raise ValueError(f"--param expects name=value, got {item!r}")
        try:
            params[name] = json.loads(raw)
        except json.JSONDecodeError:
            params[name] = raw
    if getattr(args, "length", None) is not None:
        params.setdefault("length", args.length)
    if getattr(args, "delta", None) is not None:
        params.setdefault("delta", args.delta)
    return params


def _format_params(params: Dict[str, object]) -> str:
    return " ".join(f"{name}={value}" for name, value in sorted(params.items()))


# --------------------------------------------------------------------- #
# store plumbing
# --------------------------------------------------------------------- #
def _open_store(args: argparse.Namespace, metrics=None):
    """Open the store named by ``--store`` under the resolved backend."""
    from repro.index import open_pattern_store

    return open_pattern_store(
        args.store, backend=getattr(args, "backend", None), metrics=metrics
    )


# --------------------------------------------------------------------- #
# telemetry plumbing
# --------------------------------------------------------------------- #
def _telemetry(args: argparse.Namespace):
    """(tracer, registry) for a mining command, or (None, None) when unused.

    ``--trace-out`` switches on an enabled tracer; ``--emit-metrics`` gets a
    *fresh* registry so the written snapshot covers exactly this invocation
    (the process-wide default registry is shared and unbounded).
    """
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer() if getattr(args, "trace_out", None) else None
    registry = MetricsRegistry() if getattr(args, "emit_metrics", None) else None
    return tracer, registry


def _export_telemetry(args: argparse.Namespace, engine, event: str, **payload) -> None:
    """Write the trace JSONL and/or metrics snapshot a command asked for."""
    if getattr(args, "trace_out", None):
        from repro.obs import TraceJsonlWriter

        with TraceJsonlWriter(args.trace_out) as writer:
            writer.write_event(event, **payload)
            for root in engine.tracer.drain():
                writer.write_trace(root)
    if getattr(args, "emit_metrics", None):
        snapshot = engine.metrics.snapshot()
        Path(args.emit_metrics).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


def _print_stats_table(stats) -> None:
    """Human-readable per-query statistics (the ``mine --stats`` table)."""
    rows: List[tuple] = [
        ("stage 1 seconds", f"{stats.stage_one_seconds:.4f}"),
        ("stage 2 seconds", f"{stats.stage_two_seconds:.4f}"),
        ("overhead seconds", f"{stats.overhead_seconds:.4f}"),
        ("total seconds", f"{stats.total_seconds:.4f}"),
        ("minimal patterns", str(stats.num_minimal_patterns)),
        ("patterns", str(stats.num_patterns)),
        ("served from store", "yes" if stats.served_from_store else "no"),
        ("result cache hit", "yes" if stats.result_cache_hit else "no"),
    ]
    for name, value in (stats.level_statistics or {}).items():
        label = name.replace("_", " ")
        if isinstance(value, float):
            rows.append((label, f"{value:.4f}"))
        else:
            rows.append((label, str(value)))
    width = max(len(name) for name, _ in rows)
    print("query statistics:")
    for name, value in rows:
        print(f"  {name:<{width}}  {value}")


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_constraints(args: argparse.Namespace) -> int:
    from repro.api import constraint_specs

    specs = constraint_specs()
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=2, sort_keys=True))
        return 0
    for spec in specs:
        print(f"{spec.constraint_id}: {spec.description}")
        for param in spec.params:
            default = "" if param.required else f" (default {param.default})"
            bound = f", >= {param.minimum}" if param.minimum is not None else ""
            kind = "required" if param.required else "optional"
            print(
                f"  --param {param.name}=<{param.type.__name__}>"
                f"  [{kind}{bound}]{default}  {param.doc}"
            )
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.api import MiningEngine, Query, get_constraint

    spec = get_constraint(args.constraint)
    graphs = load_dataset(args.data)
    store = _open_store(args)
    length_keyed = any(
        param.name == "length" and param.stage_one for param in spec.params
    )

    payload: Dict[str, object] = {
        "store": str(store.root),
        "constraint": spec.constraint_id,
        "min_support": args.min_support,
        "support_measure": args.support_measure,
    }
    if length_keyed:
        if not args.lengths:
            raise ValueError(
                f"constraint {spec.constraint_id!r} indexes Stage 1 by length; "
                "pass --lengths"
            )
        lengths = _parse_lengths(args.lengths)
        engine = MiningEngine(graphs, store=store)
        # Required growth-only params (e.g. skinny's δ, which Stage 1
        # ignores) may come from --param; absent ones default to their
        # minimum so the query validates.  Stage-one params are never
        # fabricated — a made-up value would silently key the store — so a
        # missing one surfaces as the usual MissingParameterError.
        base = _collect_params(args)
        for param in spec.params:
            if (
                param.required
                and not param.stage_one
                and param.name not in base
            ):
                base[param.name] = param.minimum if param.minimum is not None else 0
        queries = [
            Query(
                constraint_id=spec.constraint_id,
                params={**base, "length": length},
                min_support=args.min_support,
                support_measure=args.support_measure,
            )
            for length in lengths
        ]
        summaries = engine.precompute_queries(queries, processes=args.processes)
        counts = {
            length: summary["num_patterns"]
            for length, summary in zip(lengths, summaries)
        }
        fingerprint = engine.fingerprint
        payload["fingerprint"] = fingerprint
        payload["lengths"] = {str(length): counts[length] for length in sorted(counts)}
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"index store : {store.root}")
            print(f"constraint  : {spec.constraint_id}")
            print(f"fingerprint : {fingerprint[:16]}…")
            for length in sorted(counts):
                print(f"  l={length:<3d} -> {counts[length]} minimal pattern(s)")
        return 0

    engine = MiningEngine(graphs, store=store)
    params = _collect_params(args)
    query = Query(
        constraint_id=spec.constraint_id,
        params=params,
        min_support=args.min_support,
        support_measure=args.support_measure,
    )
    (summary,) = engine.precompute_queries([query])
    payload["fingerprint"] = engine.fingerprint
    payload["num_patterns"] = summary["num_patterns"]
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"index store : {store.root}")
        print(f"constraint  : {spec.constraint_id}")
        print(f"fingerprint : {engine.fingerprint[:16]}…")
        print(f"  {summary['num_patterns']} minimal pattern(s)")
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    store = _open_store(args)
    entries = store.info()
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"{store.root}: empty index store")
        return 0
    print(f"{store.root}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
    for entry in entries:
        size = (
            f" {entry['size_bytes']} bytes" if "size_bytes" in entry else ""
        )  # the sqlite backend shares one database file across entries
        print(
            f"  [{entry['constraint_id']}] {json.dumps(entry['parameter'], sort_keys=True)}"
            f" — {entry['num_patterns']} pattern(s),"
            f" built in {entry['build_seconds']:.3f}s,"
            f"{size}"
            f" (data {entry['fingerprint'][:12]}…)"
        )
    return 0


def _cmd_index_query(args: argparse.Namespace) -> int:
    store = _open_store(args)
    filters: Dict[str, object] = {}
    if args.labels_contain:
        filters["labels_contain"] = tuple(args.labels_contain)
    for name in ("min_support", "min_size", "max_size", "kind", "fingerprint", "limit"):
        value = getattr(args, name)
        if value is not None:
            filters[name] = value
    if args.constraint is not None:
        filters["constraint_id"] = args.constraint
    if args.order_by is not None:
        filters["order_by"] = args.order_by
    matches = store.query(**filters)
    if args.json:
        rows = [match.to_dict(include_pattern=args.include_patterns) for match in matches]
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    backend = type(store).__name__
    print(f"{store.root}: {len(matches)} match(es) [{backend}]")
    for match in matches:
        support = "-" if match.support is None else str(match.support)
        print(
            f"  [{match.key.constraint_id}] #{match.position}"
            f" kind={match.kind} support={support} |E|={match.size}"
            f" |V|={match.num_vertices} labels={','.join(match.labels)}"
            f" (data {match.key.fingerprint[:12]}…)"
        )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.api import MiningEngine, Query

    graphs = load_dataset(args.data)
    tracer, registry = _telemetry(args)
    store = _open_store(args, metrics=registry) if args.store else None
    engine = MiningEngine(graphs, store=store, tracer=tracer, metrics=registry)
    query = Query(
        constraint_id=args.constraint,
        params=_collect_params(args),
        min_support=args.min_support,
        top_k=args.top_k,
        support_measure=args.support_measure,
    )
    result = engine.run(query)
    _export_telemetry(
        args,
        engine,
        "mine",
        constraint=query.constraint_id,
        params=dict(query.params),
        min_support=query.min_support,
    )
    if args.json:
        print(
            json.dumps(
                result.to_dict(include_patterns=True), indent=2, sort_keys=True
            )
        )
        return 0
    stats = result.stats
    provenance = "warm index" if stats.served_from_store else "cold (Stage 1 computed)"
    print(
        f"{len(result.patterns)} pattern(s) for constraint={query.constraint_id} "
        f"{_format_params(dict(query.params))} σ={query.min_support} [{provenance}]"
    )
    print(
        f"stage 1: {stats.stage_one_seconds:.4f}s   stage 2: {stats.stage_two_seconds:.4f}s"
        f"   total: {stats.total_seconds:.4f}s"
    )
    for rank, pattern in enumerate(result.patterns, start=1):
        print(
            f"  #{rank:<3d} support={pattern.support:<4d} |V|={pattern.num_vertices:<3d}"
            f" |E|={pattern.num_edges:<3d} diameter={'-'.join(pattern.diameter_labels())}"
        )
    if args.stats:
        _print_stats_table(stats)
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.api import MiningEngine, query_from_payload

    graphs = load_dataset(args.data)
    tracer, registry = _telemetry(args)
    store = _open_store(args, metrics=registry) if args.store else None
    engine = MiningEngine(graphs, store=store, tracer=tracer, metrics=registry)
    payload = json.loads(Path(args.requests).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ValueError(f"{args.requests}: expected a JSON list of request objects")
    queries = [query_from_payload(item) for item in payload]
    responses = engine.run_batch(queries)
    _export_telemetry(args, engine, "serve-batch", size=len(queries))
    results = [
        response.to_dict(include_patterns=args.include_patterns)
        for response in responses
    ]
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(results)} response(s) to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.server import MiningServer

    graphs = load_dataset(args.data)
    store = _open_store(args) if args.store else None
    server = MiningServer(
        graphs,
        store=store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        per_constraint=args.per_constraint,
        default_budget_ms=args.budget_ms,
        cache_size=args.cache_size,
        cache_ttl_seconds=args.cache_ttl,
        stage1_processes=args.stage1_processes,
    )

    async def _run() -> None:
        await server.start()
        # One NDJSON event on stdout so drivers can scrape the bound port.
        print(
            json.dumps(
                {
                    "event": "listening",
                    "host": args.host,
                    "port": server.port,
                    "pid": os.getpid(),
                    "generation": server.generation,
                    "workers": args.workers,
                },
                sort_keys=True,
            ),
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _metric_series_name(metric) -> str:
    if not metric.labels:
        return metric.name
    body = ",".join(f'{key}="{value}"' for key, value in metric.labels)
    return "%s{%s}" % (metric.name, body)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry

    payload = json.loads(Path(args.metrics).read_text(encoding="utf-8"))
    registry = MetricsRegistry.from_snapshot(payload)
    if args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
        return 0
    if args.format == "prom":
        sys.stdout.write(registry.render_text())
        return 0
    sections = {"counter": [], "gauge": [], "histogram": []}
    for kind, metric in registry.iter_metrics():
        if kind == "histogram":
            summary = metric.summary()
            sections[kind].append(
                (
                    _metric_series_name(metric),
                    "count=%d sum=%.4fs p50=%.4fs p95=%.4fs p99=%.4fs"
                    % (
                        summary["count"],
                        summary["sum"],
                        summary["p50"],
                        summary["p95"],
                        summary["p99"],
                    ),
                )
            )
        else:
            value = metric.value
            rendered = str(int(value)) if value == int(value) else f"{value:.4f}"
            sections[kind].append((_metric_series_name(metric), rendered))
    if not any(sections.values()):
        print(f"{args.metrics}: no metrics recorded")
        return 0
    for kind, title in (
        ("counter", "counters"),
        ("gauge", "gauges"),
        ("histogram", "histograms"),
    ):
        rows = sections[kind]
        if not rows:
            continue
        print(f"{title}:")
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            print(f"  {name:<{width}}  {value}")
    return 0


# --------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------- #
def _add_data_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--data",
        required=True,
        help="LG file path, 'demo', or synthetic:GID[:scale[:seed]]",
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        choices=["jsonl", "sqlite"],
        help=(
            "store backend (default: $REPRO_STORE_BACKEND, else whatever is "
            "already at --store, else jsonl)"
        ),
    )


def _add_measure_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--support-measure",
        default="embeddings",
        choices=["embeddings", "transactions", "mni"],
        help="support measure (default: embeddings)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="append per-query span traces to this JSONL file",
    )
    parser.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help="write a metrics-registry snapshot (JSON) to this file",
    )


def _add_constraint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--constraint",
        default="skinny",
        help="registered constraint id (see `repro constraints`; default: skinny)",
    )
    parser.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="constraint parameter (repeatable), e.g. --param k=2",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog=PROG,
        description=(
            "SkinnyMine reproduction: persistent pattern index + constraint-"
            "plugin mining engine"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"{PROG} {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    constraints = subparsers.add_parser(
        "constraints", help="list registered constraints and their parameters"
    )
    constraints.add_argument("--json", action="store_true", help="machine-readable output")
    constraints.set_defaults(handler=_cmd_constraints)

    index_parser = subparsers.add_parser("index", help="manage the Stage-1 index store")
    index_sub = index_parser.add_subparsers(dest="index_command", required=True)

    build = index_sub.add_parser("build", help="precompute minimal patterns into a store")
    _add_data_argument(build)
    build.add_argument("--store", required=True, help="index store directory")
    _add_backend_argument(build)
    _add_constraint_arguments(build)
    build.add_argument(
        "--lengths",
        default=None,
        help="comma list / ranges, e.g. '4,6' or '3-6' (length-indexed constraints)",
    )
    build.add_argument("--min-support", type=int, default=2)
    _add_measure_argument(build)
    build.add_argument(
        "--processes", type=int, default=None, help="parallel Stage-1 workers"
    )
    build.add_argument("--json", action="store_true", help="machine-readable output")
    build.set_defaults(handler=_cmd_index_build)

    info = index_sub.add_parser("info", help="inspect an index store")
    info.add_argument("--store", required=True, help="index store directory")
    _add_backend_argument(info)
    info.add_argument("--json", action="store_true", help="machine-readable output")
    info.set_defaults(handler=_cmd_index_info)

    query = index_sub.add_parser(
        "query", help="corpus query over a store's patterns (indexed on sqlite)"
    )
    query.add_argument("--store", required=True, help="index store directory")
    _add_backend_argument(query)
    query.add_argument(
        "--labels-contain",
        action="append",
        metavar="LABEL",
        help="keep patterns whose label set contains LABEL (repeatable = AND)",
    )
    query.add_argument("--min-support", type=int, default=None)
    query.add_argument("--min-size", type=int, default=None, help="minimum edge count")
    query.add_argument("--max-size", type=int, default=None, help="maximum edge count")
    query.add_argument(
        "--kind", default=None, choices=["path", "skinny", "graph"],
        help="restrict to one record kind",
    )
    query.add_argument(
        "--constraint", default=None, help="restrict to one constraint id"
    )
    query.add_argument(
        "--fingerprint", default=None, help="restrict to one dataset fingerprint"
    )
    query.add_argument(
        "--order-by",
        default=None,
        choices=["support", "-support", "size", "-size", "num_vertices", "-num_vertices"],
        help="sort field ('-' prefix = descending)",
    )
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.add_argument(
        "--include-patterns",
        action="store_true",
        help="include encoded pattern bodies in --json output",
    )
    query.set_defaults(handler=_cmd_index_query)

    mine = subparsers.add_parser("mine", help="answer one mining query")
    _add_data_argument(mine)
    mine.add_argument("--store", default=None, help="index store directory (optional)")
    _add_backend_argument(mine)
    _add_constraint_arguments(mine)
    mine.add_argument(
        "--length", "-l", type=int, default=None,
        help="shorthand for --param length=N",
    )
    mine.add_argument(
        "--delta", "-d", type=int, default=None,
        help="shorthand for --param delta=N",
    )
    mine.add_argument("--min-support", type=int, default=2)
    mine.add_argument("--top-k", type=int, default=None)
    _add_measure_argument(mine)
    mine.add_argument("--json", action="store_true", help="machine-readable output")
    mine.add_argument(
        "--stats",
        action="store_true",
        help="print a per-query statistics summary table",
    )
    _add_telemetry_arguments(mine)
    mine.set_defaults(handler=_cmd_mine)

    batch = subparsers.add_parser("serve-batch", help="answer a JSON batch of queries")
    _add_data_argument(batch)
    batch.add_argument("--store", default=None, help="index store directory (optional)")
    _add_backend_argument(batch)
    batch.add_argument(
        "--requests",
        required=True,
        help="JSON file: list of Query envelopes (or legacy mine-request objects)",
    )
    batch.add_argument(
        "--output", default=None, help="write responses to this file instead of stdout"
    )
    batch.add_argument(
        "--include-patterns",
        action="store_true",
        help="include full pattern graphs in the responses",
    )
    _add_telemetry_arguments(batch)
    batch.set_defaults(handler=_cmd_serve_batch)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived NDJSON-over-TCP mining service"
    )
    _add_data_argument(serve)
    serve.add_argument("--store", default=None, help="index store directory (optional)")
    _add_backend_argument(serve)
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = pick a free one; see the 'listening' event)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="worker threads (= in-flight limit)"
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, help="admission queue bound"
    )
    serve.add_argument(
        "--per-constraint",
        type=int,
        default=None,
        help="per-constraint in-flight limit (default: none)",
    )
    serve.add_argument(
        "--budget-ms",
        type=int,
        default=None,
        help="default per-query deadline in ms (default: none)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="result-cache entry bound"
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=30.0, help="result-cache TTL in seconds"
    )
    serve.add_argument(
        "--stage1-processes",
        type=int,
        default=0,
        help="offload cold Stage-1 mining to this many subprocesses (0 = inline)",
    )
    serve.set_defaults(handler=_cmd_serve)

    stats = subparsers.add_parser(
        "stats", help="render a metrics snapshot written by --emit-metrics"
    )
    stats.add_argument("metrics", help="metrics snapshot JSON file")
    stats.add_argument(
        "--format",
        default="table",
        choices=["table", "prom", "json"],
        help="output format (default: table; 'prom' is Prometheus text exposition)",
    )
    stats.set_defaults(handler=_cmd_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (ValueError, OSError, KeyError) as error:
        print(f"{PROG}: error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
