"""JSON codec for the objects held by the pattern-index store.

The persistent store (:mod:`repro.index.store`) serialises *minimal
constraint-satisfying patterns together with their embeddings* — the paper's
Stage-1 output.  Three record types are supported:

* ``path`` — :class:`repro.core.patterns.PathPattern` (SkinnyMine's minimal
  patterns: frequent length-l paths with their ordered occurrences);
* ``skinny`` — :class:`repro.core.patterns.SkinnyPattern` (full mined
  patterns, used by the service's result persistence);
* ``graph`` — a bare :class:`repro.graph.labeled_graph.LabeledGraph`
  (minimal patterns of generic constraints in the direct-mining framework).

Records are plain dicts tagged with a ``"type"`` key so a JSON-lines file can
mix them; decoding an unknown tag raises :class:`CodecError` rather than
silently dropping data.
"""

from __future__ import annotations

from typing import Dict

from repro.core.patterns import PathPattern, SkinnyPattern
from repro.graph.embeddings import Embedding
from repro.graph.io import graph_from_record, graph_to_record
from repro.graph.labeled_graph import LabeledGraph


class CodecError(ValueError):
    """Raised when a record cannot be encoded or decoded."""


def encode_record(obj: object) -> Dict:
    """Serialise one storable object to a tagged JSON-compatible dict."""
    if isinstance(obj, PathPattern):
        return {
            "type": "path",
            "labels": list(obj.labels),
            "support": obj.support,
            "embeddings": [
                [graph_index, list(vertices)] for graph_index, vertices in obj.embeddings
            ],
        }
    if isinstance(obj, SkinnyPattern):
        return {
            "type": "skinny",
            "graph": graph_to_record(obj.graph),
            "diameter": list(obj.diameter),
            "support": obj.support,
            "embeddings": [
                [embedding.graph_index, [list(pair) for pair in embedding.mapping]]
                for embedding in obj.embeddings
            ],
        }
    if isinstance(obj, LabeledGraph):
        return {"type": "graph", "graph": graph_to_record(obj)}
    raise CodecError(f"cannot encode object of type {type(obj).__name__} for the index store")


def decode_record(record: Dict) -> object:
    """Rebuild a storable object from a tagged dict."""
    kind = record.get("type")
    if kind == "path":
        return PathPattern(
            labels=tuple(record["labels"]),
            embeddings=tuple(
                (graph_index, tuple(vertices))
                for graph_index, vertices in record["embeddings"]
            ),
            support=record["support"],
        )
    if kind == "skinny":
        return SkinnyPattern(
            graph=graph_from_record(record["graph"]),
            diameter=list(record["diameter"]),
            embeddings=[
                Embedding(
                    mapping=tuple(tuple(pair) for pair in mapping),
                    graph_index=graph_index,
                )
                for graph_index, mapping in record["embeddings"]
            ],
            support=record["support"],
        )
    if kind == "graph":
        return graph_from_record(record["graph"])
    raise CodecError(f"unknown index-store record type {kind!r}")


