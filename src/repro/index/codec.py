"""JSON codec for the objects held by the pattern-index store.

The persistent store (:mod:`repro.index.store`) serialises *minimal
constraint-satisfying patterns together with their embeddings* — the paper's
Stage-1 output.  Three record types are supported:

* ``path`` — :class:`repro.core.patterns.PathPattern` (SkinnyMine's minimal
  patterns: frequent length-l paths with their ordered occurrences);
* ``skinny`` — :class:`repro.core.patterns.SkinnyPattern` (full mined
  patterns, used by the service's result persistence);
* ``graph`` — a bare :class:`repro.graph.labeled_graph.LabeledGraph`
  (minimal patterns of generic constraints in the direct-mining framework).

Records are plain dicts tagged with a ``"type"`` key so a JSON-lines file can
mix them; decoding an unknown tag raises :class:`CodecError` rather than
silently dropping data.

Two corpus-query hooks live here as well:

* :func:`pattern_metadata` — the *indexable* facts about a storable object
  (kind, support, size, labels, diameter descriptor).  The SQLite backend
  persists exactly these as columns at ``put`` time; the JSONL backends
  recompute them from decoded objects during a scan.  Keeping the
  extraction in one place is what makes the two backends answer corpus
  queries identically.
* :func:`decode_count` — a process-wide counter of :func:`decode_record`
  calls.  Backends that claim to answer metadata queries *without*
  deserialising pattern bodies are pinned against it
  (``tests/index/test_sqlite_store.py``).
"""

from __future__ import annotations

from typing import Dict

from repro.core.patterns import PathPattern, SkinnyPattern
from repro.graph.embeddings import Embedding
from repro.graph.io import graph_from_record, graph_to_record
from repro.graph.labeled_graph import LabeledGraph


class CodecError(ValueError):
    """Raised when a record cannot be encoded or decoded."""


#: Monotonic count of decode_record calls; read it through decode_count().
_decode_calls = 0


def decode_count() -> int:
    """How many pattern bodies this process has decoded so far.

    The counter only ever grows; tests snapshot it before an operation and
    compare the delta.  This is the instrument behind the SQLite backend's
    contract that corpus queries never deserialise non-matching bodies.

    Examples
    --------
    >>> before = decode_count()
    >>> graph = LabeledGraph()
    >>> _ = graph.add_vertex(0, "a")
    >>> _ = decode_record(encode_record(graph))
    >>> decode_count() - before
    1
    """
    return _decode_calls


def encode_record(obj: object) -> Dict:
    """Serialise one storable object to a tagged JSON-compatible dict.

    Examples
    --------
    >>> pattern = PathPattern(("a", "b"), ((0, (1, 2)),), support=1)
    >>> encode_record(pattern)["type"]
    'path'
    >>> decode_record(encode_record(pattern)) == pattern
    True
    """
    if isinstance(obj, PathPattern):
        return {
            "type": "path",
            "labels": list(obj.labels),
            "support": obj.support,
            "embeddings": [
                [graph_index, list(vertices)] for graph_index, vertices in obj.embeddings
            ],
        }
    if isinstance(obj, SkinnyPattern):
        return {
            "type": "skinny",
            "graph": graph_to_record(obj.graph),
            "diameter": list(obj.diameter),
            "support": obj.support,
            "embeddings": [
                [embedding.graph_index, [list(pair) for pair in embedding.mapping]]
                for embedding in obj.embeddings
            ],
        }
    if isinstance(obj, LabeledGraph):
        return {"type": "graph", "graph": graph_to_record(obj)}
    raise CodecError(f"cannot encode object of type {type(obj).__name__} for the index store")


def decode_record(record: Dict) -> object:
    """Rebuild a storable object from a tagged dict (counted; see decode_count)."""
    global _decode_calls
    _decode_calls += 1
    kind = record.get("type")
    if kind == "path":
        return PathPattern(
            labels=tuple(record["labels"]),
            embeddings=tuple(
                (graph_index, tuple(vertices))
                for graph_index, vertices in record["embeddings"]
            ),
            support=record["support"],
        )
    if kind == "skinny":
        return SkinnyPattern(
            graph=graph_from_record(record["graph"]),
            diameter=list(record["diameter"]),
            embeddings=[
                Embedding(
                    mapping=tuple(tuple(pair) for pair in mapping),
                    graph_index=graph_index,
                )
                for graph_index, mapping in record["embeddings"]
            ],
            support=record["support"],
        )
    if kind == "graph":
        return graph_from_record(record["graph"])
    raise CodecError(f"unknown index-store record type {kind!r}")


def pattern_metadata(obj: object) -> Dict[str, object]:
    """The indexable metadata of one storable object (no body required back).

    Returns a dict with exactly the keys the corpus-query surface filters
    and orders on: ``kind``, ``support`` (``None`` for bare graphs, which
    carry no frequency), ``size`` (number of edges), ``num_vertices``,
    ``labels`` (sorted, de-duplicated vertex labels), ``diameter_len`` and
    ``diameter_labels`` (``None`` when the object has no distinguished
    diameter).  The SQLite backend persists these as columns; the JSONL
    scan recomputes them per decoded object — one function, two backends,
    identical answers.

    Examples
    --------
    >>> meta = pattern_metadata(PathPattern(("a", "b", "a"), (), support=3))
    >>> (meta["kind"], meta["support"], meta["size"], meta["labels"])
    ('path', 3, 2, ('a', 'b'))
    >>> graph = LabeledGraph()
    >>> _ = graph.add_vertex(0, "x")
    >>> pattern_metadata(graph)["support"] is None
    True
    """
    if isinstance(obj, PathPattern):
        labels = tuple(str(label) for label in obj.labels)
        return {
            "kind": "path",
            "support": obj.support,
            "size": obj.length,
            "num_vertices": len(labels),
            "labels": tuple(sorted(set(labels))),
            "diameter_len": obj.length,
            "diameter_labels": labels,
        }
    if isinstance(obj, SkinnyPattern):
        vertex_labels = tuple(
            str(obj.graph.label_of(vertex)) for vertex in obj.graph.vertices()
        )
        return {
            "kind": "skinny",
            "support": obj.support,
            "size": obj.graph.num_edges(),
            "num_vertices": obj.graph.num_vertices(),
            "labels": tuple(sorted(set(vertex_labels))),
            "diameter_len": obj.diameter_length,
            "diameter_labels": obj.diameter_labels(),
        }
    if isinstance(obj, LabeledGraph):
        vertex_labels = tuple(str(obj.label_of(vertex)) for vertex in obj.vertices())
        return {
            "kind": "graph",
            "support": None,
            "size": obj.num_edges(),
            "num_vertices": obj.num_vertices(),
            "labels": tuple(sorted(set(vertex_labels))),
            "diameter_len": None,
            "diameter_labels": None,
        }
    raise CodecError(
        f"cannot extract metadata from object of type {type(obj).__name__}"
    )
