"""Incremental maintenance of the pattern index under graph edits.

Rebuilding Stage 1 after every data edit would repay the whole offline cost
the index exists to amortise.  Following the dynamic-query-maintenance idea
(Berkholz et al., *Answering FO+MOD queries under updates*), this module
repairs only the index entries whose minimal-pattern embeddings touch an
edge delta:

* **remove_edge** — occurrences are only destroyed, never created: every
  stored occurrence whose vertex sequence traverses the removed edge is
  dropped, supports are recomputed, and patterns falling below σ are evicted.
* **add_edge** — existing occurrences stay valid; the only *new* length-l
  occurrences are simple paths through the new edge, which are enumerated
  locally (DFS out of both endpoints).  They either extend an indexed
  pattern's embedding list or — when a label sequence becomes frequent for
  the first time — trigger a *targeted* count of exactly that label sequence,
  never a full re-mine.

Entries whose embeddings never touch the delta are migrated to the new
dataset fingerprint untouched; entries with parameters the maintainer does
not understand (including cap-truncated Stage-1 entries) are invalidated
(deleted) so a cold rebuild stays correct.

Exactness contract: repair counts occurrences *exhaustively* (it matches
``brute_force_frequent_paths``), which is the same object DiamMine computes
in its default :class:`repro.core.diammine.Stage1Mode.EXACT` mode — so for
exact-mode entries, incremental repair and a full rebuild are
byte-comparable (the equivalence is pinned by
``tests/index/test_incremental.py``).  Entries built with the opt-in
heuristic ``stage1_mode: "pruned"`` (or legacy entries that predate the
mode field, which were built pruned) are *invalidated* rather than
repaired: a pruned rebuild can miss frequent paths an exhaustive repair
would keep, and the store must never hold an entry its own build mode
cannot reproduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.database import (
    EdgeDelta,
    GraphDelta,
    MiningContext,
    SupportMeasure,
    apply_edge_delta,
    validate_delta,
)
from repro.core.diammine import DirectedOccurrence, _occurrence_key
from repro.core.orders import canonical_label_orientation
from repro.core.patterns import PathPattern
from repro.graph.io import dataset_fingerprint
from repro.graph.labeled_graph import LabeledGraph, VertexId
from repro.index.store import IndexEntry, PatternStore, StoreKey
from repro.obs.metrics import MetricsRegistry, default_registry

SKINNY_CONSTRAINT_ID = "skinny"


# --------------------------------------------------------------------- #
# local path enumeration around a delta edge
# --------------------------------------------------------------------- #
def paths_through_edge(
    graph: LabeledGraph, u: VertexId, v: VertexId, length: int
) -> List[Tuple[VertexId, ...]]:
    """Every simple path with exactly ``length`` edges traversing edge ``{u, v}``.

    The search is local: DFS of depth < ``length`` out of each endpoint, so
    the cost depends on the delta edge's neighbourhood, not on |G|.  Each
    undirected path is returned once (deduplicated across orientations).

    >>> from repro.graph.labeled_graph import build_graph
    >>> graph = build_graph({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
    >>> paths_through_edge(graph, 0, 1, 2)
    [(0, 1, 2)]
    """
    if not graph.has_edge(u, v):
        raise KeyError(f"edge ({u}, {v}) is not in the graph")

    def arms(start: VertexId, blocked: Set[VertexId], depth: int) -> List[Tuple[VertexId, ...]]:
        """Simple paths of ``depth`` edges ending at ``start`` avoiding ``blocked``."""
        if depth == 0:
            return [(start,)]
        collected: List[Tuple[VertexId, ...]] = []
        stack: List[Tuple[Tuple[VertexId, ...], Set[VertexId]]] = [((start,), {start} | blocked)]
        while stack:
            path, visited = stack.pop()
            if len(path) == depth + 1:
                collected.append(tuple(reversed(path)))
                continue
            for neighbor in graph.neighbors(path[-1]):
                if neighbor not in visited:
                    stack.append((path + (neighbor,), visited | {neighbor}))
        return collected

    seen: Set[Tuple[VertexId, ...]] = set()
    results: List[Tuple[VertexId, ...]] = []
    for head_len in range(length):
        tail_len = length - 1 - head_len
        for head in arms(u, {v}, head_len):
            head_set = set(head)
            for tail_path in arms(v, head_set, tail_len):
                candidate = head + tuple(reversed(tail_path))
                backward = tuple(reversed(candidate))
                key = candidate if candidate <= backward else backward
                if key not in seen:
                    seen.add(key)
                    results.append(candidate)
    return results


def find_labeled_path_occurrences(
    context: MiningContext, labels: Tuple[str, ...]
) -> List[DirectedOccurrence]:
    """All occurrences of one specific label sequence, canonically oriented.

    This is the targeted counterpart of a full DiamMine run: it enumerates
    only paths matching ``labels`` (guided DFS from vertices carrying the
    first label), which incremental repair uses to admit label sequences that
    became frequent through an added edge.

    >>> from repro.core.database import MiningContext
    >>> from repro.graph.labeled_graph import graph_from_paths
    >>> graph = graph_from_paths([list("ab"), list("ab")])
    >>> find_labeled_path_occurrences(MiningContext(graph, 2), ("a", "b"))
    [(0, (0, 1)), (0, (2, 3))]
    """
    canonical = canonical_label_orientation(labels)
    occurrences: Dict[Tuple[int, Tuple[VertexId, ...]], DirectedOccurrence] = {}

    def orient(graph_index: int, vertices: Tuple[VertexId, ...]) -> None:
        occurrence = (graph_index, vertices)
        occurrences.setdefault(_occurrence_key(occurrence), occurrence)

    for direction in {canonical, tuple(reversed(canonical))}:
        for graph_index in context.graph_indices():
            graph = context.graph(graph_index)
            starts = [
                vertex
                for vertex in graph.vertices()
                if str(graph.label_of(vertex)) == direction[0]
            ]
            for start in starts:
                stack: List[Tuple[VertexId, ...]] = [(start,)]
                while stack:
                    path = stack.pop()
                    if len(path) == len(direction):
                        forward = path if direction == canonical else tuple(reversed(path))
                        orient(graph_index, forward)
                        continue
                    next_label = direction[len(path)]
                    for neighbor in graph.neighbors(path[-1]):
                        if neighbor in path:
                            continue
                        if str(graph.label_of(neighbor)) == next_label:
                            stack.append(path + (neighbor,))
    return sorted(occurrences.values())


# --------------------------------------------------------------------- #
# per-entry repair
# --------------------------------------------------------------------- #
def _occurrence_uses_edge(
    occurrence: DirectedOccurrence, operation: EdgeDelta
) -> bool:
    graph_index, vertices = occurrence
    if graph_index != operation.graph_index:
        return False
    edge = frozenset((operation.u, operation.v))
    return any(
        frozenset((a, b)) == edge for a, b in zip(vertices, vertices[1:])
    )


@dataclass
class EntryRepair:
    """Outcome of repairing one entry against one operation."""

    patterns: List[PathPattern]
    changed: bool
    patterns_dropped: int = 0
    patterns_added: int = 0


def repair_path_entry(
    patterns: Sequence[PathPattern],
    operation: EdgeDelta,
    context: MiningContext,
    length: int,
) -> EntryRepair:
    """Repair one Stage-1 entry (frequent length-``length`` paths) for one edit.

    ``context`` must already reflect the data *after* the operation.
    """
    if operation.op == "remove":
        kept: List[PathPattern] = []
        changed = False
        dropped = 0
        for pattern in patterns:
            surviving = tuple(
                occurrence
                for occurrence in pattern.embeddings
                if not _occurrence_uses_edge(occurrence, operation)
            )
            if len(surviving) == len(pattern.embeddings):
                kept.append(pattern)
                continue
            changed = True
            support = context.support_of_path_occurrences(surviving, labels=pattern.labels)
            if context.is_frequent(support):
                kept.append(
                    PathPattern(pattern.labels, tuple(sorted(surviving)), support)
                )
            else:
                dropped += 1
        return EntryRepair(kept, changed, patterns_dropped=dropped)

    # "add": new occurrences can only run through the new edge.
    graph = context.graph(operation.graph_index)
    new_paths = paths_through_edge(graph, operation.u, operation.v, length)
    if not new_paths:
        return EntryRepair(list(patterns), False)

    by_labels: Dict[Tuple[str, ...], List[DirectedOccurrence]] = {}
    for vertices in new_paths:
        labels = tuple(str(graph.label_of(vertex)) for vertex in vertices)
        canonical = canonical_label_orientation(labels)
        oriented = vertices if labels == canonical else tuple(reversed(vertices))
        by_labels.setdefault(canonical, []).append((operation.graph_index, oriented))

    indexed: Dict[Tuple[str, ...], PathPattern] = {
        pattern.labels: pattern for pattern in patterns
    }
    changed = False
    added = 0
    for labels, occurrences in by_labels.items():
        existing = indexed.get(labels)
        if existing is not None:
            merged: Dict = {
                _occurrence_key(occurrence): occurrence
                for occurrence in existing.embeddings
            }
            before = len(merged)
            for occurrence in occurrences:
                merged.setdefault(_occurrence_key(occurrence), occurrence)
            if len(merged) == before:
                continue
            support = context.support_of_path_occurrences(merged.values(), labels=labels)
            indexed[labels] = PathPattern(
                labels, tuple(sorted(merged.values())), support
            )
            changed = True
        else:
            # A label sequence not in the index was infrequent before the
            # edit; count exactly this sequence (targeted, not a re-mine).
            all_occurrences = find_labeled_path_occurrences(context, labels)
            support = context.support_of_path_occurrences(all_occurrences, labels=labels)
            if context.is_frequent(support):
                indexed[labels] = PathPattern(
                    labels, tuple(sorted(all_occurrences)), support
                )
                changed = True
                added += 1
    repaired = [indexed[labels] for labels in sorted(indexed)]
    return EntryRepair(repaired, changed, patterns_added=added)


# --------------------------------------------------------------------- #
# store-level maintenance
# --------------------------------------------------------------------- #
@dataclass
class RepairReport:
    """What an :class:`IndexMaintainer.apply_delta` call did."""

    old_fingerprint: str = ""
    new_fingerprint: str = ""
    operations: int = 0
    entries_seen: int = 0
    entries_migrated: int = 0
    entries_repaired: int = 0
    entries_invalidated: int = 0
    patterns_dropped: int = 0
    patterns_added: int = 0


class IndexMaintainer:
    """Keeps a :class:`PatternStore` consistent with an evolving dataset.

    The maintainer owns the coupling between data edits and index identity:
    every operation re-fingerprints the dataset and re-keys the surviving
    entries, so a stale index can never satisfy a lookup for the new data.

    ``constraint_id`` may be a single id or a sequence of ids: every named
    constraint whose Stage-1 entries are frequent-path records (the skinny
    constraint and the l-long path constraint of :mod:`repro.api`) is
    repaired under the same rules, since their entries share the
    ``{length, min_support, support_measure}`` parameter scheme.

    ``metrics`` (optional) is the registry each repair batch reports into
    (``repro_deltas_total``, ``repro_delta_repair_seconds``); defaults to
    the process-wide registry.
    """

    def __init__(
        self,
        store: PatternStore,
        constraint_id: Union[str, Sequence[str]] = SKINNY_CONSTRAINT_ID,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._store = store
        self._constraint_ids: Tuple[str, ...] = (
            (constraint_id,) if isinstance(constraint_id, str) else tuple(constraint_id)
        )
        self._metrics = metrics if metrics is not None else default_registry()

    def apply_delta(
        self,
        graphs: Sequence[LabeledGraph],
        delta: Union[GraphDelta, Sequence[EdgeDelta]],
    ) -> RepairReport:
        """Apply edits to ``graphs`` in place and repair the store's entries.

        The whole batch is validated before the first mutation (a bad
        operation raises with graphs and store untouched).  Entries are read
        once, repaired in memory across all operations, and written back once
        under the final fingerprint — one disk write per surviving entry per
        batch, however many operations the delta holds.

        Removing an edge drops the occurrences that traversed it; a pattern
        whose support falls below σ is evicted from the repaired entry:

        >>> from repro.core.database import EdgeDelta, MiningContext
        >>> from repro.core.diammine import DiamMine
        >>> from repro.graph.io import dataset_fingerprint
        >>> from repro.graph.labeled_graph import graph_from_paths
        >>> from repro.index.store import IndexEntry, MemoryPatternStore, StoreKey
        >>> graphs = [graph_from_paths([list("abc"), list("abc")])]
        >>> context = MiningContext(graphs[0], 2)
        >>> parameter = {
        ...     "length": 2,
        ...     "min_support": 2,
        ...     "support_measure": context.support_measure.value,
        ...     "stage1_mode": "exact",
        ... }
        >>> store = MemoryPatternStore()
        >>> key = StoreKey.make(dataset_fingerprint(graphs), "skinny", parameter)
        >>> store.put(IndexEntry(key=key, patterns=DiamMine(context).mine(2)))
        >>> [(p.labels, p.support) for p in store.get(key).patterns]
        [(('a', 'b', 'c'), 2)]
        >>> maintainer = IndexMaintainer(store)
        >>> report = maintainer.apply_delta(graphs, [EdgeDelta.remove_edge(0, 1)])
        >>> (report.entries_repaired, report.patterns_dropped)
        (1, 1)

        The surviving entry is re-keyed under the post-delta fingerprint, so
        a stale lookup can never be satisfied:

        >>> store.get(key) is None
        True
        >>> store.keys()[0].fingerprint == dataset_fingerprint(graphs)
        True
        """
        started = time.perf_counter()
        operations = list(delta)
        old_fingerprint = dataset_fingerprint(graphs)
        report = RepairReport(
            old_fingerprint=old_fingerprint,
            new_fingerprint=old_fingerprint,
            operations=len(operations),
        )
        if not operations:
            return report
        validate_delta(graphs, operations)

        stale_keys = [
            key
            for key in self._store.keys()
            if key.fingerprint == old_fingerprint
            and key.constraint_id in self._constraint_ids
        ]
        live: List[Dict] = []  # key, entry, length/σ/measure, patterns, changed
        for key in stale_keys:
            entry = self._store.get(key)
            if entry is None:
                continue
            report.entries_seen += 1
            parameter = key.decoded_parameter()
            try:
                if set(parameter) != {
                    "length",
                    "min_support",
                    "support_measure",
                    "stage1_mode",
                }:
                    # Extra keys (e.g. a max_paths_per_length cap marking a
                    # deliberately truncated entry) change the entry's
                    # semantics in ways repair cannot honour; entries
                    # *missing* stage1_mode predate the exactness contract
                    # and were built with heuristic pruning.
                    raise ValueError("unknown parameter keys")
                if parameter["stage1_mode"] != "exact":
                    # Pruned builds are heuristic; repair (exhaustive) would
                    # disagree with a pruned rebuild, so the entry must go.
                    raise ValueError("non-exact stage1_mode")
                record = {
                    "key": key,
                    "entry": entry,
                    "length": int(parameter["length"]),
                    "min_support": int(parameter["min_support"]),
                    "measure": SupportMeasure(parameter["support_measure"]),
                    "patterns": entry.patterns,
                    "changed": False,
                }
            except (TypeError, KeyError, ValueError):
                # Unknown parameter scheme: invalidate so a rebuild stays correct.
                report.entries_invalidated += 1
                self._store.delete(key)
                continue
            live.append(record)

        for operation in operations:
            apply_edge_delta(graphs, operation)
            for record in live:
                context = MiningContext(
                    list(graphs), record["min_support"], record["measure"]
                )
                repair = repair_path_entry(
                    record["patterns"], operation, context, record["length"]
                )
                record["patterns"] = repair.patterns
                record["changed"] = record["changed"] or repair.changed
                report.patterns_dropped += repair.patterns_dropped
                report.patterns_added += repair.patterns_added

        new_fingerprint = dataset_fingerprint(graphs)
        report.new_fingerprint = new_fingerprint
        for record in live:
            key = record["key"]
            entry = record["entry"]
            if record["changed"]:
                report.entries_repaired += 1
            else:
                report.entries_migrated += 1
            self._store.delete(key)
            self._store.put(
                IndexEntry(
                    key=StoreKey(new_fingerprint, key.constraint_id, key.parameter),
                    patterns=record["patterns"],
                    build_seconds=entry.build_seconds,
                    created_at=entry.created_at,
                )
            )
        self._metrics.counter(
            "repro_deltas_total", "Delta batches applied through the index maintainer"
        ).inc()
        self._metrics.histogram(
            "repro_delta_repair_seconds", "In-place index repair latency per delta batch"
        ).observe(time.perf_counter() - started)
        return report
