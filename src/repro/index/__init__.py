"""Persistent minimal-pattern index: store backends, codec, incremental repair.

This package turns the paper's offline Stage 1 (Figure 2) into a durable
subsystem:

* :mod:`repro.index.store` — the abstract :class:`PatternStore` with
  in-memory and on-disk (JSON-lines, versioned, atomic) backends, keyed by
  ``(dataset fingerprint, constraint id, parameter)``, plus the corpus-query
  surface (:meth:`PatternStore.query`, :class:`PatternMatch`);
* :mod:`repro.index.sqlite_store` — the relational backend: pattern
  metadata in indexed SQLite columns (WAL mode for concurrent readers) so
  corpus queries never deserialise non-matching bodies;
* :mod:`repro.index.backends` — backend selection
  (``--backend jsonl|sqlite``, ``REPRO_STORE_BACKEND``, on-disk detection)
  behind one :func:`open_pattern_store` opener;
* :mod:`repro.index.codec` — lossless record serialisation for minimal
  patterns and their embeddings, plus the shared
  :func:`pattern_metadata` extraction both backends filter on;
* :mod:`repro.index.incremental` — delta-driven repair so edge edits do not
  force a full Stage-1 rebuild.
"""

from repro.index.backends import (
    BACKEND_ENV_VAR,
    STORE_BACKENDS,
    detect_store_backend,
    open_pattern_store,
    resolve_store_backend,
)
from repro.index.codec import (
    CodecError,
    decode_count,
    decode_record,
    encode_record,
    pattern_metadata,
)
from repro.index.incremental import (
    SKINNY_CONSTRAINT_ID,
    IndexMaintainer,
    RepairReport,
    find_labeled_path_occurrences,
    paths_through_edge,
    repair_path_entry,
)
from repro.index.sqlite_store import SqlitePatternStore
from repro.index.store import (
    FORMAT_VERSION,
    DiskPatternStore,
    IndexEntry,
    MemoryPatternStore,
    PatternMatch,
    PatternStore,
    SnapshotStoreView,
    StoreFormatError,
    StoreKey,
    decode_parameter,
    encode_parameter,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "CodecError",
    "DiskPatternStore",
    "FORMAT_VERSION",
    "IndexEntry",
    "IndexMaintainer",
    "MemoryPatternStore",
    "PatternMatch",
    "PatternStore",
    "RepairReport",
    "SKINNY_CONSTRAINT_ID",
    "STORE_BACKENDS",
    "SnapshotStoreView",
    "SqlitePatternStore",
    "StoreFormatError",
    "StoreKey",
    "decode_count",
    "decode_parameter",
    "decode_record",
    "detect_store_backend",
    "encode_parameter",
    "encode_record",
    "find_labeled_path_occurrences",
    "open_pattern_store",
    "paths_through_edge",
    "pattern_metadata",
    "repair_path_entry",
]
