"""Persistent minimal-pattern index: store backends, codec, incremental repair.

This package turns the paper's offline Stage 1 (Figure 2) into a durable
subsystem:

* :mod:`repro.index.store` — the abstract :class:`PatternStore` with
  in-memory and on-disk (JSON-lines, versioned, atomic) backends, keyed by
  ``(dataset fingerprint, constraint id, parameter)``;
* :mod:`repro.index.codec` — lossless record serialisation for minimal
  patterns and their embeddings;
* :mod:`repro.index.incremental` — delta-driven repair so edge edits do not
  force a full Stage-1 rebuild.
"""

from repro.index.codec import CodecError, decode_record, encode_record
from repro.index.incremental import (
    SKINNY_CONSTRAINT_ID,
    IndexMaintainer,
    RepairReport,
    find_labeled_path_occurrences,
    paths_through_edge,
    repair_path_entry,
)
from repro.index.store import (
    FORMAT_VERSION,
    DiskPatternStore,
    IndexEntry,
    MemoryPatternStore,
    PatternStore,
    SnapshotStoreView,
    StoreFormatError,
    StoreKey,
    decode_parameter,
    encode_parameter,
)

__all__ = [
    "CodecError",
    "DiskPatternStore",
    "FORMAT_VERSION",
    "IndexEntry",
    "IndexMaintainer",
    "MemoryPatternStore",
    "PatternStore",
    "RepairReport",
    "SKINNY_CONSTRAINT_ID",
    "SnapshotStoreView",
    "StoreFormatError",
    "StoreKey",
    "decode_parameter",
    "decode_record",
    "encode_parameter",
    "encode_record",
    "find_labeled_path_occurrences",
    "paths_through_edge",
    "repair_path_entry",
]
