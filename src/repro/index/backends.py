"""Pattern-store backend selection: jsonl vs sqlite, one opener for both.

Everything that persists a pattern index — the CLI verbs, ``repro serve``,
the engine factories — goes through :func:`open_pattern_store` so backend
choice is decided in exactly one place.  Resolution order:

1. an explicit ``backend=`` argument (``"jsonl"`` or ``"sqlite"``);
2. what is already on disk at the store root (a ``patterns.sqlite``
   database or ``*.jsonl`` entry files) — an existing store is never
   silently reopened under the other backend, whatever the environment
   says;
3. the ``REPRO_STORE_BACKEND`` environment variable, which therefore only
   picks the format of *fresh* stores (this is what lets a CI leg run the
   whole suite under ``REPRO_STORE_BACKEND=sqlite`` without corrupting
   fixtures that build a JSONL store and reopen it by path);
4. the default, ``"jsonl"``.

Examples
--------
>>> resolve_store_backend("sqlite", env={})
'sqlite'
>>> resolve_store_backend(None, env={"REPRO_STORE_BACKEND": "sqlite"})
'sqlite'
>>> resolve_store_backend(None, env={})
'jsonl'
>>> resolve_store_backend("mongodb", env={})
Traceback (most recent call last):
    ...
ValueError: unknown store backend 'mongodb'; expected one of ['jsonl', 'sqlite']
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Optional

from repro.index.sqlite_store import DB_FILENAME, SqlitePatternStore
from repro.index.store import DiskPatternStore, PathLike, PatternStore
from repro.obs.metrics import MetricsRegistry

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_STORE_BACKEND"

#: The persistent backends ``open_pattern_store`` can produce.
STORE_BACKENDS = ("jsonl", "sqlite")


def _validate(backend: str, source: str) -> str:
    backend = backend.strip().lower()
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r}{source}; "
            f"expected one of {list(STORE_BACKENDS)}"
        )
    return backend


def detect_store_backend(root: PathLike) -> Optional[str]:
    """Which backend already owns ``root``, if any.

    ``"sqlite"`` when the root is (or contains) a SQLite database,
    ``"jsonl"`` when JSONL entry files exist under it, ``None`` for a
    fresh/empty root.
    """
    path = Path(root)
    if path.suffix == ".sqlite" or (path / DB_FILENAME).exists():
        return "sqlite"
    if next(path.glob("*/*/*.jsonl"), None) is not None:
        return "jsonl"
    return None


def resolve_store_backend(
    backend: Optional[str] = None,
    root: Optional[PathLike] = None,
    env: Optional[Mapping[str, str]] = None,
) -> str:
    """Apply the resolution order documented in the module docstring."""
    if backend:
        return _validate(backend, "")
    if root is not None:
        detected = detect_store_backend(root)
        if detected is not None:
            return detected
    env = os.environ if env is None else env
    from_env = env.get(BACKEND_ENV_VAR)
    if from_env:
        return _validate(from_env, f" (from ${BACKEND_ENV_VAR})")
    return "jsonl"


def open_pattern_store(
    root: PathLike,
    backend: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    env: Optional[Mapping[str, str]] = None,
) -> PatternStore:
    """Open (creating if needed) the persistent store at ``root``.

    Examples
    --------
    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> type(open_pattern_store(root, backend="jsonl")).__name__
    'DiskPatternStore'
    >>> store = open_pattern_store(root, backend="sqlite")
    >>> type(store).__name__
    'SqlitePatternStore'
    >>> store.close()
    >>> reopened = open_pattern_store(root)  # detects the existing database
    >>> type(reopened).__name__
    'SqlitePatternStore'
    >>> reopened.close()
    """
    resolved = resolve_store_backend(backend, root=root, env=env)
    if resolved == "sqlite":
        return SqlitePatternStore(root, metrics=metrics)
    return DiskPatternStore(root, metrics=metrics)
