"""SQLite relational backend for the pattern-index store.

The JSONL backend (:class:`repro.index.store.DiskPatternStore`) answers a
corpus query by decoding every entry it holds; this backend persists the
*metadata* of every pattern — kind, support, size, vertex count, labels,
diameter descriptor — as indexed columns at ``put`` time, so
:meth:`SqlitePatternStore.query` filters and orders inside SQLite and only
deserialises the pattern bodies that actually match.  Bodies stay in the
JSONL codec's record form (:mod:`repro.index.codec`), stored one JSON text
per row, so the two backends remain byte-compatible at the object level.

Concurrency model: the database runs in WAL (write-ahead log) mode, so any
number of readers see consistent snapshots while one writer appends — the
SQLite analogue of the JSONL backend's ``os.replace`` publication protocol.
Every ``get`` wraps its two SELECTs (entry header, pattern bodies) in one
deferred read transaction, so a concurrent ``put`` can never produce a torn
entry.  Connections are per-thread; a single store instance may be shared
across threads.

Schema (see ``docs/STORE.md`` for the diagram and index rationale)::

    meta(key PRIMARY KEY, value)                 -- format name + version
    entries(entry_id, fingerprint, constraint_id, parameter,
            num_patterns, build_seconds, created_at,
            UNIQUE(fingerprint, constraint_id, parameter))
    patterns(pattern_id, entry_id -> entries, position, kind,
             support, size, num_vertices, diameter_len, diameter_labels,
             labels, body, UNIQUE(entry_id, position))
    pattern_labels(pattern_id -> patterns, label,
                   PRIMARY KEY(pattern_id, label))

Examples
--------
>>> import tempfile
>>> from repro.core.patterns import PathPattern
>>> from repro.index.store import IndexEntry, StoreKey
>>> root = tempfile.mkdtemp()
>>> store = SqlitePatternStore(root)
>>> key = StoreKey.make("fp", "path", {"length": 2})
>>> store.put(IndexEntry(key=key, patterns=[PathPattern(("a", "b"), (), support=3)]))
>>> [m.support for m in store.query(labels_contain="a")]
[3]
>>> store.get(key).key == key
True
>>> store.close()
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.index.codec import decode_record, encode_record, pattern_metadata
from repro.index.store import (
    FORMAT_NAME,
    IndexEntry,
    PathLike,
    PatternMatch,
    PatternStore,
    StoreFormatError,
    StoreKey,
    decode_parameter,
    normalise_query_filters,
    observe_query_metrics,
)
from repro.obs.metrics import MetricsRegistry, default_registry

#: Database file name inside a store root directory.
DB_FILENAME = "patterns.sqlite"

#: Schema version recorded in the ``meta`` table; bump on breaking changes.
SQLITE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    entry_id      INTEGER PRIMARY KEY,
    fingerprint   TEXT NOT NULL,
    constraint_id TEXT NOT NULL,
    parameter     TEXT NOT NULL,
    num_patterns  INTEGER NOT NULL,
    build_seconds REAL NOT NULL DEFAULT 0.0,
    created_at    REAL NOT NULL DEFAULT 0.0,
    UNIQUE (fingerprint, constraint_id, parameter)
);
CREATE TABLE IF NOT EXISTS patterns (
    pattern_id      INTEGER PRIMARY KEY,
    entry_id        INTEGER NOT NULL REFERENCES entries(entry_id) ON DELETE CASCADE,
    position        INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    support         INTEGER,
    size            INTEGER NOT NULL,
    num_vertices    INTEGER NOT NULL,
    diameter_len    INTEGER,
    diameter_labels TEXT,
    labels          TEXT NOT NULL,
    body            TEXT NOT NULL,
    UNIQUE (entry_id, position)
);
CREATE TABLE IF NOT EXISTS pattern_labels (
    pattern_id INTEGER NOT NULL REFERENCES patterns(pattern_id) ON DELETE CASCADE,
    label      TEXT NOT NULL,
    PRIMARY KEY (pattern_id, label)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_patterns_support ON patterns(support);
CREATE INDEX IF NOT EXISTS idx_patterns_size ON patterns(size);
CREATE INDEX IF NOT EXISTS idx_patterns_num_vertices ON patterns(num_vertices);
CREATE INDEX IF NOT EXISTS idx_patterns_entry ON patterns(entry_id, position);
CREATE INDEX IF NOT EXISTS idx_pattern_labels_label ON pattern_labels(label, pattern_id);
"""

_MATCH_COLUMNS = (
    "e.fingerprint, e.constraint_id, e.parameter, p.position, p.kind, p.support, "
    "p.size, p.num_vertices, p.labels, p.diameter_len, p.diameter_labels, p.body"
)


def resolve_database_path(root: PathLike) -> Path:
    """Where the database lives for a given store root.

    A root ending in ``.sqlite`` is used verbatim; anything else is treated
    as a directory holding ``patterns.sqlite`` — the same shape the JSONL
    backend uses, so ``--store DIR`` works for either backend.

    Examples
    --------
    >>> resolve_database_path("/tmp/idx").name
    'patterns.sqlite'
    >>> str(resolve_database_path("/tmp/idx/corpus.sqlite"))
    '/tmp/idx/corpus.sqlite'
    """
    path = Path(root)
    if path.suffix == ".sqlite":
        return path
    return path / DB_FILENAME


class SqlitePatternStore(PatternStore):
    """Relational :class:`PatternStore` backend with indexed corpus queries.

    ``root`` is a directory (database at ``<root>/patterns.sqlite``) or a
    ``*.sqlite`` file path.  ``metrics`` is the registry query/read/write
    latencies are published into (defaults to the process-wide one).

    The store is safe to share across threads: each thread gets its own
    WAL-mode connection.  ``close()`` releases every connection the
    instance opened.
    """

    def __init__(self, root: PathLike, metrics: Optional[MetricsRegistry] = None) -> None:
        self._path = resolve_database_path(root)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._metrics = metrics if metrics is not None else default_registry()
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._cache: Dict[StoreKey, IndexEntry] = {}
        self._initialise()

    # -------------------------------------------------------------- #
    # connection management
    # -------------------------------------------------------------- #
    @property
    def path(self) -> Path:
        """The database file."""
        return self._path

    @property
    def root(self) -> Path:
        """The store root directory (the database file's parent)."""
        return self._path.parent

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        # check_same_thread=False lets close() release connections opened
        # by other threads; each connection is still used by one thread
        # only (thread-local storage).
        connection = sqlite3.connect(
            str(self._path), timeout=10.0, isolation_level=None, check_same_thread=False
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA foreign_keys=ON")
        connection.execute("PRAGMA busy_timeout=10000")
        self._local.connection = connection
        with self._connections_lock:
            self._connections.append(connection)
        return connection

    def close(self) -> None:
        """Release every connection this instance opened."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        self._local = threading.local()

    def _initialise(self) -> None:
        connection = self._connection()
        # executescript() commits any open transaction first, so the schema
        # runs in its own implicit transaction (CREATE ... IF NOT EXISTS
        # makes it idempotent); the meta handshake then gets an explicit one.
        connection.executescript(_SCHEMA)
        connection.execute("BEGIN IMMEDIATE")
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'format'"
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('format', ?), ('version', ?)",
                    (FORMAT_NAME, str(SQLITE_SCHEMA_VERSION)),
                )
            else:
                if row[0] != FORMAT_NAME:
                    raise StoreFormatError(
                        f"{self._path}: not a {FORMAT_NAME} database (format {row[0]!r})"
                    )
                version = connection.execute(
                    "SELECT value FROM meta WHERE key = 'version'"
                ).fetchone()
                if version is None or version[0] != str(SQLITE_SCHEMA_VERSION):
                    raise StoreFormatError(
                        f"{self._path}: schema version "
                        f"{version[0] if version else None!r} is not supported "
                        f"(this build reads version {SQLITE_SCHEMA_VERSION})"
                    )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    # -------------------------------------------------------------- #
    # PatternStore interface
    # -------------------------------------------------------------- #
    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        connection = self._connection()
        started = time.perf_counter()
        # One deferred transaction covers both SELECTs, so a concurrent
        # put() can never pair an old entry header with new pattern rows
        # (the WAL analogue of the JSONL single-open-handle rule).
        connection.execute("BEGIN DEFERRED")
        try:
            row = connection.execute(
                "SELECT entry_id, num_patterns, build_seconds, created_at FROM entries "
                "WHERE fingerprint = ? AND constraint_id = ? AND parameter = ?",
                (key.fingerprint, key.constraint_id, key.parameter),
            ).fetchone()
            if row is None:
                return None
            entry_id, num_patterns, build_seconds, created_at = row
            bodies = connection.execute(
                "SELECT body FROM patterns WHERE entry_id = ? ORDER BY position",
                (entry_id,),
            ).fetchall()
        finally:
            connection.execute("COMMIT")
        patterns = [decode_record(json.loads(body)) for (body,) in bodies]
        if len(patterns) != num_patterns:
            raise StoreFormatError(
                f"{self._path}: truncated entry {key} — entries row promises "
                f"{num_patterns} patterns, {len(patterns)} rows found"
            )
        entry = IndexEntry(
            key=key, patterns=patterns, build_seconds=build_seconds, created_at=created_at
        )
        self._metrics.histogram(
            "repro_store_read_seconds", "Cold index-entry decode latency (pattern store)"
        ).observe(time.perf_counter() - started)
        self._cache[key] = entry
        return entry

    def put(self, entry: IndexEntry) -> None:
        key = entry.key
        rows = []
        for position, pattern in enumerate(entry.patterns):
            meta = pattern_metadata(pattern)
            rows.append((position, meta, json.dumps(encode_record(pattern), sort_keys=True)))
        connection = self._connection()
        started = time.perf_counter()
        connection.execute("BEGIN IMMEDIATE")
        try:
            connection.execute(
                "DELETE FROM entries WHERE fingerprint = ? AND constraint_id = ? "
                "AND parameter = ?",
                (key.fingerprint, key.constraint_id, key.parameter),
            )
            cursor = connection.execute(
                "INSERT INTO entries (fingerprint, constraint_id, parameter, num_patterns, "
                "build_seconds, created_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    key.fingerprint,
                    key.constraint_id,
                    key.parameter,
                    len(entry.patterns),
                    entry.build_seconds,
                    entry.created_at,
                ),
            )
            entry_id = cursor.lastrowid
            for position, meta, body in rows:
                cursor = connection.execute(
                    "INSERT INTO patterns (entry_id, position, kind, support, size, "
                    "num_vertices, diameter_len, diameter_labels, labels, body) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        entry_id,
                        position,
                        meta["kind"],
                        meta["support"],
                        meta["size"],
                        meta["num_vertices"],
                        meta["diameter_len"],
                        (
                            json.dumps(list(meta["diameter_labels"]))
                            if meta["diameter_labels"] is not None
                            else None
                        ),
                        json.dumps(list(meta["labels"])),
                        body,
                    ),
                )
                pattern_id = cursor.lastrowid
                connection.executemany(
                    "INSERT INTO pattern_labels (pattern_id, label) VALUES (?, ?)",
                    [(pattern_id, label) for label in meta["labels"]],
                )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        self._metrics.histogram(
            "repro_store_write_seconds", "Index-entry write-transaction latency (pattern store)"
        ).observe(time.perf_counter() - started)
        self._cache[key] = entry

    def delete(self, key: StoreKey) -> bool:
        self._cache.pop(key, None)
        connection = self._connection()
        connection.execute("BEGIN IMMEDIATE")
        try:
            cursor = connection.execute(
                "DELETE FROM entries WHERE fingerprint = ? AND constraint_id = ? "
                "AND parameter = ?",
                (key.fingerprint, key.constraint_id, key.parameter),
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        return cursor.rowcount > 0

    def keys(self) -> List[StoreKey]:
        rows = self._connection().execute(
            "SELECT fingerprint, constraint_id, parameter FROM entries "
            "ORDER BY fingerprint, constraint_id, parameter"
        ).fetchall()
        return [StoreKey(*row) for row in rows]

    def info(self) -> List[Dict]:
        """Per-entry metadata straight from the ``entries`` table (no decoding)."""
        summaries: List[Dict] = []
        rows = self._connection().execute(
            "SELECT fingerprint, constraint_id, parameter, num_patterns, build_seconds, "
            "created_at FROM entries ORDER BY fingerprint, constraint_id, parameter"
        ).fetchall()
        for fingerprint, constraint_id, parameter, num_patterns, build_seconds, created in rows:
            summaries.append(
                {
                    "fingerprint": fingerprint,
                    "constraint_id": constraint_id,
                    "parameter": decode_parameter(parameter),
                    "num_patterns": num_patterns,
                    "build_seconds": build_seconds,
                    "created_at": created,
                    "path": str(self._path),
                }
            )
        return summaries

    # -------------------------------------------------------------- #
    # indexed corpus queries
    # -------------------------------------------------------------- #
    def query(self, **filters) -> List[PatternMatch]:
        """Indexed corpus query (see :meth:`PatternStore.query` for filters).

        Filtering and ordering happen inside SQLite on the metadata
        columns; only the rows that survive the WHERE clause have their
        ``body`` JSON decoded.  Ordering matches the scan backends exactly:
        SQLite's BINARY collation is code-point order (what Python ``str``
        comparison uses) and its NULL placement — first ascending, last
        descending — is replicated by
        :func:`repro.index.store.ordered_matches`.
        """
        spec = normalise_query_filters(filters)
        started = time.perf_counter()
        sql, parameters = self._build_query(spec)
        rows = self._connection().execute(sql, parameters).fetchall()
        matches = [self._row_to_match(row) for row in rows]
        observe_query_metrics(self._metrics, time.perf_counter() - started)
        return matches

    @staticmethod
    def _build_query(spec: Dict) -> "tuple":
        conditions: List[str] = []
        parameters: List[object] = []
        if spec["kind"] is not None:
            conditions.append("p.kind = ?")
            parameters.append(spec["kind"])
        if spec["min_support"] is not None:
            conditions.append("p.support IS NOT NULL AND p.support >= ?")
            parameters.append(spec["min_support"])
        if spec["min_size"] is not None:
            conditions.append("p.size >= ?")
            parameters.append(spec["min_size"])
        if spec["max_size"] is not None:
            conditions.append("p.size <= ?")
            parameters.append(spec["max_size"])
        if spec["fingerprint"] is not None:
            conditions.append("e.fingerprint = ?")
            parameters.append(spec["fingerprint"])
        if spec["constraint_id"] is not None:
            conditions.append("e.constraint_id = ?")
            parameters.append(spec["constraint_id"])
        for label in spec["labels_contain"] or ():
            conditions.append(
                "EXISTS (SELECT 1 FROM pattern_labels pl "
                "WHERE pl.pattern_id = p.pattern_id AND pl.label = ?)"
            )
            parameters.append(label)
        sql = f"SELECT {_MATCH_COLUMNS} FROM patterns p JOIN entries e ON e.entry_id = p.entry_id"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        order = ["e.fingerprint", "e.constraint_id", "e.parameter", "p.position"]
        order_by = spec["order_by"]
        if order_by is not None:
            descending = order_by.startswith("-")
            field = order_by[1:] if descending else order_by
            # SQLite sorts NULL first ascending / last descending, which is
            # exactly what ordered_matches() does on the scan path.
            order.insert(0, f"p.{field} {'DESC' if descending else 'ASC'}")
        sql += " ORDER BY " + ", ".join(order)
        if spec["limit"] is not None:
            sql += " LIMIT ?"
            parameters.append(spec["limit"])
        return sql, parameters

    @staticmethod
    def _row_to_match(row) -> PatternMatch:
        (fingerprint, constraint_id, parameter, position, kind, support, size,
         num_vertices, labels, diameter_len, diameter_labels, body) = row
        return PatternMatch(
            key=StoreKey(fingerprint, constraint_id, parameter),
            position=position,
            kind=kind,
            support=support,
            size=size,
            num_vertices=num_vertices,
            labels=tuple(json.loads(labels)),
            diameter_len=diameter_len,
            diameter_labels=(
                tuple(json.loads(diameter_labels)) if diameter_labels is not None else None
            ),
            pattern=decode_record(json.loads(body)),
        )
