"""Persistent pattern-index store: Stage-1 results keyed by dataset content.

The paper's direct-mining architecture (Figure 2) pre-computes the *minimal
constraint-satisfying patterns* offline and serves every mining request from
that index.  This module makes the index a real subsystem instead of a plain
in-memory dict:

* :class:`StoreKey` — entries are keyed by ``(dataset fingerprint,
  constraint id, canonical parameter)``.  The fingerprint hashes graph
  *content* (see :func:`repro.graph.io.dataset_fingerprint`), so an index on
  disk can never silently be served for the wrong data.
* :class:`PatternStore` — the abstract interface; :class:`MemoryPatternStore`
  and :class:`DiskPatternStore` are the two backends.  The disk backend
  writes one JSON-lines file per entry with a versioned header line and
  atomic replace-on-write, and keeps a decoded read cache.
* ``encode_parameter`` / ``decode_parameter`` — canonical, reversible text
  encoding of constraint parameters (tuples such as SkinnyMine's ``(l, δ)``
  survive the JSON round-trip).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Union
from urllib.parse import quote

from repro.index.codec import decode_record, encode_record, pattern_metadata
from repro.obs.metrics import MetricsRegistry, default_registry

FORMAT_NAME = "repro-pattern-index"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


class StoreFormatError(ValueError):
    """Raised when an on-disk index file is corrupt or from an unknown version."""


# --------------------------------------------------------------------- #
# parameter encoding
# --------------------------------------------------------------------- #
def _tag_parameter(value):
    if isinstance(value, tuple):
        return {"__tuple__": [_tag_parameter(item) for item in value]}
    if isinstance(value, dict):
        if "__tuple__" in value:
            raise TypeError("parameter dicts may not use the reserved key '__tuple__'")
        if not all(isinstance(key, str) for key in value):
            raise TypeError("parameter dict keys must be strings")
        return {key: _tag_parameter(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"constraint parameter {value!r} is not encodable; use scalars, tuples and dicts"
    )


def _untag_parameter(value):
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_untag_parameter(item) for item in value["__tuple__"])
        return {key: _untag_parameter(item) for key, item in value.items()}
    return value


def encode_parameter(parameter: Hashable) -> str:
    """Canonical text form of a constraint parameter (reversible)."""
    return json.dumps(_tag_parameter(parameter), sort_keys=True, separators=(",", ":"))


def decode_parameter(text: str) -> Hashable:
    """Inverse of :func:`encode_parameter`."""
    return _untag_parameter(json.loads(text))


# --------------------------------------------------------------------- #
# keys and entries
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StoreKey:
    """Identity of one index entry: which data, which constraint, which parameter.

    The parameter is stored in its canonical text encoding so equal
    parameters always produce equal keys; for the path-indexed constraints
    it includes the Stage-1 exactness mode, so exact and pruned entries
    never alias (see ``docs/CORRECTNESS.md``).

    Examples
    --------
    >>> key = StoreKey.make("fp", "skinny", {"length": 5, "min_support": 2,
    ...                                      "support_measure": "embeddings",
    ...                                      "stage1_mode": "exact"})
    >>> key.decoded_parameter()["stage1_mode"]
    'exact'
    >>> StoreKey.make("fp", "skinny", (5, 1)).decoded_parameter()
    (5, 1)
    """

    fingerprint: str
    constraint_id: str
    parameter: str  # canonical text from encode_parameter

    @classmethod
    def make(cls, fingerprint: str, constraint_id: str, parameter: Hashable) -> "StoreKey":
        return cls(fingerprint, constraint_id, encode_parameter(parameter))

    def decoded_parameter(self) -> Hashable:
        return decode_parameter(self.parameter)


@dataclass
class IndexEntry:
    """One stored Stage-1 result: minimal patterns plus build accounting."""

    key: StoreKey
    patterns: List[object]
    build_seconds: float = 0.0
    created_at: float = field(default_factory=time.time)


# --------------------------------------------------------------------- #
# corpus queries
# --------------------------------------------------------------------- #
#: Fields corpus queries may order on (prefix with ``-`` for descending).
ORDERABLE_FIELDS = ("support", "size", "num_vertices")

#: Every keyword :meth:`PatternStore.query` understands.
QUERY_FILTERS = (
    "labels_contain",
    "min_support",
    "min_size",
    "max_size",
    "kind",
    "constraint_id",
    "fingerprint",
    "order_by",
    "limit",
)


@dataclass(frozen=True)
class PatternMatch:
    """One corpus-query hit: a stored pattern plus its indexed metadata.

    ``key``/``position`` locate the pattern inside its store entry;
    the metadata fields mirror :func:`repro.index.codec.pattern_metadata`
    exactly, whichever backend produced the match.  ``pattern`` is the
    decoded object — on the SQLite backend only *matching* rows are ever
    decoded, which is the backend's reason to exist.
    """

    key: StoreKey
    position: int
    kind: str
    support: Optional[int]
    size: int
    num_vertices: int
    labels: tuple
    diameter_len: Optional[int]
    diameter_labels: Optional[tuple]
    pattern: object

    def to_dict(self, include_pattern: bool = False) -> Dict:
        """JSON-compatible form (the ``repro index query --json`` row)."""
        payload = {
            "fingerprint": self.key.fingerprint,
            "constraint_id": self.key.constraint_id,
            "parameter": self.key.decoded_parameter(),
            "position": self.position,
            "kind": self.kind,
            "support": self.support,
            "size": self.size,
            "num_vertices": self.num_vertices,
            "labels": list(self.labels),
            "diameter_len": self.diameter_len,
            "diameter_labels": (
                list(self.diameter_labels) if self.diameter_labels is not None else None
            ),
        }
        if include_pattern:
            payload["pattern"] = encode_record(self.pattern)
        return payload


def normalise_query_filters(filters: Dict) -> Dict:
    """Validate corpus-query keywords; returns a dict with every key present.

    Raises ``TypeError`` on unknown keywords and ``ValueError`` on
    malformed values, so every backend (and the CLI) rejects a bad query
    identically instead of silently ignoring a misspelt filter.
    """
    unknown = set(filters) - set(QUERY_FILTERS)
    if unknown:
        raise TypeError(
            f"unknown corpus-query filter(s) {sorted(unknown)}; "
            f"expected a subset of {list(QUERY_FILTERS)}"
        )
    spec = {name: filters.get(name) for name in QUERY_FILTERS}
    labels = spec["labels_contain"]
    if labels is not None:
        if isinstance(labels, str):
            labels = (labels,)
        labels = tuple(str(label) for label in labels)
        spec["labels_contain"] = labels
    for name in ("min_support", "min_size", "max_size", "limit"):
        value = spec[name]
        if value is not None:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"corpus-query filter {name} must be an integer")
            if name == "limit" and value < 0:
                raise ValueError("corpus-query limit must be >= 0")
    order_by = spec["order_by"]
    if order_by is not None:
        field = order_by[1:] if order_by.startswith("-") else order_by
        if field not in ORDERABLE_FIELDS:
            raise ValueError(
                f"cannot order by {order_by!r}; orderable fields are "
                f"{list(ORDERABLE_FIELDS)} (prefix with '-' for descending)"
            )
    if spec["kind"] is not None and spec["kind"] not in ("path", "skinny", "graph"):
        raise ValueError(f"unknown pattern kind {spec['kind']!r}")
    return spec


def metadata_matches(meta: Dict, spec: Dict) -> bool:
    """Does one pattern's metadata satisfy a normalised filter spec?"""
    if spec["kind"] is not None and meta["kind"] != spec["kind"]:
        return False
    if spec["min_support"] is not None:
        if meta["support"] is None or meta["support"] < spec["min_support"]:
            return False
    if spec["min_size"] is not None and meta["size"] < spec["min_size"]:
        return False
    if spec["max_size"] is not None and meta["size"] > spec["max_size"]:
        return False
    if spec["labels_contain"]:
        have = set(meta["labels"])
        if not all(label in have for label in spec["labels_contain"]):
            return False
    return True


def _key_passes(key: StoreKey, spec: Dict) -> bool:
    if spec["fingerprint"] is not None and key.fingerprint != spec["fingerprint"]:
        return False
    if spec["constraint_id"] is not None and key.constraint_id != spec["constraint_id"]:
        return False
    return True


def _entry_matches(key: StoreKey, entry: "IndexEntry", spec: Dict) -> List[PatternMatch]:
    matches: List[PatternMatch] = []
    for position, pattern in enumerate(entry.patterns):
        meta = pattern_metadata(pattern)
        if metadata_matches(meta, spec):
            matches.append(PatternMatch(key=key, position=position, pattern=pattern, **meta))
    return matches


def ordered_matches(
    matches: List[PatternMatch], order_by: Optional[str], limit: Optional[int]
) -> List[PatternMatch]:
    """Deterministic ordering shared by every backend.

    The tiebreak — ``(fingerprint, constraint_id, parameter, position)`` —
    always applies, so two backends holding the same corpus return
    byte-identical result sequences.  ``None`` metadata values (a bare
    graph's support) sort the way SQLite sorts ``NULL``: first ascending,
    last descending.
    """
    descending = bool(order_by) and order_by.startswith("-")
    field = order_by[1:] if descending else order_by

    def sort_key(match: PatternMatch):
        tie = (match.key.fingerprint, match.key.constraint_id, match.key.parameter,
               match.position)
        if field is None:
            return tie
        value = getattr(match, field)
        if descending:
            primary = (1, 0) if value is None else (0, -value)
        else:
            primary = (0, 0) if value is None else (1, value)
        return (primary,) + tie

    result = sorted(matches, key=sort_key)
    return result if limit is None else result[:limit]


def observe_query_metrics(metrics: MetricsRegistry, seconds: float) -> None:
    """Publish one corpus-query observation (shared by the disk/SQLite backends)."""
    metrics.histogram(
        "repro_store_query_seconds", "Corpus-query latency over the pattern store"
    ).observe(seconds)
    metrics.counter(
        "repro_store_queries_total", "Corpus queries answered by the pattern store"
    ).inc()


# --------------------------------------------------------------------- #
# the abstract store
# --------------------------------------------------------------------- #
class PatternStore(ABC):
    """Interface shared by the in-memory and on-disk index backends."""

    @abstractmethod
    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        """Return the entry for ``key`` or ``None``."""

    @abstractmethod
    def put(self, entry: IndexEntry) -> None:
        """Insert or replace an entry."""

    @abstractmethod
    def delete(self, key: StoreKey) -> bool:
        """Remove an entry; return whether it existed."""

    @abstractmethod
    def keys(self) -> List[StoreKey]:
        """All entry keys currently stored."""

    def __contains__(self, key: StoreKey) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def snapshot_view(self) -> "SnapshotStoreView":
        """A copy-on-write view of this store: reads fall through, writes stay private.

        This is the serving tier's snapshot-isolation primitive: each
        snapshot generation owns one view, incremental repair writes into
        the view's overlay, and readers of older generations (or of the
        base store itself) never observe those writes.  Views nest — taking
        a view of a view layers a fresh overlay on top.
        """
        return SnapshotStoreView(self)

    def clear(self) -> None:
        for key in self.keys():
            self.delete(key)

    def query(self, **filters) -> List[PatternMatch]:
        """Corpus query: every stored pattern matching the given filters.

        Filters (all optional, combined with AND):

        * ``labels_contain`` — label or iterable of labels the pattern's
          vertex-label set must include;
        * ``min_support`` — minimum support (patterns without a support,
          i.e. bare graphs, never match);
        * ``min_size`` / ``max_size`` — bounds on edge count;
        * ``kind`` — ``"path"`` / ``"skinny"`` / ``"graph"``;
        * ``fingerprint`` / ``constraint_id`` — restrict to entries of one
          dataset or constraint;
        * ``order_by`` — ``"support"``, ``"size"`` or ``"num_vertices"``,
          prefix ``-`` for descending; ties (and the unordered case) break
          on ``(fingerprint, constraint_id, parameter, position)``;
        * ``limit`` — keep only the first N after ordering.

        Every backend returns the identical :class:`PatternMatch` sequence
        for the same corpus; only the cost differs (the base implementation
        scans and decodes every entry, the SQLite backend answers from
        indexed columns).

        Examples
        --------
        >>> from repro.core.patterns import PathPattern
        >>> store = MemoryPatternStore()
        >>> key = StoreKey.make("fp", "path", {"length": 2})
        >>> store.put(IndexEntry(key=key, patterns=[
        ...     PathPattern(("a", "b", "c"), (), support=4),
        ...     PathPattern(("a", "a"), (), support=9),
        ... ]))
        >>> [m.support for m in store.query(order_by="-support")]
        [9, 4]
        >>> [m.position for m in store.query(labels_contain="b")]
        [0]
        >>> store.query(min_support=5, limit=1)[0].labels
        ('a',)
        """
        spec = normalise_query_filters(filters)
        matches: List[PatternMatch] = []
        for key in self.keys():
            if not _key_passes(key, spec):
                continue
            entry = self.get(key)
            if entry is None:
                continue
            matches.extend(_entry_matches(key, entry, spec))
        return ordered_matches(matches, spec["order_by"], spec["limit"])

    def info(self) -> List[Dict]:
        """Per-entry metadata (for ``repro index info`` and tests)."""
        summaries: List[Dict] = []
        for key in sorted(self.keys(), key=lambda k: (k.fingerprint, k.constraint_id, k.parameter)):
            entry = self.get(key)
            if entry is None:
                continue
            summaries.append(
                {
                    "fingerprint": key.fingerprint,
                    "constraint_id": key.constraint_id,
                    "parameter": key.decoded_parameter(),
                    "num_patterns": len(entry.patterns),
                    "build_seconds": entry.build_seconds,
                    "created_at": entry.created_at,
                }
            )
        return summaries


class MemoryPatternStore(PatternStore):
    """Process-local dict backend (the seed repo's behaviour, now pluggable).

    Examples
    --------
    >>> store = MemoryPatternStore()
    >>> key = StoreKey.make("fp", "path", {"length": 2})
    >>> store.put(IndexEntry(key=key, patterns=["p1", "p2"]))
    >>> len(store.get(key).patterns)
    2
    >>> store.delete(key), store.get(key)
    (True, None)
    """

    def __init__(self) -> None:
        self._entries: Dict[StoreKey, IndexEntry] = {}

    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        return self._entries.get(key)

    def put(self, entry: IndexEntry) -> None:
        self._entries[entry.key] = entry

    def delete(self, key: StoreKey) -> bool:
        return self._entries.pop(key, None) is not None

    def keys(self) -> List[StoreKey]:
        return list(self._entries)


class SnapshotStoreView(PatternStore):
    """Copy-on-write overlay over a frozen base store.

    ``get``/``keys`` consult a private overlay first and fall through to the
    base; ``put``/``delete`` only ever touch the overlay (a ``None`` overlay
    value is a tombstone).  The base store is never mutated through a view,
    so any number of views — one per snapshot generation — can share one
    base while a writer repairs the newest view in place.

    Examples
    --------
    >>> base = MemoryPatternStore()
    >>> key = StoreKey.make("fp", "path", {"length": 2})
    >>> base.put(IndexEntry(key=key, patterns=["p1"]))
    >>> view = base.snapshot_view()
    >>> view.put(IndexEntry(key=key, patterns=["p1", "p2"]))
    >>> len(view.get(key).patterns), len(base.get(key).patterns)
    (2, 1)
    >>> view.delete(key), key in view, key in base
    (True, False, True)
    """

    def __init__(self, base: PatternStore) -> None:
        self._base = base
        self._overlay: Dict[StoreKey, Optional[IndexEntry]] = {}

    @property
    def base(self) -> PatternStore:
        return self._base

    @property
    def overlay_size(self) -> int:
        """Number of keys shadowed by this view (writes plus tombstones)."""
        return len(self._overlay)

    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        if key in self._overlay:
            return self._overlay[key]
        return self._base.get(key)

    def put(self, entry: IndexEntry) -> None:
        self._overlay[entry.key] = entry

    def delete(self, key: StoreKey) -> bool:
        existed = self.get(key) is not None
        self._overlay[key] = None
        return existed

    def keys(self) -> List[StoreKey]:
        found = [key for key in self._base.keys() if key not in self._overlay]
        found.extend(key for key, entry in self._overlay.items() if entry is not None)
        return found

    def query(self, **filters) -> List[PatternMatch]:
        """Corpus query with overlay semantics.

        An untouched view delegates straight to the base store, so SQLite
        indexing keeps doing the work for read-only snapshot generations.
        Once the overlay holds writes or tombstones, the base's matches for
        shadowed keys are discarded, overlay entries are scanned in Python,
        and the combined set is re-ordered/limited — identical results to
        querying a store that had the overlay applied.
        """
        if not self._overlay:
            return self._base.query(**filters)
        spec = normalise_query_filters(filters)
        base_filters = dict(filters)
        base_filters.pop("order_by", None)
        base_filters.pop("limit", None)
        matches = [m for m in self._base.query(**base_filters) if m.key not in self._overlay]
        for key, entry in self._overlay.items():
            if entry is None or not _key_passes(key, spec):
                continue
            matches.extend(_entry_matches(key, entry, spec))
        return ordered_matches(matches, spec["order_by"], spec["limit"])


class DiskPatternStore(PatternStore):
    """JSON-lines disk backend with versioned headers and atomic writes.

    Layout: ``<root>/<fingerprint>/<constraint_id>/<param-digest>.jsonl``.
    The first line of each file is a header record carrying the format name,
    version and the full key; subsequent lines are one encoded pattern each
    (see :mod:`repro.index.codec`).  Writes land in a temporary file in the
    same directory and are published with ``os.replace``, so readers never
    observe a half-written entry.  Decoded entries are cached in memory until
    invalidated by ``put``/``delete``.

    ``metrics`` (optional) is the :class:`repro.obs.MetricsRegistry` the
    store publishes I/O latencies into — ``repro_store_read_seconds`` per
    cold entry decode and ``repro_store_write_seconds`` per ``put``;
    defaults to the process-wide registry.  Cache-served ``get`` calls are
    not observed (they cost a dict lookup).
    """

    def __init__(self, root: PathLike, metrics: Optional[MetricsRegistry] = None) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._cache: Dict[StoreKey, IndexEntry] = {}
        self._metrics = metrics if metrics is not None else default_registry()

    @property
    def root(self) -> Path:
        return self._root

    # -------------------------------------------------------------- #
    # paths
    # -------------------------------------------------------------- #
    def _path_for(self, key: StoreKey) -> Path:
        param_digest = hashlib.sha256(key.parameter.encode("utf-8")).hexdigest()[:24]
        # An empty fingerprint (allowed by MinimalPatternIndex's default) or a
        # path-hostile one must still occupy exactly one directory level, or
        # keys()/info() globbing would miss the entry.
        fingerprint_dir = quote(key.fingerprint, safe="-_.") or "_no-fingerprint"
        constraint_dir = quote(key.constraint_id, safe="-_.") or "_no-constraint"
        return self._root / fingerprint_dir / constraint_dir / f"{param_digest}.jsonl"

    # -------------------------------------------------------------- #
    # PatternStore interface
    # -------------------------------------------------------------- #
    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        path = self._path_for(key)
        if not path.exists():
            return None
        started = time.perf_counter()
        entry = self._read_entry(path, expected_key=key)
        self._metrics.histogram(
            "repro_store_read_seconds", "Cold index-entry decode latency (disk store)"
        ).observe(time.perf_counter() - started)
        self._cache[key] = entry
        return entry

    def put(self, entry: IndexEntry) -> None:
        started = time.perf_counter()
        path = self._path_for(entry.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "fingerprint": entry.key.fingerprint,
            "constraint_id": entry.key.constraint_id,
            "parameter": entry.key.parameter,
            "num_patterns": len(entry.patterns),
            "build_seconds": entry.build_seconds,
            "created_at": entry.created_at,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(encode_record(pattern), sort_keys=True) for pattern in entry.patterns
        )
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        self._metrics.histogram(
            "repro_store_write_seconds", "Index-entry encode+fsync latency (disk store)"
        ).observe(time.perf_counter() - started)
        self._cache[entry.key] = entry

    def delete(self, key: StoreKey) -> bool:
        self._cache.pop(key, None)
        path = self._path_for(key)
        if not path.exists():
            return False
        path.unlink()
        return True

    def keys(self) -> List[StoreKey]:
        found: List[StoreKey] = []
        for path in sorted(self._root.glob("*/*/*.jsonl")):
            header = self._read_header(path)
            found.append(
                StoreKey(header["fingerprint"], header["constraint_id"], header["parameter"])
            )
        return found

    def query(self, **filters) -> List[PatternMatch]:
        """Full-scan corpus query (see :meth:`PatternStore.query`), timed.

        The JSONL layout has no secondary indexes, so this decodes every
        entry that survives the key-level filters; latency lands in the
        ``repro_store_query_seconds`` histogram and each call increments
        ``repro_store_queries_total`` (same names the SQLite backend
        publishes, so dashboards compare backends directly).
        """
        started = time.perf_counter()
        matches = super().query(**filters)
        observe_query_metrics(self._metrics, time.perf_counter() - started)
        return matches

    # -------------------------------------------------------------- #
    # file parsing
    # -------------------------------------------------------------- #
    def _read_header(self, path: Path) -> Dict:
        with path.open("r", encoding="utf-8") as handle:
            return self._parse_header(path, handle.readline())

    def _parse_header(self, path: Path, first: str) -> Dict:
        try:
            header = json.loads(first)
        except json.JSONDecodeError as error:
            raise StoreFormatError(f"{path}: header is not valid JSON") from error
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise StoreFormatError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise StoreFormatError(
                f"{path}: format version {header.get('version')!r} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        return header

    def _read_entry(self, path: Path, expected_key: Optional[StoreKey] = None) -> IndexEntry:
        # Header and body come from ONE open handle: ``put`` publishes via
        # os.replace, so a single open always sees one complete file
        # version, but two opens racing a writer could pair the old
        # header's num_patterns promise with the new body (or vice versa)
        # and report a phantom truncation.
        patterns: List[object] = []
        with path.open("r", encoding="utf-8") as handle:
            header = self._parse_header(path, handle.readline())
            key = StoreKey(header["fingerprint"], header["constraint_id"], header["parameter"])
            if expected_key is not None and key != expected_key:
                raise StoreFormatError(
                    f"{path}: header key {key} does not match requested {expected_key}"
                )
            for line_number, line in enumerate(handle, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    patterns.append(decode_record(json.loads(line)))
                except (json.JSONDecodeError, KeyError, ValueError) as error:
                    raise StoreFormatError(
                        f"{path}:{line_number}: corrupt pattern record ({error})"
                    ) from error
        if len(patterns) != header.get("num_patterns", len(patterns)):
            raise StoreFormatError(
                f"{path}: truncated entry — header promises {header['num_patterns']} "
                f"patterns, file holds {len(patterns)}"
            )
        return IndexEntry(
            key=key,
            patterns=patterns,
            build_seconds=header.get("build_seconds", 0.0),
            created_at=header.get("created_at", 0.0),
        )

    def info(self) -> List[Dict]:
        summaries: List[Dict] = []
        for path in sorted(self._root.glob("*/*/*.jsonl")):
            header = self._read_header(path)
            summaries.append(
                {
                    "fingerprint": header["fingerprint"],
                    "constraint_id": header["constraint_id"],
                    "parameter": decode_parameter(header["parameter"]),
                    "num_patterns": header["num_patterns"],
                    "build_seconds": header["build_seconds"],
                    "created_at": header["created_at"],
                    "size_bytes": path.stat().st_size,
                    "path": str(path),
                }
            )
        return summaries
