"""Persistent pattern-index store: Stage-1 results keyed by dataset content.

The paper's direct-mining architecture (Figure 2) pre-computes the *minimal
constraint-satisfying patterns* offline and serves every mining request from
that index.  This module makes the index a real subsystem instead of a plain
in-memory dict:

* :class:`StoreKey` — entries are keyed by ``(dataset fingerprint,
  constraint id, canonical parameter)``.  The fingerprint hashes graph
  *content* (see :func:`repro.graph.io.dataset_fingerprint`), so an index on
  disk can never silently be served for the wrong data.
* :class:`PatternStore` — the abstract interface; :class:`MemoryPatternStore`
  and :class:`DiskPatternStore` are the two backends.  The disk backend
  writes one JSON-lines file per entry with a versioned header line and
  atomic replace-on-write, and keeps a decoded read cache.
* ``encode_parameter`` / ``decode_parameter`` — canonical, reversible text
  encoding of constraint parameters (tuples such as SkinnyMine's ``(l, δ)``
  survive the JSON round-trip).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Union
from urllib.parse import quote

from repro.index.codec import decode_record, encode_record
from repro.obs.metrics import MetricsRegistry, default_registry

FORMAT_NAME = "repro-pattern-index"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


class StoreFormatError(ValueError):
    """Raised when an on-disk index file is corrupt or from an unknown version."""


# --------------------------------------------------------------------- #
# parameter encoding
# --------------------------------------------------------------------- #
def _tag_parameter(value):
    if isinstance(value, tuple):
        return {"__tuple__": [_tag_parameter(item) for item in value]}
    if isinstance(value, dict):
        if "__tuple__" in value:
            raise TypeError("parameter dicts may not use the reserved key '__tuple__'")
        if not all(isinstance(key, str) for key in value):
            raise TypeError("parameter dict keys must be strings")
        return {key: _tag_parameter(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"constraint parameter {value!r} is not encodable; use scalars, tuples and dicts"
    )


def _untag_parameter(value):
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_untag_parameter(item) for item in value["__tuple__"])
        return {key: _untag_parameter(item) for key, item in value.items()}
    return value


def encode_parameter(parameter: Hashable) -> str:
    """Canonical text form of a constraint parameter (reversible)."""
    return json.dumps(_tag_parameter(parameter), sort_keys=True, separators=(",", ":"))


def decode_parameter(text: str) -> Hashable:
    """Inverse of :func:`encode_parameter`."""
    return _untag_parameter(json.loads(text))


# --------------------------------------------------------------------- #
# keys and entries
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StoreKey:
    """Identity of one index entry: which data, which constraint, which parameter.

    The parameter is stored in its canonical text encoding so equal
    parameters always produce equal keys; for the path-indexed constraints
    it includes the Stage-1 exactness mode, so exact and pruned entries
    never alias (see ``docs/CORRECTNESS.md``).

    Examples
    --------
    >>> key = StoreKey.make("fp", "skinny", {"length": 5, "min_support": 2,
    ...                                      "support_measure": "embeddings",
    ...                                      "stage1_mode": "exact"})
    >>> key.decoded_parameter()["stage1_mode"]
    'exact'
    >>> StoreKey.make("fp", "skinny", (5, 1)).decoded_parameter()
    (5, 1)
    """

    fingerprint: str
    constraint_id: str
    parameter: str  # canonical text from encode_parameter

    @classmethod
    def make(cls, fingerprint: str, constraint_id: str, parameter: Hashable) -> "StoreKey":
        return cls(fingerprint, constraint_id, encode_parameter(parameter))

    def decoded_parameter(self) -> Hashable:
        return decode_parameter(self.parameter)


@dataclass
class IndexEntry:
    """One stored Stage-1 result: minimal patterns plus build accounting."""

    key: StoreKey
    patterns: List[object]
    build_seconds: float = 0.0
    created_at: float = field(default_factory=time.time)


# --------------------------------------------------------------------- #
# the abstract store
# --------------------------------------------------------------------- #
class PatternStore(ABC):
    """Interface shared by the in-memory and on-disk index backends."""

    @abstractmethod
    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        """Return the entry for ``key`` or ``None``."""

    @abstractmethod
    def put(self, entry: IndexEntry) -> None:
        """Insert or replace an entry."""

    @abstractmethod
    def delete(self, key: StoreKey) -> bool:
        """Remove an entry; return whether it existed."""

    @abstractmethod
    def keys(self) -> List[StoreKey]:
        """All entry keys currently stored."""

    def __contains__(self, key: StoreKey) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def snapshot_view(self) -> "SnapshotStoreView":
        """A copy-on-write view of this store: reads fall through, writes stay private.

        This is the serving tier's snapshot-isolation primitive: each
        snapshot generation owns one view, incremental repair writes into
        the view's overlay, and readers of older generations (or of the
        base store itself) never observe those writes.  Views nest — taking
        a view of a view layers a fresh overlay on top.
        """
        return SnapshotStoreView(self)

    def clear(self) -> None:
        for key in self.keys():
            self.delete(key)

    def info(self) -> List[Dict]:
        """Per-entry metadata (for ``repro index info`` and tests)."""
        summaries: List[Dict] = []
        for key in sorted(self.keys(), key=lambda k: (k.fingerprint, k.constraint_id, k.parameter)):
            entry = self.get(key)
            if entry is None:
                continue
            summaries.append(
                {
                    "fingerprint": key.fingerprint,
                    "constraint_id": key.constraint_id,
                    "parameter": key.decoded_parameter(),
                    "num_patterns": len(entry.patterns),
                    "build_seconds": entry.build_seconds,
                    "created_at": entry.created_at,
                }
            )
        return summaries


class MemoryPatternStore(PatternStore):
    """Process-local dict backend (the seed repo's behaviour, now pluggable).

    Examples
    --------
    >>> store = MemoryPatternStore()
    >>> key = StoreKey.make("fp", "path", {"length": 2})
    >>> store.put(IndexEntry(key=key, patterns=["p1", "p2"]))
    >>> len(store.get(key).patterns)
    2
    >>> store.delete(key), store.get(key)
    (True, None)
    """

    def __init__(self) -> None:
        self._entries: Dict[StoreKey, IndexEntry] = {}

    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        return self._entries.get(key)

    def put(self, entry: IndexEntry) -> None:
        self._entries[entry.key] = entry

    def delete(self, key: StoreKey) -> bool:
        return self._entries.pop(key, None) is not None

    def keys(self) -> List[StoreKey]:
        return list(self._entries)


class SnapshotStoreView(PatternStore):
    """Copy-on-write overlay over a frozen base store.

    ``get``/``keys`` consult a private overlay first and fall through to the
    base; ``put``/``delete`` only ever touch the overlay (a ``None`` overlay
    value is a tombstone).  The base store is never mutated through a view,
    so any number of views — one per snapshot generation — can share one
    base while a writer repairs the newest view in place.

    Examples
    --------
    >>> base = MemoryPatternStore()
    >>> key = StoreKey.make("fp", "path", {"length": 2})
    >>> base.put(IndexEntry(key=key, patterns=["p1"]))
    >>> view = base.snapshot_view()
    >>> view.put(IndexEntry(key=key, patterns=["p1", "p2"]))
    >>> len(view.get(key).patterns), len(base.get(key).patterns)
    (2, 1)
    >>> view.delete(key), key in view, key in base
    (True, False, True)
    """

    def __init__(self, base: PatternStore) -> None:
        self._base = base
        self._overlay: Dict[StoreKey, Optional[IndexEntry]] = {}

    @property
    def base(self) -> PatternStore:
        return self._base

    @property
    def overlay_size(self) -> int:
        """Number of keys shadowed by this view (writes plus tombstones)."""
        return len(self._overlay)

    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        if key in self._overlay:
            return self._overlay[key]
        return self._base.get(key)

    def put(self, entry: IndexEntry) -> None:
        self._overlay[entry.key] = entry

    def delete(self, key: StoreKey) -> bool:
        existed = self.get(key) is not None
        self._overlay[key] = None
        return existed

    def keys(self) -> List[StoreKey]:
        found = [key for key in self._base.keys() if key not in self._overlay]
        found.extend(key for key, entry in self._overlay.items() if entry is not None)
        return found


class DiskPatternStore(PatternStore):
    """JSON-lines disk backend with versioned headers and atomic writes.

    Layout: ``<root>/<fingerprint>/<constraint_id>/<param-digest>.jsonl``.
    The first line of each file is a header record carrying the format name,
    version and the full key; subsequent lines are one encoded pattern each
    (see :mod:`repro.index.codec`).  Writes land in a temporary file in the
    same directory and are published with ``os.replace``, so readers never
    observe a half-written entry.  Decoded entries are cached in memory until
    invalidated by ``put``/``delete``.

    ``metrics`` (optional) is the :class:`repro.obs.MetricsRegistry` the
    store publishes I/O latencies into — ``repro_store_read_seconds`` per
    cold entry decode and ``repro_store_write_seconds`` per ``put``;
    defaults to the process-wide registry.  Cache-served ``get`` calls are
    not observed (they cost a dict lookup).
    """

    def __init__(self, root: PathLike, metrics: Optional[MetricsRegistry] = None) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._cache: Dict[StoreKey, IndexEntry] = {}
        self._metrics = metrics if metrics is not None else default_registry()

    @property
    def root(self) -> Path:
        return self._root

    # -------------------------------------------------------------- #
    # paths
    # -------------------------------------------------------------- #
    def _path_for(self, key: StoreKey) -> Path:
        param_digest = hashlib.sha256(key.parameter.encode("utf-8")).hexdigest()[:24]
        # An empty fingerprint (allowed by MinimalPatternIndex's default) or a
        # path-hostile one must still occupy exactly one directory level, or
        # keys()/info() globbing would miss the entry.
        fingerprint_dir = quote(key.fingerprint, safe="-_.") or "_no-fingerprint"
        constraint_dir = quote(key.constraint_id, safe="-_.") or "_no-constraint"
        return self._root / fingerprint_dir / constraint_dir / f"{param_digest}.jsonl"

    # -------------------------------------------------------------- #
    # PatternStore interface
    # -------------------------------------------------------------- #
    def get(self, key: StoreKey) -> Optional[IndexEntry]:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        path = self._path_for(key)
        if not path.exists():
            return None
        started = time.perf_counter()
        entry = self._read_entry(path, expected_key=key)
        self._metrics.histogram(
            "repro_store_read_seconds", "Cold index-entry decode latency (disk store)"
        ).observe(time.perf_counter() - started)
        self._cache[key] = entry
        return entry

    def put(self, entry: IndexEntry) -> None:
        started = time.perf_counter()
        path = self._path_for(entry.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "fingerprint": entry.key.fingerprint,
            "constraint_id": entry.key.constraint_id,
            "parameter": entry.key.parameter,
            "num_patterns": len(entry.patterns),
            "build_seconds": entry.build_seconds,
            "created_at": entry.created_at,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(encode_record(pattern), sort_keys=True) for pattern in entry.patterns
        )
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        self._metrics.histogram(
            "repro_store_write_seconds", "Index-entry encode+fsync latency (disk store)"
        ).observe(time.perf_counter() - started)
        self._cache[entry.key] = entry

    def delete(self, key: StoreKey) -> bool:
        self._cache.pop(key, None)
        path = self._path_for(key)
        if not path.exists():
            return False
        path.unlink()
        return True

    def keys(self) -> List[StoreKey]:
        found: List[StoreKey] = []
        for path in sorted(self._root.glob("*/*/*.jsonl")):
            header = self._read_header(path)
            found.append(
                StoreKey(header["fingerprint"], header["constraint_id"], header["parameter"])
            )
        return found

    # -------------------------------------------------------------- #
    # file parsing
    # -------------------------------------------------------------- #
    def _read_header(self, path: Path) -> Dict:
        with path.open("r", encoding="utf-8") as handle:
            return self._parse_header(path, handle.readline())

    def _parse_header(self, path: Path, first: str) -> Dict:
        try:
            header = json.loads(first)
        except json.JSONDecodeError as error:
            raise StoreFormatError(f"{path}: header is not valid JSON") from error
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise StoreFormatError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise StoreFormatError(
                f"{path}: format version {header.get('version')!r} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        return header

    def _read_entry(self, path: Path, expected_key: Optional[StoreKey] = None) -> IndexEntry:
        # Header and body come from ONE open handle: ``put`` publishes via
        # os.replace, so a single open always sees one complete file
        # version, but two opens racing a writer could pair the old
        # header's num_patterns promise with the new body (or vice versa)
        # and report a phantom truncation.
        patterns: List[object] = []
        with path.open("r", encoding="utf-8") as handle:
            header = self._parse_header(path, handle.readline())
            key = StoreKey(header["fingerprint"], header["constraint_id"], header["parameter"])
            if expected_key is not None and key != expected_key:
                raise StoreFormatError(
                    f"{path}: header key {key} does not match requested {expected_key}"
                )
            for line_number, line in enumerate(handle, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    patterns.append(decode_record(json.loads(line)))
                except (json.JSONDecodeError, KeyError, ValueError) as error:
                    raise StoreFormatError(
                        f"{path}:{line_number}: corrupt pattern record ({error})"
                    ) from error
        if len(patterns) != header.get("num_patterns", len(patterns)):
            raise StoreFormatError(
                f"{path}: truncated entry — header promises {header['num_patterns']} "
                f"patterns, file holds {len(patterns)}"
            )
        return IndexEntry(
            key=key,
            patterns=patterns,
            build_seconds=header.get("build_seconds", 0.0),
            created_at=header.get("created_at", 0.0),
        )

    def info(self) -> List[Dict]:
        summaries: List[Dict] = []
        for path in sorted(self._root.glob("*/*/*.jsonl")):
            header = self._read_header(path)
            summaries.append(
                {
                    "fingerprint": header["fingerprint"],
                    "constraint_id": header["constraint_id"],
                    "parameter": decode_parameter(header["parameter"]),
                    "num_patterns": header["num_patterns"],
                    "build_seconds": header["build_seconds"],
                    "created_at": header["created_at"],
                    "size_bytes": path.stat().st_size,
                    "path": str(path),
                }
            )
        return summaries
