"""Plain-text tables and series used by the benchmark harness.

Every benchmark regenerating a paper table or figure prints its rows/series
through these helpers so the output format is uniform and easily diffed
against EXPERIMENTS.md.  No plotting dependency is used (the environment is
offline); a "figure" is reported as the series of (x, y) points the paper
plots.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    print()
    print(format_table(headers, rows, title=title))


def format_series(
    name: str,
    points: Union[Sequence[Tuple[Number, Number]], Mapping[Number, Number]],
) -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    if isinstance(points, Mapping):
        items: Iterable[Tuple[Number, Number]] = sorted(points.items())
    else:
        items = points
    rendered = ", ".join(f"{_format_cell(x)}={_format_cell(y)}" for x, y in items)
    return f"{name}: {rendered}" if rendered else f"{name}: (empty)"


def print_figure_series(
    figure: str,
    series: Mapping[str, Union[Sequence[Tuple[Number, Number]], Mapping[Number, Number]]],
    note: Optional[str] = None,
) -> None:
    """Print every series of one figure, one line per series."""
    print()
    print(f"== {figure} ==")
    if note:
        print(f"   ({note})")
    for name in series:
        print("  " + format_series(name, series[name]))
