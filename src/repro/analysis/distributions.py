"""Pattern-size distributions and ground-truth recovery metrics.

The effectiveness figures of the paper (Figures 4–10) plot, for each miner,
the number of reported patterns at each pattern size |V|.  The skinniness
experiment (Table 3 discussion) asks which injected patterns each miner
captures.  This module computes both from lists of mined patterns, uniformly
for SkinnyMine results (:class:`repro.core.patterns.SkinnyPattern`) and
baseline results (:class:`repro.baselines.common.MinedPattern`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.graph.isomorphism import are_isomorphic, is_subgraph_isomorphic
from repro.graph.labeled_graph import LabeledGraph


def _pattern_graph(pattern: object) -> LabeledGraph:
    """Accept SkinnyPattern, MinedPattern or a bare LabeledGraph."""
    if isinstance(pattern, LabeledGraph):
        return pattern
    graph = getattr(pattern, "graph", None)
    if isinstance(graph, LabeledGraph):
        return graph
    raise TypeError(f"cannot extract a pattern graph from {pattern!r}")


@dataclass
class PatternSizeDistribution:
    """Histogram of pattern sizes (|V|), the y-axis of Figures 4–10."""

    miner: str
    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, size: int) -> None:
        self.counts[size] = self.counts.get(size, 0) + 1

    def sizes(self) -> List[int]:
        return sorted(self.counts)

    def count_at(self, size: int) -> int:
        return self.counts.get(size, 0)

    def max_size(self) -> int:
        return max(self.counts, default=0)

    def total(self) -> int:
        return sum(self.counts.values())

    def patterns_at_least(self, size: int) -> int:
        return sum(count for s, count in self.counts.items() if s >= size)

    def as_series(self) -> List[Tuple[int, int]]:
        return [(size, self.counts[size]) for size in self.sizes()]


def size_distribution(
    miner: str, patterns: Iterable[object]
) -> PatternSizeDistribution:
    """Build a pattern-size (|V|) distribution from any miner's output."""
    distribution = PatternSizeDistribution(miner=miner)
    for pattern in patterns:
        distribution.add(_pattern_graph(pattern).num_vertices())
    return distribution


@dataclass
class RecoveryReport:
    """Which injected (ground-truth) patterns a miner recovered."""

    miner: str
    recovered: List[int] = field(default_factory=list)
    missed: List[int] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        total = len(self.recovered) + len(self.missed)
        return len(self.recovered) / total if total else 0.0


def injected_pattern_recovery(
    miner: str,
    mined_patterns: Sequence[object],
    injected_patterns: Union[Sequence[LabeledGraph], Dict[int, LabeledGraph]],
    allow_containment: bool = True,
) -> RecoveryReport:
    """Check which injected patterns appear in the mining output.

    An injected pattern counts as recovered when some mined pattern is
    isomorphic to it, or (with ``allow_containment``) contains it as a
    subgraph — the latter matters because miners legitimately report
    super-patterns once injected copies interconnect with the background
    (the paper observes exactly this for GID 2).
    """
    if isinstance(injected_patterns, dict):
        items = list(injected_patterns.items())
    else:
        items = list(enumerate(injected_patterns))
    mined_graphs = [_pattern_graph(pattern) for pattern in mined_patterns]

    report = RecoveryReport(miner=miner)
    for identifier, injected in items:
        hit = False
        for mined in mined_graphs:
            if are_isomorphic(mined, injected):
                hit = True
                break
            if allow_containment and mined.num_vertices() >= injected.num_vertices():
                if is_subgraph_isomorphic(injected, mined):
                    hit = True
                    break
        if hit:
            report.recovered.append(identifier)
        else:
            report.missed.append(identifier)
    return report


def largest_pattern_size(patterns: Sequence[object]) -> Tuple[int, int]:
    """(max |V|, max |E|) over a mining result — used by Figure 19."""
    max_vertices = 0
    max_edges = 0
    for pattern in patterns:
        graph = _pattern_graph(pattern)
        max_vertices = max(max_vertices, graph.num_vertices())
        max_edges = max(max_edges, graph.num_edges())
    return max_vertices, max_edges
