"""Analysis helpers used by the benchmark harness and the examples.

* :mod:`repro.analysis.distributions` — pattern-size distributions (the
  histograms of Figures 4–10) and recovery metrics against injected ground
  truth.
* :mod:`repro.analysis.reporting` — plain-text tables and series printers so
  every benchmark can emit the same rows/series the paper's figures plot.
"""

from repro.analysis.distributions import (
    PatternSizeDistribution,
    injected_pattern_recovery,
    size_distribution,
)
from repro.analysis.reporting import (
    format_series,
    format_table,
    print_figure_series,
    print_table,
)

__all__ = [
    "PatternSizeDistribution",
    "injected_pattern_recovery",
    "size_distribution",
    "format_series",
    "format_table",
    "print_figure_series",
    "print_table",
]
