"""SpiderMine: top-K large pattern mining with r-spiders (Zhu et al., VLDB 2011).

SpiderMine is the closest prior work to SkinnyMine.  Its core ideas, as
described in the original paper and summarised in Section 7 of the SkinnyMine
paper, are:

1. mine all frequent **r-spiders** — patterns consisting of a head vertex and
   the tree of vertices within distance ``r`` of it;
2. randomly pick a set of seed spiders (large patterns are hit with high
   probability because they contain many spiders);
3. repeatedly **merge** spiders whose embeddings overlap or touch, growing
   larger and larger patterns, up to ``D_max`` merge rounds;
4. return the top-K largest patterns found.

The diameter of anything SpiderMine can build is bounded by roughly
``2 * r * D_max`` and its growth is breadth-first around spider heads, which
is why it finds large-but-fat patterns and misses long skinny ones — the
behaviour the SkinnyMine evaluation (Figures 4–10, Table 3) demonstrates and
which this reimplementation preserves.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.baselines.common import MinedPattern
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.canonical import wl_signature
from repro.graph.labeled_graph import LabeledGraph, VertexId

Occurrence = Tuple[int, FrozenSet[VertexId]]


@dataclass
class _Spider:
    """A frequent r-spider: a pattern shape with its vertex-set occurrences."""

    signature: Tuple
    occurrences: List[Occurrence]
    sample_graph_index: int
    sample_vertices: FrozenSet[VertexId]

    def support(self) -> int:
        return len(set(self.occurrences))


class SpiderMiner:
    """Mine the top-K largest frequent patterns with the SpiderMine strategy.

    Parameters
    ----------
    graph:
        Data graph or transaction database.
    min_support:
        Frequency threshold σ (occurrence count, as in the single-graph
        setting of the original paper).
    top_k:
        Number of largest patterns to return (the paper uses K = 5 or 10).
    radius:
        Spider radius r (the original work uses small radii such as 1 or 2).
    d_max:
        Maximum number of merge rounds; bounds the diameter of anything the
        algorithm can produce (the SkinnyMine paper sets ``Dmax = 4``).
    num_seeds:
        Number of random seed spiders drawn before merging (μ in the original
        paper; the SkinnyMine evaluation uses values up to 200).
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        top_k: int = 10,
        radius: int = 1,
        d_max: int = 4,
        num_seeds: int = 50,
        seed: Optional[int] = None,
        support_measure: SupportMeasure = SupportMeasure.EMBEDDINGS,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        if radius < 1:
            raise ValueError("radius must be at least 1")
        if d_max < 1:
            raise ValueError("d_max must be at least 1")
        self._context = MiningContext(graph, min_support, support_measure)
        self._top_k = top_k
        self._radius = radius
        self._d_max = d_max
        self._num_seeds = num_seeds
        self._rng = random.Random(seed)
        self.elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # spiders
    # ------------------------------------------------------------------ #
    def _spider_around(
        self, graph_index: int, head: VertexId
    ) -> Tuple[Tuple, FrozenSet[VertexId]]:
        """The r-neighbourhood of ``head`` as (shape signature, vertex set)."""
        graph = self._context.graph(graph_index)
        frontier = {head}
        vertices: Set[VertexId] = {head}
        for _ in range(self._radius):
            frontier = {
                neighbor
                for vertex in frontier
                for neighbor in graph.neighbors(vertex)
                if neighbor not in vertices
            }
            vertices |= frontier
        subgraph = graph.subgraph(vertices)
        return wl_signature(subgraph), frozenset(vertices)

    def _mine_spiders(self) -> List[_Spider]:
        """Group r-neighbourhoods by shape and keep the frequent ones."""
        grouped: Dict[Tuple, _Spider] = {}
        for graph_index in self._context.graph_indices():
            graph = self._context.graph(graph_index)
            for head in graph.vertices():
                signature, vertices = self._spider_around(graph_index, head)
                spider = grouped.get(signature)
                if spider is None:
                    grouped[signature] = _Spider(
                        signature=signature,
                        occurrences=[(graph_index, vertices)],
                        sample_graph_index=graph_index,
                        sample_vertices=vertices,
                    )
                else:
                    spider.occurrences.append((graph_index, vertices))
        frequent = [
            spider
            for spider in grouped.values()
            if spider.support() >= self._context.min_support
        ]
        return frequent

    # ------------------------------------------------------------------ #
    # merging
    # ------------------------------------------------------------------ #
    def _merge_round(
        self, regions: List[Occurrence]
    ) -> List[Occurrence]:
        """Merge regions whose vertex sets touch (share a vertex or an edge).

        Each region's closed neighbourhood (its vertices plus their data-graph
        neighbours) is precomputed so the pairwise "touches" test is a set
        intersection instead of an edge-by-edge scan.
        """
        merged: List[Occurrence] = []
        used = [False] * len(regions)
        neighborhoods: List[Set[VertexId]] = []
        for graph_index, vertices in regions:
            graph = self._context.graph(graph_index)
            closed = set(vertices)
            for vertex in vertices:
                closed |= graph.neighbors(vertex)
            neighborhoods.append(closed)

        for i, (graph_index, vertices) in enumerate(regions):
            if used[i]:
                continue
            graph = self._context.graph(graph_index)
            combined = set(vertices)
            combined_closed = set(neighborhoods[i])
            used[i] = True
            for j in range(i + 1, len(regions)):
                if used[j]:
                    continue
                other_index, other_vertices = regions[j]
                if other_index != graph_index:
                    continue
                if combined_closed & other_vertices or combined & neighborhoods[j]:
                    combined |= other_vertices
                    combined_closed |= neighborhoods[j]
                    used[j] = True
            merged.append((graph_index, frozenset(combined)))
        return merged

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def mine(self) -> List[MinedPattern]:
        """Return up to ``top_k`` large patterns (largest first)."""
        started = time.perf_counter()
        spiders = self._mine_spiders()
        if not spiders:
            self.elapsed_seconds = time.perf_counter() - started
            return []

        seeds = (
            spiders
            if len(spiders) <= self._num_seeds
            else self._rng.sample(spiders, self._num_seeds)
        )
        # Each seed spider contributes one region per occurrence (cap the
        # number of occurrences carried forward to keep merging tractable).
        regions: List[Occurrence] = []
        for spider in seeds:
            for occurrence in spider.occurrences[: self._context.min_support * 4]:
                regions.append(occurrence)

        for _ in range(self._d_max):
            merged = self._merge_round(regions)
            if len(merged) == len(regions):
                break
            regions = merged

        # Group the merged regions by shape; keep frequent ones, largest first.
        grouped: Dict[Tuple, List[Occurrence]] = {}
        samples: Dict[Tuple, Occurrence] = {}
        for graph_index, vertices in regions:
            graph = self._context.graph(graph_index)
            signature = wl_signature(graph.subgraph(vertices))
            grouped.setdefault(signature, []).append((graph_index, vertices))
            samples.setdefault(signature, (graph_index, vertices))

        candidates: List[MinedPattern] = []
        for signature, occurrences in grouped.items():
            support = (
                len({index for index, _ in occurrences})
                if self._context.support_measure is SupportMeasure.TRANSACTIONS
                else len(set(occurrences))
            )
            if support < self._context.min_support:
                continue
            graph_index, vertices = samples[signature]
            pattern = self._context.graph(graph_index).subgraph(vertices).compact()[0]
            candidates.append(MinedPattern(pattern, support, score=float(len(vertices))))

        candidates.sort(key=lambda item: (-item.num_vertices, -item.support))
        self.elapsed_seconds = time.perf_counter() - started
        return candidates[: self._top_k]
