"""SEuS: structure extraction using summaries (Ghazizadeh & Chawathe, 2002).

SEuS first collapses the data graph into a *summary graph*: one summary node
per vertex label, one summary edge per pair of labels that co-occur on a data
edge, each annotated with its occurrence count.  Candidate substructures are
generated on the (tiny) summary graph — where counts are only upper bounds —
and then verified against the data.  Because the summary collapses all
vertices of a label into one node, the method is effective for a small number
of highly frequent structures but, as the SkinnyMine paper notes, "is less
powerful in handling a large number of patterns with low frequency" and in
practice reports mostly small patterns (|V| ≤ 3) on the evaluation datasets —
behaviour this reimplementation reproduces.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.baselines.common import MinedPattern
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.isomorphism import count_embeddings
from repro.graph.labeled_graph import LabeledGraph


class SeusMiner:
    """Summary-based frequent substructure discovery."""

    def __init__(
        self,
        graph: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int = 2,
        max_candidate_edges: int = 3,
        max_candidates: int = 200,
        support_measure: SupportMeasure = SupportMeasure.EMBEDDINGS,
    ) -> None:
        if max_candidate_edges < 1:
            raise ValueError("max_candidate_edges must be at least 1")
        self._context = MiningContext(graph, min_support, support_measure)
        self._max_candidate_edges = max_candidate_edges
        self._max_candidates = max_candidates
        self.elapsed_seconds: float = 0.0
        self.summary_nodes: int = 0
        self.summary_edges: int = 0

    # ------------------------------------------------------------------ #
    def _build_summary(self) -> Dict[Tuple[str, str], int]:
        """Label-pair edge counts across the whole database (the summary graph)."""
        summary: Dict[Tuple[str, str], int] = {}
        labels: Set[str] = set()
        for graph_index in self._context.graph_indices():
            graph = self._context.graph(graph_index)
            for edge in graph.edges():
                pair = tuple(
                    sorted((str(graph.label_of(edge.u)), str(graph.label_of(edge.v))))
                )
                summary[pair] = summary.get(pair, 0) + 1
                labels.update(pair)
        self.summary_nodes = len(labels)
        self.summary_edges = len(summary)
        return summary

    def _candidate_patterns(
        self, summary: Dict[Tuple[str, str], int]
    ) -> List[LabeledGraph]:
        """Small candidate substructures assembled from frequent summary edges.

        Candidates are paths and stars over at most ``max_candidate_edges``
        summary edges whose summary counts reach the threshold (an upper
        bound on real support, so no frequent structure is missed at this
        size).
        """
        frequent_pairs = [
            pair
            for pair, count in summary.items()
            if count >= self._context.min_support
        ]
        candidates: List[LabeledGraph] = []

        # Single-edge candidates.
        for label_a, label_b in frequent_pairs:
            pattern = LabeledGraph(name="seus-candidate")
            pattern.add_vertex(0, label_a)
            pattern.add_vertex(1, label_b)
            pattern.add_edge(0, 1)
            candidates.append(pattern)

        if self._max_candidate_edges >= 2:
            # Two-edge candidates: paths x - y - z where (x,y) and (y,z) are
            # frequent summary edges.
            for (a1, b1), (a2, b2) in combinations(frequent_pairs, 2):
                shared = {a1, b1} & {a2, b2}
                for middle in shared:
                    left = (set((a1, b1)) - {middle}) or {middle}
                    right = (set((a2, b2)) - {middle}) or {middle}
                    pattern = LabeledGraph(name="seus-candidate")
                    pattern.add_vertex(0, sorted(left)[0])
                    pattern.add_vertex(1, middle)
                    pattern.add_vertex(2, sorted(right)[0])
                    pattern.add_edge(0, 1)
                    pattern.add_edge(1, 2)
                    candidates.append(pattern)
                    if len(candidates) >= self._max_candidates:
                        return candidates
        return candidates[: self._max_candidates]

    # ------------------------------------------------------------------ #
    def mine(self) -> List[MinedPattern]:
        """Generate candidates from the summary and verify them in the data."""
        started = time.perf_counter()
        summary = self._build_summary()
        candidates = self._candidate_patterns(summary)

        results: List[MinedPattern] = []
        seen: Set[Tuple] = set()
        for candidate in candidates:
            from repro.graph.canonical import canonical_key

            key = canonical_key(candidate)
            if key in seen:
                continue
            seen.add(key)
            support = self._verify(candidate)
            if support >= self._context.min_support:
                results.append(MinedPattern(candidate, support))
        results.sort(key=lambda item: (-item.support, item.num_edges))
        self.elapsed_seconds = time.perf_counter() - started
        return results

    def _verify(self, candidate: LabeledGraph) -> int:
        """Exact support of a candidate against the data."""
        if self._context.support_measure is SupportMeasure.TRANSACTIONS:
            return sum(
                1
                for graph_index in self._context.graph_indices()
                if count_embeddings(candidate, self._context.graph(graph_index), cap=1)
            )
        return sum(
            count_embeddings(candidate, self._context.graph(graph_index))
            for graph_index in self._context.graph_indices()
        )
