"""gSpan-style complete frequent subgraph miner (graph-transaction setting).

gSpan [Yan & Han, ICDM 2002] mines the complete set of frequent subgraphs of
a graph database by depth-first pattern growth over canonical DFS codes.
This adapter exposes that behaviour on top of the shared
:class:`repro.baselines.common.PatternGrowthMiner`: complete pattern growth
from single-edge seeds with exact duplicate elimination — the same output a
DFS-code implementation produces — with transaction support as the frequency
measure.

The paper uses gSpan as the archetype of "enumerate everything" algorithms
that cannot reach large patterns; the ``max_edges`` and
``time_budget_seconds`` knobs let the benchmarks demonstrate exactly that
cliff without unbounded runtimes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.baselines.common import MinedPattern, PatternGrowthMiner, PatternGrowthResult
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.labeled_graph import LabeledGraph


class GSpanMiner:
    """Complete frequent subgraph mining over a graph-transaction database.

    Parameters
    ----------
    database:
        The graph transactions.  A single graph is accepted for convenience
        (it becomes a one-transaction database).
    min_support:
        Minimum number of transactions a pattern must occur in.
    max_edges:
        Optional cap on pattern size (edges); ``None`` mines everything.
    time_budget_seconds:
        Optional wall-clock budget after which mining stops and the result is
        marked incomplete.
    """

    def __init__(
        self,
        database: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        max_edges: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
        max_patterns: Optional[int] = None,
    ) -> None:
        self._context = MiningContext(
            database, min_support, SupportMeasure.TRANSACTIONS
        )
        self._miner = PatternGrowthMiner(
            self._context,
            max_edges=max_edges,
            time_budget_seconds=time_budget_seconds,
            max_patterns=max_patterns,
        )
        self.last_result: Optional[PatternGrowthResult] = None

    def mine(self) -> List[MinedPattern]:
        """Return every frequent pattern (possibly truncated by the caps)."""
        self.last_result = self._miner.mine()
        return self.last_result.patterns

    @property
    def completed(self) -> bool:
        """False when the last run hit the time budget or pattern cap."""
        return bool(self.last_result and self.last_result.completed)
