"""MoSS-style complete miner for the single-graph setting.

MoSS (Fiedler & Borgelt, MLG 2007) extends molecular-substructure mining to
support computation in a single graph.  Its defining behaviour in the paper's
evaluation is: it mines the *complete* pattern set, which makes it accurate
but unable to finish on all but the smallest data ("MoSS cannot run to
completion for data sets with GID = 2, 4, 5 within 5 hours").

The adapter runs the shared complete pattern-growth miner with the
single-graph embedding-based support measure (MNI available as an option) and
reports whether the run finished within the configured budget, which the
Figure 11 / Figure 20 benchmarks rely on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.baselines.common import MinedPattern, PatternGrowthMiner, PatternGrowthResult
from repro.core.database import MiningContext, SupportMeasure
from repro.graph.labeled_graph import LabeledGraph


class MossMiner:
    """Complete frequent subgraph mining in a single graph (or small database)."""

    def __init__(
        self,
        graph: Union[LabeledGraph, Sequence[LabeledGraph]],
        min_support: int,
        support_measure: SupportMeasure = SupportMeasure.EMBEDDINGS,
        max_edges: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
        max_patterns: Optional[int] = None,
    ) -> None:
        self._context = MiningContext(graph, min_support, support_measure)
        self._miner = PatternGrowthMiner(
            self._context,
            max_edges=max_edges,
            time_budget_seconds=time_budget_seconds,
            max_patterns=max_patterns,
        )
        self.last_result: Optional[PatternGrowthResult] = None

    def mine(self) -> List[MinedPattern]:
        """Return the complete frequent pattern set (subject to the caps)."""
        self.last_result = self._miner.mine()
        return self.last_result.patterns

    @property
    def completed(self) -> bool:
        return bool(self.last_result and self.last_result.completed)

    @property
    def elapsed_seconds(self) -> float:
        return self.last_result.elapsed_seconds if self.last_result else 0.0
